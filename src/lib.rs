//! Workspace umbrella package: hosts the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. The library surface
//! simply re-exports the member crates for convenience.

pub use mermaid;
pub use mermaid_cpu;
pub use mermaid_dsm;
pub use mermaid_memory;
pub use mermaid_network;
pub use mermaid_ops;
pub use mermaid_stats;
pub use mermaid_tracegen;
pub use pearl;
