#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 verification the roadmap
# requires (release build + root test suite). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> example: quickstart (full pipeline)"
cargo run --release --example quickstart > /dev/null

echo "==> example: traced_run (validates the emitted Chrome trace round-trips)"
cargo run --release --example traced_run > /dev/null

echo "==> cli: traced simulation emits parseable Chrome-trace JSON"
trace_file="$(mktemp -t mermaid-check-trace.XXXXXX.json)"
trap 'rm -f "$trace_file"' EXIT
cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
    --topology mesh:2x2 --mode task --phases 2 --trace-out "$trace_file" --metrics > /dev/null
test -s "$trace_file" || { echo "trace file is empty" >&2; exit 1; }

echo "All checks passed."
