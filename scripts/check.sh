#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 verification the roadmap
# requires (release build + root test suite). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> example: quickstart (full pipeline)"
cargo run --release --example quickstart > /dev/null

echo "==> example: traced_run (validates the emitted Chrome trace round-trips)"
cargo run --release --example traced_run > /dev/null

echo "==> cli: traced simulation emits parseable Chrome-trace JSON"
trace_file="$(mktemp -t mermaid-check-trace.XXXXXX.json)"
serial_out="$(mktemp -t mermaid-check-serial.XXXXXX.txt)"
sharded_out="$(mktemp -t mermaid-check-sharded.XXXXXX.txt)"
trap 'rm -f "$trace_file" "$serial_out" "$sharded_out"' EXIT
cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
    --topology mesh:2x2 --mode task --phases 2 --trace-out "$trace_file" --metrics > /dev/null
test -s "$trace_file" || { echo "trace file is empty" >&2; exit 1; }

echo "==> cli: sharded run is bit-identical to the serial run"
for mode in detailed task; do
    for spec in torus:4x4 ring:8; do
        # The detailed-mode slowdown figure is host wall-clock based and
        # legitimately varies run to run — compare everything else.
        cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
            --topology "$spec" --mode "$mode" --pattern all2all --phases 3 \
            --shards 1 | grep -v "slowdown" > "$serial_out"
        cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
            --topology "$spec" --mode "$mode" --pattern all2all --phases 3 \
            --shards 3 | grep -v "slowdown" > "$sharded_out"
        diff -u "$serial_out" "$sharded_out" \
            || { echo "sharded output diverged ($mode $spec)" >&2; exit 1; }
    done
done

echo "==> cli: sim output matches the pre-migration golden snapshot"
# The checked-in snapshot predates the arena-world migration, so this diff
# is a literal before/after smoke test of the storage refactor: any drift
# in the simulated results shows up as a byte diff here.
for shards in 1 3; do
    cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
        --topology mesh:4x4 --mode task --phases 2 --pattern all2all \
        --seed 5 --shards "$shards" > "$serial_out"
    diff -u tests/golden/sim_task_healthy.txt "$serial_out" \
        || { echo "sim output drifted from golden snapshot (shards=$shards)" >&2; exit 1; }
done

echo "==> bench: comm-heavy hot path (quick mode)"
MERMAID_BENCH_QUICK=1 cargo bench -p mermaid-bench --bench arena_hot_path

echo "==> tier-1: fault-injection conformance suite"
cargo test -q --test fault_injection

echo "==> tier-1: checkpoint/restore conformance suite"
cargo test -q --test checkpoint_conformance

echo "==> cli: speculative windows change nothing but the schedule"
# --speculate is a scheduling policy: on, off, and a forced threshold all
# produce byte-identical output on 3 shards (and match the serial run,
# via transitivity with the sharded-vs-serial diff above).
spec_args=(sim --machine test --topology torus:4x4 --mode task --pattern all2all --phases 3)
cargo run --release -p mermaid --bin mermaid-cli -- "${spec_args[@]}" \
    --shards 3 --speculate off > "$serial_out"
for policy in on 1000000000; do
    cargo run --release -p mermaid --bin mermaid-cli -- "${spec_args[@]}" \
        --shards 3 --speculate "$policy" > "$sharded_out"
    diff -u "$serial_out" "$sharded_out" \
        || { echo "--speculate $policy diverged from --speculate off" >&2; exit 1; }
done
if cargo run --release -p mermaid --bin mermaid-cli -- "${spec_args[@]}" \
    --speculate on > /dev/null 2>&1; then
    echo "--speculate without --shards should have been rejected" >&2; exit 1
fi

echo "==> cli: faulty runs are bit-identical serial vs sharded"
# A scripted outage (link 0-1 down at 2 us, healed at 60 us) plus 2%
# transient loss: retries recover everything, and the sharded run must
# reproduce the serial output byte for byte.
for spec in "link:0-1:2000:60000; drop:20000" "link:15-11:0; link:15-14:0"; do
    cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
        --topology mesh:4x4 --mode task --pattern all2all --phases 2 \
        --faults "$spec" --fault-seed 9 --shards 1 > "$serial_out"
    cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
        --topology mesh:4x4 --mode task --pattern all2all --phases 2 \
        --faults "$spec" --fault-seed 9 --shards 3 > "$sharded_out"
    diff -u "$serial_out" "$sharded_out" \
        || { echo "faulty sharded output diverged ($spec)" >&2; exit 1; }
    grep -q "fault injection:" "$serial_out" \
        || { echo "fault summary missing from output ($spec)" >&2; exit 1; }
done
# The permanent corner partition must surface the degraded-mode report.
grep -q "Degraded mode:" "$serial_out" \
    || { echo "degraded-mode report missing for permanent partition" >&2; exit 1; }

echo "==> cli: bad fault specs fail cleanly (no panic)"
for spec in "frob:1" "link:0-99:1000" "drop:2000000"; do
    if cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
        --topology ring:4 --mode task --faults "$spec" > /dev/null 2>&1; then
        echo "fault spec $spec should have been rejected" >&2; exit 1
    fi
done

echo "==> cli: invalid topology specs fail cleanly (no panic)"
for spec in ring:1 mesh:0x4 hypercube:21 mesh:100000x100000; do
    if cargo run --release -p mermaid --bin mermaid-cli -- topo "$spec" > /dev/null 2>&1; then
        echo "spec $spec should have been rejected" >&2; exit 1
    fi
done

echo "==> cli: attribution JSON is byte-identical serial vs sharded"
attr_serial="$(mktemp -t mermaid-check-attr-serial.XXXXXX.json)"
attr_sharded="$(mktemp -t mermaid-check-attr-sharded.XXXXXX.json)"
trap 'rm -f "$trace_file" "$serial_out" "$sharded_out" "$attr_serial" "$attr_sharded"' EXIT
cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
    --topology torus:4x4 --mode task --pattern all2all --phases 2 \
    --attribution "$attr_serial" --shards 1 > /dev/null
cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
    --topology torus:4x4 --mode task --pattern all2all --phases 2 \
    --attribution "$attr_sharded" --shards 3 > /dev/null
diff "$attr_serial" "$attr_sharded" \
    || { echo "attribution JSON diverged serial vs sharded" >&2; exit 1; }
grep -q '"schema":"mermaid-attribution-v1"' "$attr_serial" \
    || { echo "attribution JSON missing schema tag" >&2; exit 1; }

echo "==> cli: analyze renders the attribution report"
cargo run --release -p mermaid --bin mermaid-cli -- analyze --machine test \
    --topology torus:4x4 --pattern all2all --phases 2 > "$serial_out"
for want in "Latency decomposition" "Hottest links" "Hottest routers" "heatmap"; do
    grep -q "$want" "$serial_out" \
        || { echo "analyze report missing '$want'" >&2; cat "$serial_out" >&2; exit 1; }
done

echo "==> cli: bad attribution flags fail cleanly (no panic)"
# analyze owns the report (sim-only flags rejected); --shard-profile needs
# a sharded run; writes into a missing directory name the path and cause.
if cargo run --release -p mermaid --bin mermaid-cli -- analyze --machine test \
    --topology ring:4 --metrics > /dev/null 2>&1; then
    echo "analyze --metrics should have been rejected" >&2; exit 1
fi
if cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
    --topology ring:4 --mode task --shard-profile > /dev/null 2>&1; then
    echo "--shard-profile without --shards should have been rejected" >&2; exit 1
fi
if cargo run --release -p mermaid --bin mermaid-cli -- sim --machine test \
    --topology ring:4 --mode task \
    --attribution /nonexistent-mermaid-dir/attr.json > /dev/null 2>&1; then
    echo "missing output directory should have been rejected" >&2; exit 1
fi

echo "==> cli: campaign smoke (run, resume, golden CSV)"
# A tiny 3-topology x 2-pattern grid: 6 runs. The first invocation records
# all of them; the second must find everything recorded and do zero new
# work (the resume contract); the CSV view is pinned to a golden snapshot
# (BLESS=1 cargo test --test campaign_end_to_end regenerates it).
campaign_dir="$(mktemp -d -t mermaid-check-campaign.XXXXXX)"
campaign_out="$(mktemp -t mermaid-check-campaign-out.XXXXXX.txt)"
trap 'rm -f "$trace_file" "$serial_out" "$sharded_out" "$attr_serial" "$attr_sharded" "$campaign_out"; rm -rf "$campaign_dir"' EXIT
campaign_spec="topo = ring:4, mesh:2x2, torus:2x2; pattern = ring, all2all; machine = test; phases = 2; ops = 500; seed = 5"
cargo run --release -p mermaid --bin mermaid-cli -- campaign "$campaign_spec" \
    --out "$campaign_dir" --jobs 2 2> /dev/null > "$campaign_out"
grep -q "6 run(s) expanded, 0 already recorded, 6 executed" "$campaign_out" \
    || { echo "campaign did not execute the full grid" >&2; cat "$campaign_out" >&2; exit 1; }
[ "$(wc -l < "$campaign_dir/runs.jsonl")" -eq 6 ] \
    || { echo "expected 6 JSONL records" >&2; exit 1; }
cargo run --release -p mermaid --bin mermaid-cli -- campaign "$campaign_spec" \
    --out "$campaign_dir" --jobs 2 2> /dev/null > "$campaign_out"
grep -q "6 run(s) expanded, 6 already recorded, 0 executed" "$campaign_out" \
    || { echo "campaign resume re-ran recorded work" >&2; cat "$campaign_out" >&2; exit 1; }
diff -u tests/golden/campaign_summary.csv "$campaign_dir/summary.csv" \
    || { echo "campaign CSV diverged from the golden snapshot" >&2; exit 1; }

echo "==> cli: checkpoint/restore reproduces the uninterrupted run"
# Capture a run at a 200 ns cadence, then restore its middle checkpoint
# both serially and on 3 shards: each restored output must be byte-
# identical to the straight-through run (restored runs intentionally
# print no banner so this diff IS the conformance check). Serial and
# sharded captures must also write byte-identical snapshot files.
ckpt_serial_dir="$(mktemp -d -t mermaid-check-ckpt1.XXXXXX)"
ckpt_sharded_dir="$(mktemp -d -t mermaid-check-ckpt3.XXXXXX)"
trap 'rm -f "$trace_file" "$serial_out" "$sharded_out" "$attr_serial" "$attr_sharded" "$campaign_out"; rm -rf "$campaign_dir" "$ckpt_serial_dir" "$ckpt_sharded_dir"' EXIT
ckpt_args=(sim --machine test --topology torus:4x4 --mode task --pattern all2all --phases 2)
cargo run --release -p mermaid --bin mermaid-cli -- "${ckpt_args[@]}" > "$serial_out"
cargo run --release -p mermaid --bin mermaid-cli -- "${ckpt_args[@]}" \
    --checkpoint-every 200000 --checkpoint-dir "$ckpt_serial_dir" > /dev/null
cargo run --release -p mermaid --bin mermaid-cli -- "${ckpt_args[@]}" --shards 3 \
    --checkpoint-every 200000 --checkpoint-dir "$ckpt_sharded_dir" > /dev/null
diff -r "$ckpt_serial_dir" "$ckpt_sharded_dir" \
    || { echo "serial and sharded captures wrote different snapshot files" >&2; exit 1; }
snaps=("$ckpt_serial_dir"/ckpt-*.snap)
mid="${snaps[$(( ${#snaps[@]} / 2 ))]}"
for shards in 1 3; do
    cargo run --release -p mermaid --bin mermaid-cli -- "${ckpt_args[@]}" \
        --restore "$mid" --shards "$shards" > "$sharded_out"
    diff -u "$serial_out" "$sharded_out" \
        || { echo "restored run diverged from straight-through (shards=$shards)" >&2; exit 1; }
done

echo "==> cli: damaged or mismatched snapshots fail cleanly (no panic)"
head -c 40 "$mid" > "$ckpt_serial_dir/torn.snap"
if cargo run --release -p mermaid --bin mermaid-cli -- "${ckpt_args[@]}" \
    --restore "$ckpt_serial_dir/torn.snap" > /dev/null 2>&1; then
    echo "a torn snapshot should have been refused" >&2; exit 1
fi
if cargo run --release -p mermaid --bin mermaid-cli -- "${ckpt_args[@]}" --seed 2 \
    --restore "$mid" > /dev/null 2>&1; then
    echo "a snapshot from different run parameters should have been refused" >&2; exit 1
fi

echo "All checks passed."
