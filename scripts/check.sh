#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 verification the roadmap
# requires (release build + root test suite). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "All checks passed."
