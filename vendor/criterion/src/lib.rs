//! A std-only stand-in for the `criterion` crate, vendored so the workspace
//! builds without network access.
//!
//! It is a real measuring harness, not a no-op: each benchmark is
//! calibrated, run for the configured number of samples, and summarized as
//! mean/median/min/stddev nanoseconds per iteration. Results are printed
//! and also written as one JSON file per benchmark under
//! `target/bench-results/` (override the directory with the
//! `MERMAID_BENCH_OUT` environment variable) so runs can be diffed by
//! script. No statistical outlier analysis, HTML reports, or baselines —
//! compare the JSON files instead.
// Vendored compat code: keep it byte-stable, not lint-clean.
#![allow(warnings)]
#![allow(clippy::all)]

pub use std::hint::black_box;

use std::io::Write as _;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup. This harness always re-runs setup
/// per sample (setup cost is never timed), so the variants only document
/// intent at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle, passed to each `criterion_group!` target.
pub struct Criterion {
    out_dir: std::path::PathBuf,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let out_dir = std::env::var_os("MERMAID_BENCH_OUT")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target/bench-results"));
        Criterion { out_dir }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        let stats = Stats::from_samples(&bencher.samples_ns);
        println!(
            "{}/{}  time: [{} .. mean {} .. {}]  (median {}, {} samples)",
            self.name,
            name,
            fmt_ns(stats.min_ns),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.max_ns),
            fmt_ns(stats.median_ns),
            stats.samples,
        );
        if let Err(e) = stats.write_json(&self.criterion.out_dir, &self.name, &name) {
            eprintln!("warning: could not write bench result JSON: {e}");
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, batching enough calls per sample that timer
    /// granularity is negligible.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes ~2ms, then size
        // batches to ~5ms of work each.
        let mut k: u64 = 1;
        let per_iter_ns = loop {
            let t = Instant::now();
            for _ in 0..k {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || k >= 1 << 20 {
                break (elapsed.as_nanos() as f64 / k as f64).max(0.5);
            }
            k *= 2;
        };
        let batch = ((5_000_000.0 / per_iter_ns) as u64).clamp(1, 1 << 22);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Time `routine` on fresh input from `setup`; setup cost is excluded
    /// from the measurement. Each sample is a single routine call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One untimed warmup pass.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }
}

struct Stats {
    samples: usize,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    stddev_ns: f64,
}

impl Stats {
    fn from_samples(samples: &[f64]) -> Stats {
        assert!(
            !samples.is_empty(),
            "benchmark closure never called iter/iter_batched"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Stats {
            samples: n,
            mean_ns: mean,
            median_ns: median,
            min_ns: sorted[0],
            max_ns: sorted[n - 1],
            stddev_ns: var.sqrt(),
        }
    }

    fn write_json(&self, dir: &std::path::Path, group: &str, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}__{}.json", sanitize(group), sanitize(name)));
        let mut f = std::fs::File::create(path)?;
        writeln!(
            f,
            "{{\n  \"group\": \"{}\",\n  \"name\": \"{}\",\n  \"samples\": {},\n  \"mean_ns\": {:.1},\n  \"median_ns\": {:.1},\n  \"min_ns\": {:.1},\n  \"max_ns\": {:.1},\n  \"stddev_ns\": {:.1}\n}}",
            escape(group),
            escape(name),
            self.samples,
            self.mean_ns,
            self.median_ns,
            self.min_ns,
            self.max_ns,
            self.stddev_ns,
        )
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; accept and
            // ignore them so `cargo bench` works end to end.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_sane() {
        let s = Stats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.samples, 4);
        assert!((s.mean_ns - 2.5).abs() < 1e-9);
        assert!((s.median_ns - 2.5).abs() < 1e-9);
        assert!((s.min_ns - 1.0).abs() < 1e-9);
        assert!((s.max_ns - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            sample_size: 5,
            samples_ns: Vec::new(),
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            sample_size: 3,
            samples_ns: Vec::new(),
        };
        b.iter_batched(
            || vec![1u8; 16],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert_eq!(b.samples_ns.len(), 3);
    }

    #[test]
    fn sanitize_and_escape() {
        assert_eq!(sanitize("a/b c"), "a_b_c");
        assert_eq!(escape("x\"y\\z"), "x\\\"y\\\\z");
    }
}
