//! A std-only stand-in for the `serde` crate, vendored so the workspace
//! builds without network access to crates.io.
//!
//! The design is deliberately simpler than real serde: serialisation goes
//! through a self-describing [`Value`] tree instead of a visitor pair. The
//! `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` stand-in) generate `to_value`/`from_value` conversions
//! that follow serde's externally-tagged conventions, so the JSON produced
//! by the `serde_json` stand-in matches what real serde_json would emit for
//! the same types (named structs → objects, newtype structs → their inner
//! value, unit enum variants → strings, data-carrying variants →
//! single-key objects).
// Vendored compat code: keep it byte-stable, not lint-clean.
#![allow(warnings)]
#![allow(clippy::all)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the JSON data model plus an
/// integer/float split that keeps `u64` round trips exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (struct fields keep declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a struct field in a serialised map.
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the serialised [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild a value from a serialised [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return type_err("unsigned integer", v),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::custom(format!("{n} out of range for i64")))?,
                    _ => return type_err("integer", v),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    _ => type_err("number", v),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => type_err("bool", v),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => type_err("string", v),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => type_err("sequence", v),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = match v {
                    Value::Seq(s) => s,
                    _ => return type_err("tuple sequence", v),
                };
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if s.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected tuple of {LEN}, got {} elements", s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        // Deterministic output regardless of hash order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => type_err("map", v),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        // Already key-ordered; serialise in iteration order.
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => type_err("map", v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
        assert_eq!(
            <(u64, f64)>::from_value(&(9u64, 0.5f64).to_value()),
            Ok((9, 0.5))
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
