//! A std-only stand-in for the `bytes` crate, vendored so the workspace
//! builds without network access. `Bytes`/`BytesMut` are plain `Vec<u8>`
//! wrappers (no refcounted zero-copy slicing — nothing in this workspace
//! needs it); `Buf`/`BufMut` cover the cursor-style access the trace codec
//! uses.
// Vendored compat code: keep it byte-stable, not lint-clean.
#![allow(warnings)]
#![allow(clippy::all)]

use std::ops::Deref;

/// An immutable byte buffer with an internal read cursor (consumed
/// front-to-back through [`Buf`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Copying stand-in for bytes' zero-copy static constructor.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data)
    }

    /// A new `Bytes` holding the given subrange of the unread bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::from(&self.as_slice()[range])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-cursor access to a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: not enough bytes"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.pos += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Append access to a byte sink.
pub trait BufMut {
    fn put_u8(&mut self, b: u8);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_consumes_front_to_back() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.remaining(), 4);
        assert_eq!(b.get_u8(), 1);
        let mut two = [0u8; 2];
        b.copy_to_slice(&mut two);
        assert_eq!(two, [2, 3]);
        assert_eq!(b.remaining(), 1);
        assert!(b.has_remaining());
        assert_eq!(b.get_u8(), 4);
        assert!(!b.has_remaining());
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(0xAB);
        m.put_slice(&[1, 2, 3]);
        let b = m.freeze();
        assert_eq!(b.as_slice(), &[0xAB, 1, 2, 3]);
    }

    #[test]
    fn slice_buf_works() {
        let mut s: &[u8] = &[9, 8, 7];
        assert_eq!(s.get_u8(), 9);
        assert_eq!(s.remaining(), 2);
    }
}
