//! JSON text encoding/decoding over the vendored serde stand-in's
//! [`serde::Value`] model. Output matches what real serde_json would emit
//! for the same types under serde's default (externally-tagged)
//! representation.
// Vendored compat code: keep it byte-stable, not lint-clean.
#![allow(warnings)]
#![allow(clippy::all)]

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serialise `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => write!(out, "{n}").unwrap(),
        Value::I64(n) => write!(out, "{n}").unwrap(),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::custom("cannot serialise non-finite float as JSON"));
            }
            // `{:?}` is Rust's shortest round-trip float rendering; it always
            // includes a '.' or 'e', so the value re-parses as a float.
            write!(out, "{x:?}").unwrap();
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.s[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character {other:?} at byte {}",
                self.i
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .s
                .get(self.i)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .s
                        .get(self.i)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| Error::custom("short \\u escape"))?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject them explicitly.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| Error::custom("unsupported \\u escape"))?;
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let start = self.i - 1;
                    let rest = std::str::from_utf8(&self.s[start..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().unwrap();
                    self.i = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [1.0f64, 0.1, 1e300, -2.5e-7, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}🦀".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u64, 0.25f64), (2, 0.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.25],[2,0.5]]");
        assert_eq!(from_str::<Vec<(u64, f64)>>(&json).unwrap(), v);
    }

    #[test]
    fn large_u64_survives() {
        let n = u64::MAX;
        assert_eq!(from_str::<u64>(&to_string(&n).unwrap()).unwrap(), n);
    }

    #[test]
    fn whitespace_is_tolerated() {
        assert_eq!(
            from_str::<Vec<u32>>(" [ 1 , 2 ,\n3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }
}
