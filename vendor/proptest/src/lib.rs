//! A std-only stand-in for the `proptest` crate, vendored so the workspace
//! builds without network access.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), integer-range and
//! tuple strategies, `any::<T>()`, `Just`, `prop_oneof!`, `.prop_map`,
//! `prop::collection::vec`, `prop::sample::select`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! inputs), and the RNG stream is this workspace's xoshiro256++, seeded
//! deterministically from the test name — runs are reproducible but do not
//! match upstream proptest's sequences. `.proptest-regressions` files are
//! ignored.
// Vendored compat code: keep it byte-stable, not lint-clean.
#![allow(warnings)]
#![allow(clippy::all)]

use std::fmt;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// The deterministic RNG driving a property test.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the test's name, so each test has a stable stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn below(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound)
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for one property-test parameter.
pub trait Strategy {
    type Value: fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Marker strategy for [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

pub mod strategy {
    use super::*;

    /// A uniformly weighted choice between type-erased strategies
    /// (the expansion of [`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<Rc<dyn Strategy<Value = T>>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Rc<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// Type-erase a strategy for [`Union`].
    pub fn erase<S>(s: S) -> Rc<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Rc::new(s)
    }
}

pub mod collection {
    use super::*;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range in collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::*;

    /// Uniform choice from a fixed list of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select on an empty list");
        Select { options }
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), a, b
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::erase($arm)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<
                    ::std::result::Result<(), $crate::TestCaseError>,
                    ::std::boxed::Box<dyn ::std::any::Any + ::std::marker::Send>,
                > = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    }
                ));
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => passed += 1,
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::TestCaseError::Reject(why),
                    )) => {
                        rejected += 1;
                        assert!(
                            rejected < cfg.cases.saturating_mul(256).max(1024),
                            "too many prop_assume! rejections ({rejected}); last: {why}"
                        );
                    }
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::TestCaseError::Fail(msg),
                    )) => {
                        panic!(
                            "proptest case failed after {passed} passing cases: {msg}\ninputs:\n{inputs}"
                        );
                    }
                    ::std::result::Result::Err(panic_payload) => {
                        eprintln!(
                            "proptest case panicked after {passed} passing cases; inputs:\n{inputs}"
                        );
                        ::std::panic::resume_unwind(panic_payload);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop::` path used by `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u32..10, y in 0i64..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0..=3).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u8..4, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            Just(1u32),
            (10u32..20).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 1 || (20..40).contains(&v), "got {}", v);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_form_parses(x in any::<bool>(), s in prop::sample::select(vec![1u8, 2, 3])) {
            prop_assert!(x || !x);
            prop_assert!((1..=3).contains(&s));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
