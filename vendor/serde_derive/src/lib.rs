//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented without `syn`/`quote`: the input item is parsed by hand from
//! the raw token stream (enough of Rust's grammar for the shapes this
//! workspace uses — non-generic structs and enums), and the generated impls
//! are built as strings and re-parsed. Supported shapes:
//!
//! * named-field structs        → `Value::Map` of fields
//! * newtype structs `T(U)`     → the inner value
//! * tuple structs              → `Value::Seq`
//! * unit structs               → `Value::Null`
//! * enums: unit variants       → `Value::Str(name)`
//!          newtype variants    → `{name: value}`
//!          tuple variants      → `{name: [..]}`
//!          struct variants     → `{name: {..}}`
//!
//! (externally tagged, matching real serde's default representation).
// Vendored compat code: keep it byte-stable, not lint-clean.
#![allow(warnings)]
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Split the tokens of a brace/paren group on commas that sit outside any
/// nested group and outside `<...>` generic arguments.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    cur.clear();
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Drop leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    &tokens[i..]
}

/// Parse `name : type` field chunks into field names.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level(group_tokens)
        .iter()
        .filter_map(|chunk| {
            let chunk = skip_attrs_and_vis(chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_tuple_fields(group_tokens: &[TokenTree]) -> usize {
    split_top_level(group_tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .count()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = skip_attrs_and_vis(&tokens);
    let mut it = tokens.iter();
    let kind = loop {
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => continue,
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    let next = it.next();
    if let Some(TokenTree::Punct(p)) = next {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in: generic types are not supported (type {name})");
        }
    }
    if kind == "struct" {
        let fields = match next {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Fields::Named(
                parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Fields::Tuple(
                parse_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("serde_derive: unsupported struct shape for {name}: {other:?}"),
        };
        Item::Struct { name, fields }
    } else {
        let body = match next {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                g.stream().into_iter().collect::<Vec<_>>()
            }
            other => panic!("serde_derive: expected enum body for {name}, got {other:?}"),
        };
        let variants = split_top_level(&body)
            .iter()
            .filter(|chunk| !chunk.is_empty())
            .map(|chunk| {
                let chunk = skip_attrs_and_vis(chunk);
                let vname = match chunk.first() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => panic!("serde_derive: expected variant name, got {other:?}"),
                };
                let fields = match chunk.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(
                            &g.stream().into_iter().collect::<Vec<_>>(),
                        ))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(parse_tuple_fields(
                            &g.stream().into_iter().collect::<Vec<_>>(),
                        ))
                    }
                    None => Fields::Unit,
                    other => panic!(
                        "serde_derive: unsupported variant shape {vname} in {name}: {other:?}"
                    ),
                };
                Variant {
                    name: vname,
                    fields,
                }
            })
            .collect();
        Item::Enum { name, variants }
    }
}

fn named_to_value(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn named_from_value(ty: &str, fields: &[String], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::map_get({map_expr}, \"{f}\")\
                 .ok_or_else(|| ::serde::Error::custom(\"missing field `{f}`\"))?)?"
            )
        })
        .collect();
    format!("{ty} {{ {} }}", inits.join(", "))
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => named_to_value(fs, "&self."),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {inner})])",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inner = named_to_value(fs, "");
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {inner})])",
                                fs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl did not parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let ctor = named_from_value(name, fs, "m");
                    format!(
                        "let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                         \"expected map for struct {name}\"))?;\n\
                         ::std::result::Result::Ok({ctor})"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                        .collect();
                    format!(
                        "let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                         \"expected seq for tuple struct {name}\"))?;\n\
                         if s.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(val)?))"
                        ),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let s = val.as_seq().ok_or_else(|| ::serde::Error::custom(\
                                     \"expected seq for variant {vn}\"))?;\n\
                                     if s.len() != {n} {{ return ::std::result::Result::Err(\
                                     ::serde::Error::custom(\"wrong arity for variant {vn}\")); }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let ctor = named_from_value(&format!("{name}::{vn}"), fs, "m");
                            format!(
                                "\"{vn}\" => {{\n\
                                     let m = val.as_map().ok_or_else(|| ::serde::Error::custom(\
                                     \"expected map for variant {vn}\"))?;\n\
                                     ::std::result::Result::Ok({ctor})\n\
                                 }}"
                            )
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (tag, val) = &m[0];\n\
                                 match tag.as_str() {{\n\
                                     {data}\n\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"bad value for enum {name}: {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    unit_arms.join(",\n") + ","
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    data_arms.join(",\n") + ","
                },
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl did not parse")
}
