//! A std-only stand-in for the `rand` crate, vendored so the workspace
//! builds without network access.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! well-studied generator that is more than adequate for stochastic
//! workload synthesis. The stream differs from real rand's StdRng
//! (ChaCha12), so seeded sequences are reproducible *within* this
//! workspace but not against upstream rand; no test in this repository
//! depends on upstream streams.
// Vendored compat code: keep it byte-stable, not lint-clean.
#![allow(warnings)]
#![allow(clippy::all)]

/// Uniform sampling from a range type (the subset of rand's
/// `SampleRange`/`SampleUniform` machinery this workspace uses).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `low..high` or `low..=high`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a u64 to a float uniform in `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
fn uniform_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "empty sample range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty float range in gen_range");
        let u = unit_f64(rng.next_u64());
        let x = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_u64_range_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
