//! Instrumented SPMD kernels — "application descriptions … ranging from
//! full-blown parallel programs to small benchmarks used to tune and
//! validate the machine parameters" (paper, Section 3).
//!
//! Each kernel is written once against the [`Annotator`] API and therefore
//! runs unchanged through the batch translator, the threaded
//! physical-time-interleaved generator, and (via the traces it produces)
//! every architecture model — the architecture-independence the paper
//! requires of application descriptions.
//!
//! All kernels generate *balanced* communication: every send is matched by
//! a receive on the peer.

use mermaid_ops::{ArithOp, DataType, NodeId};

use crate::annotate::Annotator;

/// Row-block matrix multiply `C = A × B` on an `n×n` matrix distributed
/// over `nodes` processors by row blocks; the result blocks are gathered on
/// node 0.
///
/// Per node: `rows × n × n` multiply-accumulate iterations, then one gather
/// message (workers send, node 0 receives).
pub fn block_matmul(a: &mut impl Annotator, nodes: u32, n: u64) {
    let me = a.node();
    let rows = rows_of(me, nodes, n);
    // Local blocks: A rows, full B, C rows.
    let va = a.global("A_block", DataType::F64, rows.max(1) * n);
    let vb = a.global("B", DataType::F64, n * n);
    let vc = a.global("C_block", DataType::F64, rows.max(1) * n);
    let acc = a.local("acc", DataType::F64, 1);

    a.call();
    for i in 0..rows {
        for j in 0..n {
            let jl = a.loop_head();
            a.loadc(DataType::F64); // acc = 0
            a.store(acc);
            for k in 0..n {
                let kl = a.loop_head();
                a.load_idx(va, i * n + k);
                a.load_idx(vb, k * n + j);
                a.arith(ArithOp::Mul, DataType::F64);
                a.load(acc);
                a.arith(ArithOp::Add, DataType::F64);
                a.store(acc);
                a.loop_back(kl);
            }
            a.load(acc);
            a.store_idx(vc, i * n + j);
            a.loop_back(jl);
        }
    }
    a.ret();

    // Gather C blocks on node 0.
    let block_bytes = (rows * n * 8) as u32;
    if me == 0 {
        for w in 1..nodes {
            if rows_of(w, nodes, n) > 0 {
                a.recv(w);
            }
        }
    } else if rows > 0 {
        a.send(block_bytes, 0);
    }
}

/// Rows assigned to `node` under block distribution of `n` rows.
fn rows_of(node: NodeId, nodes: u32, n: u64) -> u64 {
    let base = n / nodes as u64;
    let extra = n % nodes as u64;
    base + if (node as u64) < extra { 1 } else { 0 }
}

/// One-dimensional Jacobi relaxation with halo exchange: `cells` interior
/// points per node, `iters` sweeps. Neighbours exchange one `f64` halo cell
/// per side per sweep (asynchronous sends, blocking receives — the
/// standard deadlock-free schedule).
pub fn jacobi1d(a: &mut impl Annotator, nodes: u32, cells: u64, iters: u32) {
    let me = a.node();
    let left = me.checked_sub(1);
    let right = if me + 1 < nodes { Some(me + 1) } else { None };
    let cur = a.global("u", DataType::F64, cells + 2); // plus halos
    let new = a.global("u_new", DataType::F64, cells + 2);

    for _ in 0..iters {
        // Halo exchange.
        if let Some(l) = left {
            a.asend(8, l);
        }
        if let Some(r) = right {
            a.asend(8, r);
        }
        if let Some(l) = left {
            a.recv(l);
        }
        if let Some(r) = right {
            a.recv(r);
        }
        // Sweep: u_new[i] = 0.5*(u[i-1] + u[i+1]).
        let sweep = a.loop_head();
        for i in 1..=cells {
            let il = a.loop_head();
            a.load_idx(cur, i - 1);
            a.load_idx(cur, i + 1);
            a.arith(ArithOp::Add, DataType::F64);
            a.loadc(DataType::F64);
            a.arith(ArithOp::Mul, DataType::F64);
            a.store_idx(new, i);
            a.loop_back(il);
        }
        // Swap buffers (pointer swap: register work only).
        a.arith(ArithOp::Add, DataType::I32);
        a.loop_back(sweep);
    }
}

/// Binary-tree reduction of `elems` local values to node 0.
///
/// Every node first reduces its local array, then the partial sums flow up
/// a binary tree: in round `r`, nodes with bit `r` set send to
/// `node - 2^r` and stop; the receivers accumulate.
pub fn tree_reduce(a: &mut impl Annotator, nodes: u32, elems: u64) {
    let me = a.node();
    let data = a.global("data", DataType::F64, elems.max(1));
    let sum = a.local("sum", DataType::F64, 1);

    // Local reduction.
    a.loadc(DataType::F64);
    a.store(sum);
    for i in 0..elems {
        let il = a.loop_head();
        a.load_idx(data, i);
        a.load(sum);
        a.arith(ArithOp::Add, DataType::F64);
        a.store(sum);
        a.loop_back(il);
    }

    // Tree combine.
    let mut stride = 1u32;
    while stride < nodes {
        if me & stride != 0 {
            // Send my partial upward and leave the tree.
            a.send(8, me - stride);
            return;
        }
        if me + stride < nodes {
            a.recv(me + stride);
            a.load(sum);
            a.arith(ArithOp::Add, DataType::F64);
            a.store(sum);
        }
        stride <<= 1;
    }
}

/// All-to-all personalized exchange (matrix transpose pattern): every node
/// sends a `block_bytes` block to every other node, then receives from all.
pub fn transpose_all_to_all(a: &mut impl Annotator, nodes: u32, block_bytes: u32) {
    let me = a.node();
    // Marshal each outgoing block (touch it once).
    let buf = a.global("sendbuf", DataType::F64, (block_bytes as u64 / 8).max(1));
    for off in 0..(nodes as u64 - 1).min(8) {
        a.load_idx(buf, off);
        a.arith(ArithOp::Add, DataType::I32);
    }
    for peer in 0..nodes {
        if peer != me {
            a.asend(block_bytes, peer);
        }
    }
    for peer in 0..nodes {
        if peer != me {
            a.recv(peer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{TargetLayout, Translator};
    use mermaid_ops::{Trace, TraceSet};

    fn run_all<F: Fn(&mut Translator)>(nodes: u32, f: F) -> TraceSet {
        let traces: Vec<Trace> = (0..nodes)
            .map(|node| {
                let mut t = Translator::new(node, TargetLayout::default());
                f(&mut t);
                t.finish()
            })
            .collect();
        TraceSet::from_traces(traces)
    }

    #[test]
    fn matmul_is_balanced_and_scales_cubically() {
        let small = run_all(4, |t| block_matmul(t, 4, 8));
        assert!(small.comm_imbalances().is_empty());
        let large = run_all(4, |t| block_matmul(t, 4, 16));
        // 8× the multiply work per doubling of n.
        let s = small.trace(1).stats();
        let l = large.trace(1).stats();
        let ratio = l.float_arith as f64 / s.float_arith as f64;
        assert!((6.0..10.0).contains(&ratio), "flop ratio {ratio}");
    }

    #[test]
    fn matmul_gathers_on_node_zero() {
        let ts = run_all(4, |t| block_matmul(t, 4, 8));
        assert_eq!(ts.trace(0).stats().recvs, 3);
        assert_eq!(ts.trace(0).stats().sends, 0);
        for w in 1..4 {
            assert_eq!(ts.trace(w).stats().sends, 1);
        }
    }

    #[test]
    fn matmul_handles_more_nodes_than_rows() {
        // 2 rows over 4 nodes: nodes 2 and 3 hold nothing and send nothing.
        let ts = run_all(4, |t| block_matmul(t, 4, 2));
        assert!(ts.comm_imbalances().is_empty());
        assert_eq!(ts.trace(3).stats().sends, 0);
        assert_eq!(ts.trace(0).stats().recvs, 1);
    }

    #[test]
    fn jacobi_exchanges_halos_every_iteration() {
        let ts = run_all(3, |t| jacobi1d(t, 3, 16, 5));
        assert!(ts.comm_imbalances().is_empty());
        // Middle node: 2 sends + 2 recvs per iteration.
        let mid = ts.trace(1).stats();
        assert_eq!(mid.asends, 10);
        assert_eq!(mid.recvs, 10);
        // Edge nodes: 1 each per iteration.
        let edge = ts.trace(0).stats();
        assert_eq!(edge.asends, 5);
        assert_eq!(edge.recvs, 5);
    }

    #[test]
    fn jacobi_single_node_has_no_communication() {
        let ts = run_all(1, |t| jacobi1d(t, 1, 16, 3));
        assert_eq!(ts.trace(0).stats().comm_ops(), 0);
        assert!(ts.trace(0).stats().float_arith > 0);
    }

    #[test]
    fn tree_reduce_is_balanced_for_any_node_count() {
        for nodes in [1u32, 2, 3, 4, 5, 7, 8, 13, 16] {
            let ts = run_all(nodes, |t| tree_reduce(t, nodes, 32));
            assert!(
                ts.comm_imbalances().is_empty(),
                "tree_reduce unbalanced for {nodes} nodes"
            );
            // Exactly nodes-1 messages flow in a reduction.
            let total_sends: u64 = ts.iter().map(|t| t.stats().sends).sum();
            assert_eq!(total_sends, nodes as u64 - 1);
            // Node 0 never sends.
            assert_eq!(ts.trace(0).stats().sends, 0);
        }
    }

    #[test]
    fn transpose_sends_to_everyone() {
        let n = 5u32;
        let ts = run_all(n, |t| transpose_all_to_all(t, n, 4096));
        assert!(ts.comm_imbalances().is_empty());
        for node in 0..n {
            let s = ts.trace(node).stats();
            assert_eq!(s.asends, n as u64 - 1);
            assert_eq!(s.recvs, n as u64 - 1);
            assert_eq!(s.bytes_sent, 4096 * (n as u64 - 1));
        }
    }

    #[test]
    fn kernels_work_through_the_threaded_generator() {
        use crate::interleave::InterleavedTraceGen;
        let gen = InterleavedTraceGen::spawn(4, TargetLayout::default(), |ctx| {
            tree_reduce(ctx, 4, 16);
        });
        let ts = gen.collect_all();
        assert!(ts.comm_imbalances().is_empty());
        // Identical to the batch translation.
        let batch = run_all(4, |t| tree_reduce(t, 4, 16));
        assert_eq!(ts, batch);
    }
}
