//! # mermaid-tracegen — the trace generators
//!
//! The interface between the application level and the architecture level
//! (paper, Fig. 1): tools that turn application descriptions into traces of
//! operations.
//!
//! * [`stochastic`] — the **stochastic generator**: produces realistic
//!   synthetic traces from probabilistic application descriptions
//!   (instruction mix, locality model, communication pattern). "Modest
//!   accuracy … useful when fast-prototyping new architectures", and easy
//!   to adjust.
//! * [`annotate`] — the **annotation translator**: a library linked with
//!   instrumented programs. Annotations follow the program's control flow
//!   and are translated into operations using a *variable descriptor
//!   table*, according to the addressing/register model of the target — "a
//!   kind of generic compiler". (The paper instruments C sources
//!   automatically; here the instrumented program is a Rust closure making
//!   the same library calls.)
//! * [`interleave`] — **physical-time interleaving** (Dubois et al.): the
//!   threaded trace generation scheme of Section 3.1. One thread per
//!   simulated node; a thread that hits a *global event* suspends until the
//!   simulator has established that no earlier event can affect it, which
//!   makes the multiprocessor trace exactly the one the target machine
//!   would produce.
//! * [`programs`] — instrumented SPMD kernels (matrix multiply, stencil,
//!   reduction, transpose) used by the examples and the benchmark harness.

pub mod annotate;
pub mod collectives;
pub mod interleave;
pub mod programs;
pub mod stochastic;

pub use annotate::{Translator, VarId};
pub use interleave::{InterleavedTraceGen, NodeCtx};
pub use stochastic::{CommPattern, InstructionMix, SizeDist, StochasticApp, StochasticGenerator};
