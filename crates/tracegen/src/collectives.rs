//! Collective-communication building blocks for instrumented programs.
//!
//! The SPMD kernels of [`crate::programs`] hand-roll their communication;
//! real message-passing applications compose a small set of collectives.
//! These are the classic algorithms (as a mid-90s message-passing library
//! would implement them), written once against the [`Annotator`] API so
//! any program can reuse them. Every collective is *balanced by
//! construction*: called by all `nodes` ranks, it produces matching
//! sends/receives.

use mermaid_ops::NodeId;

use crate::annotate::Annotator;

/// Broadcast `bytes` from `root` to every rank along a binomial tree
/// (log₂ n rounds).
pub fn broadcast(a: &mut impl Annotator, nodes: u32, root: NodeId, bytes: u32) {
    assert!(root < nodes, "root {root} out of range");
    // Work in the rotated space where the root is rank 0.
    let me = (a.node() + nodes - root) % nodes;
    let unrot = |r: u32| (r + root) % nodes;
    // Binomial tree: in round k (mask = 2^k), ranks < mask send to
    // rank + mask (if it exists).
    let mut mask = 1u32;
    while mask < nodes {
        if me < mask {
            let peer = me + mask;
            if peer < nodes {
                a.send(bytes, unrot(peer));
            }
        } else if me < 2 * mask {
            a.recv(unrot(me - mask));
        }
        mask <<= 1;
    }
}

/// Reduce `bytes`-sized contributions to `root` along the mirrored
/// binomial tree (the inverse flow of [`broadcast`]).
pub fn reduce(a: &mut impl Annotator, nodes: u32, root: NodeId, bytes: u32) {
    assert!(root < nodes, "root {root} out of range");
    let me = (a.node() + nodes - root) % nodes;
    let unrot = |r: u32| (r + root) % nodes;
    // Reverse the broadcast rounds: largest mask first.
    let mut mask = 1u32;
    while mask < nodes {
        mask <<= 1;
    }
    mask >>= 1;
    while mask >= 1 {
        if me < mask {
            let peer = me + mask;
            if peer < nodes {
                a.recv(unrot(peer));
            }
        } else if me < 2 * mask {
            a.send(bytes, unrot(me - mask));
            return; // contributed; done
        }
        if mask == 1 {
            break;
        }
        mask >>= 1;
    }
}

/// Allreduce = reduce to rank 0 + broadcast back.
pub fn allreduce(a: &mut impl Annotator, nodes: u32, bytes: u32) {
    reduce(a, nodes, 0, bytes);
    broadcast(a, nodes, 0, bytes);
}

/// Scatter distinct `bytes`-sized blocks from `root` to every other rank
/// (linear, as early MPI implementations did).
pub fn scatter(a: &mut impl Annotator, nodes: u32, root: NodeId, bytes: u32) {
    let me = a.node();
    if me == root {
        for r in 0..nodes {
            if r != root {
                a.asend(bytes, r);
            }
        }
    } else {
        a.recv(root);
    }
}

/// Gather `bytes`-sized blocks from every rank onto `root` (linear).
pub fn gather(a: &mut impl Annotator, nodes: u32, root: NodeId, bytes: u32) {
    let me = a.node();
    if me == root {
        for r in 0..nodes {
            if r != root {
                a.recv(r);
            }
        }
    } else {
        a.asend(bytes, root);
    }
}

/// All-gather via the ring algorithm: `n-1` rounds, each rank forwards the
/// block it received in the previous round (bandwidth-optimal).
pub fn allgather_ring(a: &mut impl Annotator, nodes: u32, bytes: u32) {
    if nodes < 2 {
        return;
    }
    let me = a.node();
    let right = (me + 1) % nodes;
    let left = (me + nodes - 1) % nodes;
    for _ in 0..nodes - 1 {
        a.asend(bytes, right);
        a.recv(left);
    }
}

/// Barrier: a zero-byte [`allreduce`].
pub fn barrier(a: &mut impl Annotator, nodes: u32) {
    allreduce(a, nodes, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::Translator;
    use mermaid_ops::{Trace, TraceSet};

    fn run_all(nodes: u32, f: impl Fn(&mut Translator)) -> TraceSet {
        let traces: Vec<Trace> = (0..nodes)
            .map(|node| {
                let mut t = Translator::with_defaults(node);
                f(&mut t);
                t.finish()
            })
            .collect();
        TraceSet::from_traces(traces)
    }

    /// Simulate the trace set and assert completion (catches deadlocks that
    /// mere send/recv counting cannot, e.g. circular waits of sync sends).
    fn assert_completes(ts: &TraceSet) {
        use mermaid_network::{CommSim, NetworkConfig, Topology};
        let n = ts.nodes() as u32;
        let r = CommSim::new(NetworkConfig::test(Topology::FullyConnected(n.max(2))), &{
            let mut big = TraceSet::new(n.max(2) as usize);
            for node in 0..n {
                *big.trace_mut(node) = ts.trace(node).clone();
            }
            big
        })
        .run();
        assert!(r.all_done, "collective deadlocked: {:?}", r.deadlocked);
    }

    #[test]
    fn broadcast_is_balanced_and_logarithmic() {
        for nodes in [1u32, 2, 3, 5, 8, 13, 16] {
            for root in [0, nodes - 1] {
                let ts = run_all(nodes, |t| broadcast(t, nodes, root, 1024));
                assert!(ts.comm_imbalances().is_empty(), "{nodes} nodes root {root}");
                assert_completes(&ts);
                // Every rank except the root receives exactly once.
                for node in 0..nodes {
                    let s = ts.trace(node).stats();
                    assert_eq!(s.recvs, u64::from(node != root), "node {node}");
                }
                // Total messages = n - 1.
                let sends: u64 = ts.iter().map(|t| t.stats().sends).sum();
                assert_eq!(sends, (nodes - 1) as u64);
                // The root sends at most ⌈log2 n⌉ times.
                let root_sends = ts.trace(root).stats().sends;
                assert!(root_sends <= 32 - u32::leading_zeros(nodes.max(1)) as u64 + 1);
            }
        }
    }

    #[test]
    fn reduce_mirrors_broadcast() {
        for nodes in [1u32, 2, 3, 6, 8, 11, 16] {
            let ts = run_all(nodes, |t| reduce(t, nodes, 0, 8));
            assert!(ts.comm_imbalances().is_empty(), "{nodes} nodes");
            assert_completes(&ts);
            let sends: u64 = ts.iter().map(|t| t.stats().sends).sum();
            assert_eq!(sends, (nodes - 1) as u64);
            assert_eq!(ts.trace(0).stats().sends, 0, "root never sends");
        }
    }

    #[test]
    fn allreduce_and_barrier_complete() {
        for nodes in [2u32, 5, 8] {
            let ts = run_all(nodes, |t| allreduce(t, nodes, 64));
            assert!(ts.comm_imbalances().is_empty());
            assert_completes(&ts);
            let ts = run_all(nodes, |t| barrier(t, nodes));
            assert_completes(&ts);
        }
    }

    #[test]
    fn scatter_gather_are_linear_and_balanced() {
        let nodes = 7u32;
        let ts = run_all(nodes, |t| scatter(t, nodes, 2, 512));
        assert!(ts.comm_imbalances().is_empty());
        assert_completes(&ts);
        assert_eq!(ts.trace(2).stats().asends, 6);

        let ts = run_all(nodes, |t| gather(t, nodes, 2, 512));
        assert!(ts.comm_imbalances().is_empty());
        assert_completes(&ts);
        assert_eq!(ts.trace(2).stats().recvs, 6);
    }

    #[test]
    fn allgather_ring_moves_n_minus_1_blocks_per_rank() {
        let nodes = 6u32;
        let ts = run_all(nodes, |t| allgather_ring(t, nodes, 2048));
        assert!(ts.comm_imbalances().is_empty());
        assert_completes(&ts);
        for node in 0..nodes {
            let s = ts.trace(node).stats();
            assert_eq!(s.asends, (nodes - 1) as u64);
            assert_eq!(s.recvs, (nodes - 1) as u64);
        }
        // Single node degenerates to nothing.
        let ts = run_all(1, |t| allgather_ring(t, 1, 2048));
        assert_eq!(ts.trace(0).stats().comm_ops(), 0);
    }

    #[test]
    fn collectives_compose_into_a_program() {
        // scatter → allreduce → gather, on 8 ranks, completes. (The
        // communication-only composition: computation between collectives
        // would flow through the hybrid model's task extraction first.)
        let nodes = 8u32;
        let ts = run_all(nodes, |t| {
            scatter(t, nodes, 0, 4096);
            allreduce(t, nodes, 8);
            gather(t, nodes, 0, 4096);
        });
        assert!(ts.comm_imbalances().is_empty());
        assert_completes(&ts);
    }
}
