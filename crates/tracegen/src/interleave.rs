//! Physical-time-interleaved, threaded trace generation (Section 3.1).
//!
//! "To produce the multiple operation traces that are needed for
//! simulation, both trace generators model concurrent execution by means of
//! threads. Each thread accounts for the behaviour of one processor within
//! the parallel machine. Whenever a thread encounters a global event, it is
//! suspended until explicitly resumed by the simulator. […] This
//! thread-scheduling scheme, under the control of the simulator, guarantees
//! the validity of the multiprocessor traces at all times."
//!
//! [`InterleavedTraceGen`] spawns one OS thread per simulated node. Each
//! thread runs the instrumented program against a [`NodeCtx`] (the same
//! [`Annotator`] API as the batch translator). Operations stream to the
//! simulator through a bounded channel; when the program issues a *global
//! event* (any communication operation), the thread parks until the
//! simulator calls [`InterleavedTraceGen::resume`] — which the simulator
//! does only once every other node has reached the same point in simulated
//! time, exactly the feedback arrow of Fig. 1.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use mermaid_ops::{ArithOp, DataType, NodeId, Operation, Trace, TraceSet};

use crate::annotate::{Annotator, LoopLabel, TargetLayout, Translator, VarId};

/// Capacity of the per-node operation channel. Bounded so that a
/// free-running computation phase cannot buffer unbounded trace data —
/// simulator back-pressure suspends the generating thread instead, keeping
/// memory consumption flat (the paper's Section 6 argument).
const OP_CHANNEL_CAP: usize = 4096;

/// The per-thread annotation context: an [`Annotator`] whose operations
/// stream to the simulator, suspending at global events.
pub struct NodeCtx {
    inner: Translator,
    op_tx: SyncSender<Operation>,
    resume_rx: Receiver<()>,
    /// Set when the consumer went away; generation continues silently so
    /// the program thread can finish.
    detached: bool,
}

impl NodeCtx {
    fn flush(&mut self) {
        if self.detached {
            self.inner.drain_ops();
            return;
        }
        for op in self.inner.drain_ops() {
            if self.op_tx.send(op).is_err() {
                self.detached = true;
                return;
            }
        }
    }

    /// Park until the simulator resumes this node (or the simulator is
    /// gone, in which case generation free-runs to completion).
    fn suspend(&mut self) {
        if self.detached {
            return;
        }
        if self.resume_rx.recv().is_err() {
            self.detached = true;
        }
    }

    fn emit_global(&mut self, op: Operation) {
        debug_assert!(op.is_global_event());
        self.flush();
        if !self.detached && self.op_tx.send(op).is_err() {
            self.detached = true;
        }
        // Physical-time interleaving: wait for the simulator's feedback.
        self.suspend();
    }
}

impl Annotator for NodeCtx {
    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn global(&mut self, name: &str, ty: DataType, elems: u64) -> VarId {
        self.inner.global(name, ty, elems)
    }

    fn local(&mut self, name: &str, ty: DataType, elems: u64) -> VarId {
        self.inner.local(name, ty, elems)
    }

    fn arg(&mut self, name: &str, ty: DataType) -> VarId {
        self.inner.arg(name, ty)
    }

    fn load(&mut self, v: VarId) {
        self.inner.load(v);
        self.flush();
    }

    fn load_idx(&mut self, v: VarId, idx: u64) {
        self.inner.load_idx(v, idx);
        self.flush();
    }

    fn store(&mut self, v: VarId) {
        self.inner.store(v);
        self.flush();
    }

    fn store_idx(&mut self, v: VarId, idx: u64) {
        self.inner.store_idx(v, idx);
        self.flush();
    }

    fn loadc(&mut self, ty: DataType) {
        self.inner.loadc(ty);
        self.flush();
    }

    fn arith(&mut self, op: ArithOp, ty: DataType) {
        self.inner.arith(op, ty);
        self.flush();
    }

    fn loop_head(&mut self) -> LoopLabel {
        self.inner.loop_head()
    }

    fn loop_back(&mut self, label: LoopLabel) {
        self.inner.loop_back(label);
        self.flush();
    }

    fn branch_fwd(&mut self) {
        self.inner.branch_fwd();
        self.flush();
    }

    fn call(&mut self) {
        self.inner.call();
        self.flush();
    }

    fn ret(&mut self) {
        self.inner.ret();
        self.flush();
    }

    fn send(&mut self, bytes: u32, dst: NodeId) {
        self.emit_global(Operation::Send { bytes, dst });
    }

    fn recv(&mut self, src: NodeId) {
        self.emit_global(Operation::Recv { src });
    }

    fn asend(&mut self, bytes: u32, dst: NodeId) {
        self.emit_global(Operation::ASend { bytes, dst });
    }

    fn arecv(&mut self, src: NodeId) {
        self.emit_global(Operation::ARecv { src });
    }

    fn get(&mut self, bytes: u32, from: NodeId) {
        self.emit_global(Operation::Get { bytes, from });
    }

    fn put(&mut self, bytes: u32, to: NodeId) {
        self.emit_global(Operation::Put { bytes, to });
    }
}

/// Handle to one node's generator thread.
struct NodeHandle {
    op_rx: Receiver<Operation>,
    resume_tx: SyncSender<()>,
    join: Option<JoinHandle<()>>,
}

/// The execution-driven trace generator: one thread per node, interleaved
/// with the simulator.
pub struct InterleavedTraceGen {
    nodes: Vec<NodeHandle>,
}

impl InterleavedTraceGen {
    /// Spawn `nodes` generator threads, each running `program(node_ctx)`.
    /// The program receives its node id through [`Annotator::node`].
    pub fn spawn<F>(nodes: u32, layout: TargetLayout, program: F) -> Self
    where
        F: Fn(&mut NodeCtx) + Send + Clone + 'static,
    {
        let handles = (0..nodes)
            .map(|node| {
                let (op_tx, op_rx) = sync_channel(OP_CHANNEL_CAP);
                let (resume_tx, resume_rx) = sync_channel(1);
                let program = program.clone();
                let join = std::thread::Builder::new()
                    .name(format!("mermaid-node-{node}"))
                    .spawn(move || {
                        let mut ctx = NodeCtx {
                            inner: Translator::new(node, layout),
                            op_tx,
                            resume_rx,
                            detached: false,
                        };
                        program(&mut ctx);
                        ctx.flush();
                        // Channel closes on drop → consumer sees end of trace.
                    })
                    .expect("failed to spawn trace-generator thread");
                NodeHandle {
                    op_rx,
                    resume_tx,
                    join: Some(join),
                }
            })
            .collect();
        InterleavedTraceGen { nodes: handles }
    }

    /// Number of node threads.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Pull the next operation of `node`, blocking until the generator
    /// produces one. Returns `None` when the node's program has finished.
    ///
    /// After receiving a *global event*, the caller must not pull from this
    /// node again until it has called [`InterleavedTraceGen::resume`] — the
    /// generator thread is suspended and no operation will arrive.
    pub fn next_op(&mut self, node: NodeId) -> Option<Operation> {
        self.nodes[node as usize].op_rx.recv().ok()
    }

    /// Resume `node` past its pending global event (the simulator has
    /// determined that no other event can affect it any more).
    pub fn resume(&mut self, node: NodeId) {
        // A send can only fail when the thread already exited — harmless.
        let _ = self.nodes[node as usize].resume_tx.send(());
    }

    /// Free-run all nodes to completion and collect the full traces
    /// (resuming every global event immediately). Useful when the traces
    /// are wanted as artefacts rather than interleaved with a simulator.
    pub fn collect_all(mut self) -> TraceSet {
        let n = self.nodes.len();
        let mut traces: Vec<Trace> = (0..n as u32).map(Trace::new).collect();
        for node in 0..n as u32 {
            while let Some(op) = self.next_op(node) {
                let global = op.is_global_event();
                traces[node as usize].push(op);
                if global {
                    self.resume(node);
                }
            }
        }
        TraceSet::from_traces(traces)
    }
}

impl Drop for InterleavedTraceGen {
    fn drop(&mut self) {
        for h in &mut self.nodes {
            // Unblock a suspended thread, then detach channels and join.
            let _ = h.resume_tx.try_send(());
            // Drain so a thread blocked on a full op channel can proceed.
            while h.op_rx.try_recv().is_ok() {}
        }
        for h in &mut self.nodes {
            loop {
                // Keep draining until the thread exits (its op channel
                // disconnects), so bounded-channel back-pressure can't
                // deadlock the join.
                match h.op_rx.recv_timeout(std::time::Duration::from_millis(1)) {
                    Ok(_) => continue,
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        let _ = h.resume_tx.try_send(());
                        continue;
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            if let Some(j) = h.join.take() {
                let _ = j.join();
            }
        }
    }
}

/// A ready-made address/register layout matching the stochastic
/// generator's segments (handy for mixing generated and instrumented
/// workloads on one machine model).
pub fn default_layout() -> TargetLayout {
    TargetLayout::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-phase program: compute, exchange with the ring neighbour,
    /// compute again.
    fn ring_program(nodes: u32) -> impl Fn(&mut NodeCtx) + Send + Clone + 'static {
        move |ctx: &mut NodeCtx| {
            let me = ctx.node();
            let x = ctx.local("x", DataType::F64, 1);
            for _ in 0..3 {
                ctx.load(x);
                ctx.arith(ArithOp::Mul, DataType::F64);
                ctx.store(x);
            }
            ctx.asend(64, (me + 1) % nodes);
            ctx.recv((me + nodes - 1) % nodes);
            ctx.arith(ArithOp::Add, DataType::F64);
        }
    }

    #[test]
    fn collect_all_produces_balanced_traces() {
        let gen = InterleavedTraceGen::spawn(4, TargetLayout::default(), ring_program(4));
        let ts = gen.collect_all();
        assert_eq!(ts.nodes(), 4);
        assert!(ts.comm_imbalances().is_empty());
        for t in ts.iter() {
            assert!(t.stats().sends + t.stats().asends == 1);
            assert!(t.stats().recvs == 1);
        }
    }

    #[test]
    fn threads_suspend_at_global_events() {
        let mut gen = InterleavedTraceGen::spawn(2, TargetLayout::default(), ring_program(2));
        // Pull node 0's operations up to its global event.
        let mut got_global = false;
        let mut before = 0;
        while let Some(op) = gen.next_op(0) {
            if op.is_global_event() {
                got_global = true;
                break;
            }
            before += 1;
        }
        assert!(got_global);
        assert!(before > 0);
        // The thread is now suspended: no more operations may arrive until
        // resume. (Observable via try_recv staying empty.)
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(gen.nodes[0].op_rx.try_recv().is_err());
        // Resume; the next global event (recv) eventually arrives.
        gen.resume(0);
        let mut saw_recv = false;
        while let Some(op) = gen.next_op(0) {
            if matches!(op, Operation::Recv { .. }) {
                saw_recv = true;
                gen.resume(0);
            }
        }
        assert!(saw_recv);
    }

    #[test]
    fn interleaved_equals_batch_translation() {
        // The same program through the batch translator and the threaded
        // generator must produce identical traces.
        let batch = {
            let mut t = Translator::with_defaults(0);
            let x = t.local("x", DataType::F64, 1);
            for _ in 0..3 {
                t.load(x);
                t.arith(ArithOp::Mul, DataType::F64);
                t.store(x);
            }
            t.asend(64, 1);
            t.recv(1);
            t.arith(ArithOp::Add, DataType::F64);
            t.finish()
        };
        let gen = InterleavedTraceGen::spawn(2, TargetLayout::default(), ring_program(2));
        let ts = gen.collect_all();
        assert_eq!(ts.trace(0).ops, batch.ops);
    }

    #[test]
    fn dropping_the_generator_does_not_hang() {
        // Program with lots of output and a suspend point; drop mid-way.
        let gen = InterleavedTraceGen::spawn(2, TargetLayout::default(), |ctx| {
            let x = ctx.local("x", DataType::I32, 1);
            for _ in 0..10_000 {
                ctx.load(x);
                ctx.arith(ArithOp::Add, DataType::I32);
            }
            ctx.send(8, (ctx.node() + 1) % 2);
            ctx.recv((ctx.node() + 1) % 2);
        });
        drop(gen); // must join cleanly
    }

    #[test]
    fn back_pressure_bounds_memory() {
        // A program generating far more operations than the channel holds;
        // the consumer pulls slowly. The thread must block on the channel
        // rather than buffer everything.
        let mut gen = InterleavedTraceGen::spawn(1, TargetLayout::default(), |ctx| {
            let x = ctx.local("x", DataType::I32, 1);
            for _ in 0..OP_CHANNEL_CAP * 4 {
                ctx.load(x);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        // The channel holds at most its capacity, so the generator thread
        // must still be blocked mid-send rather than finished with 4× the
        // capacity buffered.
        assert!(
            !gen.nodes[0].join.as_ref().unwrap().is_finished(),
            "producer should be blocked on the bounded channel"
        );
        // Drain everything; the program finishes.
        let mut count = 0;
        while gen.next_op(0).is_some() {
            count += 1;
        }
        assert_eq!(count, OP_CHANNEL_CAP * 4);
    }

    #[test]
    fn node_ids_reach_the_programs() {
        let gen = InterleavedTraceGen::spawn(3, TargetLayout::default(), |ctx| {
            // Emit node-id-many arithmetic ops.
            for _ in 0..ctx.node() {
                ctx.arith(ArithOp::Add, DataType::I32);
            }
        });
        let ts = gen.collect_all();
        assert_eq!(ts.trace(0).len(), 0);
        assert_eq!(ts.trace(1).len(), 2); // ifetch + add
        assert_eq!(ts.trace(2).len(), 4);
    }
}
