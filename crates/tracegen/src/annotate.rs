//! The annotation translator and the variable descriptor table.
//!
//! "The annotation translator is a library that is linked together with the
//! instrumented applications, while the annotations simply are calls to the
//! library" (paper, Section 3). Annotations follow the control flow of the
//! program and describe its memory and computational behaviour at the
//! source level, independent of the architecture. The translator turns them
//! into operations according to the *runtime and addressing capabilities of
//! the target processor* — "a kind of generic compiler".
//!
//! Every variable has an entry in the **variable descriptor table**
//! recording whether it is global, local, or a function argument, its type,
//! its address, and whether it lives in a register. A `load` annotation on
//! a register-allocated scalar emits only the instruction fetch; on a
//! memory-resident variable it also emits the memory operation.
//!
//! In the original system a tool instruments C sources automatically; here
//! the "instrumented program" is Rust code making the same library calls
//! (see [`crate::programs`] for complete kernels).

use mermaid_ops::{Address, ArithOp, DataType, NodeId, Operation, Trace};
use serde::{Deserialize, Serialize};

/// Index into the variable descriptor table.
pub type VarId = usize;

/// Storage class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarKind {
    /// Program-lifetime data-segment variable.
    Global,
    /// Function-scope variable.
    Local,
    /// Function argument.
    Arg,
}

/// Where the translator placed a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarLocation {
    /// Promoted to a register: loads/stores emit no memory operation.
    Register(u32),
    /// Resident in memory at the given base address.
    Memory(Address),
}

/// One entry of the variable descriptor table.
#[derive(Debug, Clone)]
pub struct VarDesc {
    /// Source-level name (diagnostics only).
    pub name: String,
    /// Element type.
    pub ty: DataType,
    /// Number of elements (1 for scalars).
    pub elems: u64,
    /// Storage class.
    pub kind: VarKind,
    /// Assigned location.
    pub location: VarLocation,
}

/// The addressing and register model of the target processor — what the
/// translator needs to know to "compile" annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetLayout {
    /// Base of the code segment (instruction-fetch addresses).
    pub code_base: Address,
    /// Base of the global data segment.
    pub globals_base: Address,
    /// Top of the downward-growing stack.
    pub stack_top: Address,
    /// Scalar locals/args per frame promoted to registers before spilling.
    pub frame_regs: u32,
    /// Whether indexed accesses charge an explicit address computation.
    pub charge_addressing: bool,
}

impl Default for TargetLayout {
    fn default() -> Self {
        TargetLayout {
            code_base: 0x1000,
            globals_base: 0x1000_0000,
            stack_top: 0x7fff_f000,
            frame_regs: 8,
            charge_addressing: true,
        }
    }
}

/// A function frame being translated.
#[derive(Debug)]
struct Frame {
    saved_sp: Address,
    saved_regs_used: u32,
    first_var: usize,
}

/// A loop label: the code address of the loop head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopLabel(Address);

/// The annotation API, implemented by the plain [`Translator`] (batch
/// trace building) and by [`crate::interleave::NodeCtx`] (threaded,
/// physical-time-interleaved generation).
pub trait Annotator {
    /// The node this annotator generates for.
    fn node(&self) -> NodeId;

    /// Declare a global variable; returns its descriptor id.
    fn global(&mut self, name: &str, ty: DataType, elems: u64) -> VarId;
    /// Declare a function-scope local.
    fn local(&mut self, name: &str, ty: DataType, elems: u64) -> VarId;
    /// Declare a function argument.
    fn arg(&mut self, name: &str, ty: DataType) -> VarId;

    /// Annotate a scalar load of `v`.
    fn load(&mut self, v: VarId);
    /// Annotate a load of element `idx` of array `v`.
    fn load_idx(&mut self, v: VarId, idx: u64);
    /// Annotate a scalar store to `v`.
    fn store(&mut self, v: VarId);
    /// Annotate a store to element `idx` of array `v`.
    fn store_idx(&mut self, v: VarId, idx: u64);
    /// Annotate loading an immediate constant.
    fn loadc(&mut self, ty: DataType);
    /// Annotate an arithmetic operation.
    fn arith(&mut self, op: ArithOp, ty: DataType);

    /// Mark the head of a loop; pass the label to [`Annotator::loop_back`].
    fn loop_head(&mut self) -> LoopLabel;
    /// Annotate the backward branch of a loop iteration.
    fn loop_back(&mut self, label: LoopLabel);
    /// Annotate a forward conditional branch (taken).
    fn branch_fwd(&mut self);

    /// Annotate entering a function.
    fn call(&mut self);
    /// Annotate returning from the current function.
    fn ret(&mut self);

    /// Annotate a blocking send.
    fn send(&mut self, bytes: u32, dst: NodeId);
    /// Annotate a blocking receive.
    fn recv(&mut self, src: NodeId);
    /// Annotate an asynchronous send.
    fn asend(&mut self, bytes: u32, dst: NodeId);
    /// Annotate an asynchronous receive.
    fn arecv(&mut self, src: NodeId);
    /// Annotate a one-sided blocking remote read of `bytes` from `from`.
    fn get(&mut self, bytes: u32, from: NodeId);
    /// Annotate a one-sided remote write of `bytes` to `to`.
    fn put(&mut self, bytes: u32, to: NodeId);
}

/// The annotation translator for one node: accumulates the generated trace.
#[derive(Debug)]
pub struct Translator {
    node: NodeId,
    layout: TargetLayout,
    vars: Vec<VarDesc>,
    globals_ptr: Address,
    sp: Address,
    regs_used: u32,
    frames: Vec<Frame>,
    pc: Address,
    call_sites: Vec<Address>,
    trace: Trace,
}

impl Translator {
    /// A fresh translator for `node` with the given target layout.
    pub fn new(node: NodeId, layout: TargetLayout) -> Self {
        Translator {
            node,
            layout,
            vars: Vec::new(),
            globals_ptr: layout.globals_base,
            sp: layout.stack_top,
            regs_used: 0,
            frames: Vec::new(),
            pc: layout.code_base,
            call_sites: Vec::new(),
            trace: Trace::new(node),
        }
    }

    /// A translator with the default layout.
    pub fn with_defaults(node: NodeId) -> Self {
        Translator::new(node, TargetLayout::default())
    }

    /// The variable descriptor table (inspection).
    pub fn descriptor_table(&self) -> &[VarDesc] {
        &self.vars
    }

    /// Finish translation and take the trace.
    pub fn finish(self) -> Trace {
        assert!(
            self.frames.is_empty(),
            "finish() inside {} unterminated function frame(s)",
            self.frames.len()
        );
        self.trace
    }

    /// Drain the operations generated so far (used by the threaded
    /// generator to stream operations out).
    pub fn drain_ops(&mut self) -> Vec<Operation> {
        std::mem::take(&mut self.trace.ops)
    }

    /// Number of operations generated so far.
    pub fn ops_generated(&self) -> usize {
        self.trace.len()
    }

    /// Emit the instruction fetch for the next "instruction" and advance
    /// the program counter.
    fn fetch(&mut self) {
        self.trace.push(Operation::IFetch { addr: self.pc });
        self.pc += 4;
    }

    fn declare(&mut self, name: &str, ty: DataType, elems: u64, kind: VarKind) -> VarId {
        assert!(elems >= 1, "variable {name} has zero elements");
        let location =
            if elems == 1 && kind != VarKind::Global && self.regs_used < self.layout.frame_regs {
                let r = self.regs_used;
                self.regs_used += 1;
                VarLocation::Register(r)
            } else {
                match kind {
                    VarKind::Global => {
                        let size = ty.bytes() * elems;
                        let addr = self.globals_ptr;
                        // Keep variables naturally aligned.
                        let aligned = addr.next_multiple_of(ty.bytes());
                        self.globals_ptr = aligned + size;
                        VarLocation::Memory(aligned)
                    }
                    VarKind::Local | VarKind::Arg => {
                        let size = ty.bytes() * elems;
                        self.sp -= size;
                        self.sp &= !(ty.bytes() - 1);
                        VarLocation::Memory(self.sp)
                    }
                }
            };
        self.vars.push(VarDesc {
            name: name.to_string(),
            ty,
            elems,
            kind,
            location,
        });
        self.vars.len() - 1
    }

    fn mem_access(&mut self, v: VarId, idx: u64, is_store: bool) {
        let desc = &self.vars[v];
        assert!(
            idx < desc.elems,
            "index {idx} out of bounds for {} ({} elems)",
            desc.name,
            desc.elems
        );
        let ty = desc.ty;
        match desc.location {
            VarLocation::Register(_) => {
                // Register operand: the access is free; only the consuming
                // instruction's fetch is traced (by the caller).
                self.fetch();
            }
            VarLocation::Memory(base) => {
                if idx > 0 && self.layout.charge_addressing {
                    // Address computation: index scaling + add.
                    self.fetch();
                    self.trace.push(Operation::Arith {
                        op: ArithOp::Add,
                        ty: DataType::I32,
                    });
                }
                let addr = base + idx * ty.bytes();
                self.fetch();
                self.trace.push(if is_store {
                    Operation::Store { ty, addr }
                } else {
                    Operation::Load { ty, addr }
                });
            }
        }
    }
}

impl Annotator for Translator {
    fn node(&self) -> NodeId {
        self.node
    }

    fn global(&mut self, name: &str, ty: DataType, elems: u64) -> VarId {
        self.declare(name, ty, elems, VarKind::Global)
    }

    fn local(&mut self, name: &str, ty: DataType, elems: u64) -> VarId {
        self.declare(name, ty, elems, VarKind::Local)
    }

    fn arg(&mut self, name: &str, ty: DataType) -> VarId {
        self.declare(name, ty, 1, VarKind::Arg)
    }

    fn load(&mut self, v: VarId) {
        self.mem_access(v, 0, false);
    }

    fn load_idx(&mut self, v: VarId, idx: u64) {
        self.mem_access(v, idx, false);
    }

    fn store(&mut self, v: VarId) {
        self.mem_access(v, 0, true);
    }

    fn store_idx(&mut self, v: VarId, idx: u64) {
        self.mem_access(v, idx, true);
    }

    fn loadc(&mut self, ty: DataType) {
        self.fetch();
        self.trace.push(Operation::LoadConst { ty });
    }

    fn arith(&mut self, op: ArithOp, ty: DataType) {
        self.fetch();
        self.trace.push(Operation::Arith { op, ty });
    }

    fn loop_head(&mut self) -> LoopLabel {
        LoopLabel(self.pc)
    }

    fn loop_back(&mut self, label: LoopLabel) {
        self.fetch();
        self.trace.push(Operation::Branch { addr: label.0 });
        // Control really transfers: the next iteration re-fetches the same
        // body addresses (recurring ifetch addresses, Section 3.3).
        self.pc = label.0;
    }

    fn branch_fwd(&mut self) {
        self.fetch();
        let target = self.pc + 16;
        self.trace.push(Operation::Branch { addr: target });
        self.pc = target;
    }

    fn call(&mut self) {
        self.fetch();
        self.call_sites.push(self.pc);
        // Callee entry: a fresh code region beyond any code seen so far.
        let entry = (self.pc + 0x100).next_multiple_of(0x100);
        self.trace.push(Operation::Call { addr: entry });
        self.frames.push(Frame {
            saved_sp: self.sp,
            saved_regs_used: self.regs_used,
            first_var: self.vars.len(),
        });
        self.pc = entry;
    }

    fn ret(&mut self) {
        let frame = self.frames.pop().expect("ret() without call()");
        let ret_to = self.call_sites.pop().expect("ret() without call site");
        self.fetch();
        self.trace.push(Operation::Ret { addr: ret_to });
        self.pc = ret_to;
        self.sp = frame.saved_sp;
        self.regs_used = frame.saved_regs_used;
        self.vars.truncate(frame.first_var);
    }

    fn send(&mut self, bytes: u32, dst: NodeId) {
        self.trace.push(Operation::Send { bytes, dst });
    }

    fn recv(&mut self, src: NodeId) {
        self.trace.push(Operation::Recv { src });
    }

    fn asend(&mut self, bytes: u32, dst: NodeId) {
        self.trace.push(Operation::ASend { bytes, dst });
    }

    fn arecv(&mut self, src: NodeId) {
        self.trace.push(Operation::ARecv { src });
    }

    fn get(&mut self, bytes: u32, from: NodeId) {
        self.trace.push(Operation::Get { bytes, from });
    }

    fn put(&mut self, bytes: u32, to: NodeId) {
        self.trace.push(Operation::Put { bytes, to });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_get_distinct_aligned_addresses() {
        let mut t = Translator::with_defaults(0);
        let a = t.global("a", DataType::I32, 1);
        let b = t.global("b", DataType::F64, 10);
        let c = t.global("c", DataType::I8, 3);
        let table = t.descriptor_table();
        let addr = |v: VarId| match table[v].location {
            VarLocation::Memory(a) => a,
            _ => panic!("global in register"),
        };
        assert_eq!(addr(a) % 4, 0);
        assert_eq!(addr(b) % 8, 0);
        assert!(addr(b) >= addr(a) + 4);
        assert!(addr(c) >= addr(b) + 80);
    }

    #[test]
    fn scalar_locals_are_register_allocated_until_spill() {
        let layout = TargetLayout {
            frame_regs: 2,
            ..TargetLayout::default()
        };
        let mut t = Translator::new(0, layout);
        let a = t.local("a", DataType::I32, 1);
        let b = t.local("b", DataType::I32, 1);
        let c = t.local("c", DataType::I32, 1); // spills
        let arr = t.local("arr", DataType::I32, 4); // arrays never in regs
        let table = t.descriptor_table();
        assert!(matches!(table[a].location, VarLocation::Register(0)));
        assert!(matches!(table[b].location, VarLocation::Register(1)));
        assert!(matches!(table[c].location, VarLocation::Memory(_)));
        assert!(matches!(table[arr].location, VarLocation::Memory(_)));
    }

    #[test]
    fn register_loads_emit_no_memory_operation() {
        let mut t = Translator::with_defaults(0);
        let r = t.local("r", DataType::I32, 1);
        t.load(r);
        let trace = t.finish();
        assert_eq!(trace.len(), 1);
        assert!(matches!(trace.ops[0], Operation::IFetch { .. }));
    }

    #[test]
    fn memory_loads_emit_fetch_plus_load() {
        let mut t = Translator::with_defaults(0);
        let g = t.global("g", DataType::F64, 1);
        t.load(g);
        let trace = t.finish();
        assert_eq!(trace.len(), 2);
        assert!(matches!(trace.ops[0], Operation::IFetch { .. }));
        assert!(matches!(
            trace.ops[1],
            Operation::Load {
                ty: DataType::F64,
                ..
            }
        ));
    }

    #[test]
    fn indexed_access_charges_addressing_and_offsets_address() {
        let mut t = Translator::with_defaults(0);
        let arr = t.global("arr", DataType::I32, 100);
        t.load_idx(arr, 0);
        t.load_idx(arr, 5);
        let trace = t.finish();
        // idx 0: fetch + load. idx 5: fetch+add, fetch+load.
        assert_eq!(trace.len(), 6);
        let addrs: Vec<u64> = trace
            .iter()
            .filter_map(|op| match op {
                Operation::Load { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(addrs[1], addrs[0] + 20);
    }

    #[test]
    fn addressing_charge_can_be_disabled() {
        let layout = TargetLayout {
            charge_addressing: false,
            ..TargetLayout::default()
        };
        let mut t = Translator::new(0, layout);
        let arr = t.global("arr", DataType::I32, 10);
        t.load_idx(arr, 7);
        assert_eq!(t.finish().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_bounds_are_checked() {
        let mut t = Translator::with_defaults(0);
        let arr = t.global("arr", DataType::I32, 4);
        t.load_idx(arr, 4);
    }

    #[test]
    fn loop_back_recurs_ifetch_addresses() {
        let mut t = Translator::with_defaults(0);
        let label = t.loop_head();
        let mut first_iter = Vec::new();
        let mut second_iter = Vec::new();
        for iter in 0..2 {
            t.arith(ArithOp::Add, DataType::I32);
            t.arith(ArithOp::Mul, DataType::F64);
            t.loop_back(label);
            let ops = t.drain_ops();
            if iter == 0 {
                first_iter = ops;
            } else {
                second_iter = ops;
            }
        }
        assert_eq!(first_iter, second_iter, "loop iterations trace identically");
    }

    #[test]
    fn call_ret_restores_frame_state() {
        let mut t = Translator::with_defaults(0);
        let outer = t.local("outer", DataType::I32, 1);
        t.call();
        let inner = t.local("inner", DataType::I32, 1);
        assert_eq!(t.descriptor_table().len(), 2);
        t.load(inner);
        t.ret();
        // Inner variable dropped; outer still valid.
        assert_eq!(t.descriptor_table().len(), 1);
        t.load(outer);
        let trace = t.finish();
        let calls = trace
            .iter()
            .filter(|o| matches!(o, Operation::Call { .. }))
            .count();
        let rets = trace
            .iter()
            .filter(|o| matches!(o, Operation::Ret { .. }))
            .count();
        assert_eq!(calls, 1);
        assert_eq!(rets, 1);
    }

    #[test]
    fn ret_returns_to_the_call_site() {
        let mut t = Translator::with_defaults(0);
        t.arith(ArithOp::Add, DataType::I32);
        t.call();
        t.arith(ArithOp::Add, DataType::I32);
        t.ret();
        let trace = t.finish();
        let call_addr = trace
            .iter()
            .find_map(|op| match op {
                Operation::Call { addr } => Some(*addr),
                _ => None,
            })
            .unwrap();
        let ret_addr = trace
            .iter()
            .find_map(|op| match op {
                Operation::Ret { addr } => Some(*addr),
                _ => None,
            })
            .unwrap();
        // Callee code lives at the call target; return goes past the call.
        assert!(call_addr > ret_addr);
        // The op after the ret would fetch at the return address.
        assert!(trace
            .iter()
            .any(|op| matches!(op, Operation::IFetch { addr } if *addr >= call_addr)));
    }

    #[test]
    #[should_panic(expected = "unterminated function")]
    fn finish_rejects_open_frames() {
        let mut t = Translator::with_defaults(0);
        t.call();
        t.finish();
    }

    #[test]
    #[should_panic(expected = "without call")]
    fn ret_without_call_panics() {
        let mut t = Translator::with_defaults(0);
        t.ret();
    }

    #[test]
    fn communication_annotations_pass_through() {
        let mut t = Translator::with_defaults(3);
        t.send(128, 1);
        t.recv(2);
        t.asend(64, 0);
        t.arecv(0);
        let trace = t.finish();
        assert_eq!(trace.node, 3);
        assert_eq!(trace.len(), 4);
        assert!(trace.iter().all(|o| o.is_global_event()));
    }

    #[test]
    fn stack_variables_grow_downwards() {
        let layout = TargetLayout {
            frame_regs: 0,
            ..TargetLayout::default()
        };
        let mut t = Translator::new(0, layout);
        let a = t.local("a", DataType::I64, 1);
        let b = t.local("b", DataType::I64, 1);
        let table = t.descriptor_table();
        let (VarLocation::Memory(aa), VarLocation::Memory(ba)) =
            (table[a].location, table[b].location)
        else {
            panic!("locals should be in memory with zero frame regs");
        };
        assert!(ba < aa);
        assert_eq!(aa % 8, 0);
        assert_eq!(ba % 8, 0);
    }
}
