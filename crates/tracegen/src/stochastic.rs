//! The stochastic trace generator.
//!
//! "The stochastic generator uses a probabilistic application description
//! to produce realistic synthetic traces of operations. This technique
//! represents the behaviour of (a class of) applications with modest
//! accuracy, which can be useful when fast-prototyping new architectures.
//! Moreover, it offers the flexibility to adjust the application loads
//! easily." (paper, Section 3)
//!
//! An application is described as a number of *phases*; each phase is a
//! block of computation followed by a communication step drawn from a
//! [`CommPattern`]. Computation can be generated at the abstract-
//! instruction level (for the computational model) or directly at task
//! level (for fast prototyping with the communication model only —
//! Fig. 4's stochastic/task-level quadrant).

use mermaid_ops::{Address, ArithOp, DataType, NodeId, Operation, Trace, TraceSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Relative weights of the computational operation classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Memory loads.
    pub load: f64,
    /// Memory stores.
    pub store: f64,
    /// Constant loads.
    pub load_const: f64,
    /// Integer add/sub.
    pub int_alu: f64,
    /// Integer multiply/divide.
    pub int_muldiv: f64,
    /// Floating add/sub.
    pub flt_alu: f64,
    /// Floating multiply/divide.
    pub flt_muldiv: f64,
    /// Branches.
    pub branch: f64,
}

impl InstructionMix {
    /// A mix resembling integer-dominated codes (compilers, sorting).
    pub fn integer() -> Self {
        InstructionMix {
            load: 0.26,
            store: 0.12,
            load_const: 0.06,
            int_alu: 0.38,
            int_muldiv: 0.02,
            flt_alu: 0.0,
            flt_muldiv: 0.0,
            branch: 0.16,
        }
    }

    /// A mix resembling dense numerical kernels (the scientific codes the
    /// paper's multicomputers ran).
    pub fn scientific() -> Self {
        InstructionMix {
            load: 0.30,
            store: 0.12,
            load_const: 0.03,
            int_alu: 0.15,
            int_muldiv: 0.01,
            flt_alu: 0.20,
            flt_muldiv: 0.13,
            branch: 0.06,
        }
    }

    fn total(&self) -> f64 {
        self.load
            + self.store
            + self.load_const
            + self.int_alu
            + self.int_muldiv
            + self.flt_alu
            + self.flt_muldiv
            + self.branch
    }

    /// Validate that at least one class has weight.
    pub fn validate(&self) {
        assert!(self.total() > 0.0, "instruction mix has zero total weight");
        assert!(
            [
                self.load,
                self.store,
                self.load_const,
                self.int_alu,
                self.int_muldiv,
                self.flt_alu,
                self.flt_muldiv,
                self.branch
            ]
            .iter()
            .all(|&w| w >= 0.0),
            "negative weight in instruction mix"
        );
    }
}

/// A distribution over sizes/durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Always the same value.
    Fixed(u64),
    /// Uniform over `[lo, hi]`.
    Uniform(u64, u64),
    /// `small` with probability `1 - large_permille/1000`, else `large` —
    /// the bimodal short-control/long-data message pattern.
    Bimodal {
        /// The common (small) value.
        small: u64,
        /// The rare (large) value.
        large: u64,
        /// Probability of `large`, in permille.
        large_permille: u32,
    },
}

impl SizeDist {
    /// Draw a sample.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            SizeDist::Fixed(v) => v,
            SizeDist::Uniform(lo, hi) => {
                assert!(lo <= hi, "uniform bounds reversed");
                rng.gen_range(lo..=hi)
            }
            SizeDist::Bimodal {
                small,
                large,
                large_permille,
            } => {
                if rng.gen_range(0..1000u32) < large_permille {
                    large
                } else {
                    small
                }
            }
        }
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Fixed(v) => v as f64,
            SizeDist::Uniform(lo, hi) => (lo + hi) as f64 / 2.0,
            SizeDist::Bimodal {
                small,
                large,
                large_permille,
            } => {
                let p = large_permille as f64 / 1000.0;
                small as f64 * (1.0 - p) + large as f64 * p
            }
        }
    }
}

/// The communication step executed at the end of each phase. All patterns
/// generate *balanced* traces: every send has a matching receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommPattern {
    /// No communication (embarrassingly parallel).
    None,
    /// Each node asynchronously sends to its right ring neighbour and
    /// receives from its left.
    NearestNeighborRing,
    /// Every node sends to every other node, then receives from all.
    AllToAll,
    /// Node 0 scatters to all workers and gathers their replies.
    MasterWorker,
    /// A random permutation (derangement-ish) pairing per phase.
    RandomPermutation,
    /// Butterfly exchange: in phase `p`, partner = node XOR 2^(p mod log2 n).
    /// Requires a power-of-two node count.
    Butterfly,
}

/// A probabilistic application description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticApp {
    /// Number of nodes (processors).
    pub nodes: u32,
    /// Number of compute+communicate phases.
    pub phases: u32,
    /// Computational operations per phase (instruction-level mode) —
    /// *excluding* the implicit `ifetch` before each operation.
    pub ops_per_phase: SizeDist,
    /// Instruction mix of the computation.
    pub mix: InstructionMix,
    /// Data working-set size per node, bytes (addresses stay inside it).
    pub working_set: u64,
    /// Probability (permille) that a data access is sequential to the
    /// previous one rather than random in the working set.
    pub seq_permille: u32,
    /// Mean loop-body length in operations (drives ifetch address reuse).
    pub loop_body_ops: u32,
    /// Mean loop trip count (how often a body's ifetch addresses recur).
    pub loop_iters: u32,
    /// Communication pattern per phase.
    pub pattern: CommPattern,
    /// Message payload size distribution (bytes).
    pub msg_bytes: SizeDist,
    /// Task duration distribution (ps) for task-level generation.
    pub task_ps: SizeDist,
}

impl StochasticApp {
    /// A small scientific workload on `nodes` nodes: nearest-neighbour
    /// exchanges between numeric phases.
    pub fn scientific(nodes: u32) -> Self {
        StochasticApp {
            nodes,
            phases: 10,
            ops_per_phase: SizeDist::Uniform(2_000, 4_000),
            mix: InstructionMix::scientific(),
            working_set: 256 * 1024,
            seq_permille: 750,
            loop_body_ops: 12,
            loop_iters: 20,
            pattern: CommPattern::NearestNeighborRing,
            msg_bytes: SizeDist::Fixed(4096),
            task_ps: SizeDist::Uniform(50_000, 150_000),
        }
    }

    /// Validate the description.
    pub fn validate(&self) {
        assert!(self.nodes >= 1, "need at least one node");
        self.mix.validate();
        assert!(self.working_set >= 64, "working set too small");
        assert!(self.seq_permille <= 1000, "seq_permille > 1000");
        assert!(self.loop_body_ops >= 1 && self.loop_iters >= 1);
        if self.pattern == CommPattern::Butterfly {
            assert!(
                self.nodes.is_power_of_two(),
                "butterfly needs a power-of-two node count"
            );
        }
    }
}

/// The stochastic generator: a seeded source of synthetic traces.
pub struct StochasticGenerator {
    app: StochasticApp,
    seed: u64,
}

/// Per-node generation state for the address stream.
struct NodeGen {
    rng: StdRng,
    /// Next sequential data address.
    data_ptr: Address,
    /// Program counter for ifetch addresses.
    pc: Address,
}

/// Base of the (per-node, private) data segment. Code starts at 0x1000.
const DATA_BASE: Address = 0x1000_0000;
const CODE_BASE: Address = 0x1000;

impl StochasticGenerator {
    /// Create a generator for the given description and seed. Identical
    /// `(app, seed)` pairs generate identical traces.
    pub fn new(app: StochasticApp, seed: u64) -> Self {
        app.validate();
        StochasticGenerator { app, seed }
    }

    fn node_rng(&self, node: NodeId, salt: u64) -> StdRng {
        // Distinct, stable stream per node.
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(node as u64)
                .wrapping_add(salt << 32),
        )
    }

    /// Generate instruction-level traces (the reality-based quadrant's
    /// synthetic sibling in Fig. 4).
    pub fn generate(&self) -> TraceSet {
        let n = self.app.nodes;
        let mut traces: Vec<Trace> = (0..n).map(Trace::new).collect();
        // A shared RNG for cross-node decisions (permutation patterns),
        // so traces stay balanced.
        let mut shared = self.node_rng(u32::MAX, 7);
        let mut gens: Vec<NodeGen> = (0..n)
            .map(|node| NodeGen {
                rng: self.node_rng(node, 1),
                data_ptr: DATA_BASE,
                pc: CODE_BASE,
            })
            .collect();
        for phase in 0..self.app.phases {
            for node in 0..n {
                let count = self.app.ops_per_phase.sample(&mut gens[node as usize].rng);
                self.gen_computation(&mut gens[node as usize], &mut traces[node as usize], count);
            }
            self.gen_communication(phase, &mut traces, &mut shared, false);
        }
        TraceSet::from_traces(traces)
    }

    /// Generate task-level traces directly (fast prototyping: the paper's
    /// "task-level operation traces must be directly produced by the trace
    /// generator").
    pub fn generate_task_level(&self) -> TraceSet {
        let n = self.app.nodes;
        let mut traces: Vec<Trace> = (0..n).map(Trace::new).collect();
        let mut shared = self.node_rng(u32::MAX, 7);
        let mut rngs: Vec<StdRng> = (0..n).map(|node| self.node_rng(node, 2)).collect();
        for phase in 0..self.app.phases {
            for node in 0..n {
                let ps = self.app.task_ps.sample(&mut rngs[node as usize]);
                traces[node as usize].push(Operation::Compute { ps });
            }
            self.gen_communication(phase, &mut traces, &mut shared, true);
        }
        TraceSet::from_traces(traces)
    }

    /// Emit `count` computational operations, organised into loop bodies
    /// whose instruction-fetch addresses recur across iterations.
    fn gen_computation(&self, g: &mut NodeGen, trace: &mut Trace, count: u64) {
        let mut emitted = 0u64;
        while emitted < count {
            // One loop: a body of `body` ops replayed `iters` times.
            let body = 1 + g.rng.gen_range(0..self.app.loop_body_ops.max(1) * 2) as u64;
            let iters = 1 + g.rng.gen_range(0..self.app.loop_iters.max(1) * 2) as u64;
            let body_start_pc = g.pc;
            // Pre-draw the body's operation classes so every iteration
            // fetches the same instruction addresses.
            let classes: Vec<u8> = (0..body).map(|_| self.draw_class(&mut g.rng)).collect();
            for _ in 0..iters {
                if emitted >= count {
                    break;
                }
                g.pc = body_start_pc;
                for &class in &classes {
                    if emitted >= count {
                        break;
                    }
                    trace.push(Operation::IFetch { addr: g.pc });
                    g.pc += 4;
                    trace.push(self.materialize(class, g));
                    emitted += 1;
                }
                // The backward branch closing the loop body.
                trace.push(Operation::IFetch { addr: g.pc });
                trace.push(Operation::Branch {
                    addr: body_start_pc,
                });
            }
            // Fall through: continue at fresh code addresses.
            g.pc = body_start_pc + (body + 1) * 4;
        }
    }

    /// Draw an operation class index according to the mix.
    fn draw_class(&self, rng: &mut StdRng) -> u8 {
        let m = &self.app.mix;
        let weights = [
            m.load,
            m.store,
            m.load_const,
            m.int_alu,
            m.int_muldiv,
            m.flt_alu,
            m.flt_muldiv,
            m.branch,
        ];
        let total: f64 = weights.iter().sum();
        let mut x = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i as u8;
            }
            x -= w;
        }
        7
    }

    /// Turn a class index into a concrete operation, advancing the
    /// address-stream state.
    fn materialize(&self, class: u8, g: &mut NodeGen) -> Operation {
        let float_heavy = self.app.mix.flt_alu + self.app.mix.flt_muldiv > 0.0;
        let data_ty = if float_heavy {
            DataType::F64
        } else {
            DataType::I32
        };
        match class {
            0 => Operation::Load {
                ty: data_ty,
                addr: self.next_data_addr(g, data_ty),
            },
            1 => Operation::Store {
                ty: data_ty,
                addr: self.next_data_addr(g, data_ty),
            },
            2 => Operation::LoadConst { ty: data_ty },
            3 => Operation::Arith {
                op: if g.rng.gen_bool(0.5) {
                    ArithOp::Add
                } else {
                    ArithOp::Sub
                },
                ty: DataType::I32,
            },
            4 => Operation::Arith {
                op: if g.rng.gen_bool(0.7) {
                    ArithOp::Mul
                } else {
                    ArithOp::Div
                },
                ty: DataType::I32,
            },
            5 => Operation::Arith {
                op: if g.rng.gen_bool(0.5) {
                    ArithOp::Add
                } else {
                    ArithOp::Sub
                },
                ty: DataType::F64,
            },
            6 => Operation::Arith {
                op: if g.rng.gen_bool(0.7) {
                    ArithOp::Mul
                } else {
                    ArithOp::Div
                },
                ty: DataType::F64,
            },
            _ => {
                // A forward branch inside the block.
                let target = g.pc + 4 * (1 + g.rng.gen_range(0..8u64));
                Operation::Branch { addr: target }
            }
        }
    }

    fn next_data_addr(&self, g: &mut NodeGen, ty: DataType) -> Address {
        let step = ty.bytes();
        let seq = g.rng.gen_range(0..1000u32) < self.app.seq_permille;
        if seq {
            g.data_ptr += step;
            if g.data_ptr >= DATA_BASE + self.app.working_set {
                g.data_ptr = DATA_BASE;
            }
            g.data_ptr
        } else {
            let slots = self.app.working_set / step;
            DATA_BASE + g.rng.gen_range(0..slots) * step
        }
    }

    /// Append one phase's communication step to every node's trace.
    fn gen_communication(
        &self,
        phase: u32,
        traces: &mut [Trace],
        shared: &mut StdRng,
        _task_level: bool,
    ) {
        let n = self.app.nodes;
        if n < 2 {
            return;
        }
        let bytes = |rng: &mut StdRng| self.app.msg_bytes.sample(rng).min(u32::MAX as u64) as u32;
        match self.app.pattern {
            CommPattern::None => {}
            CommPattern::NearestNeighborRing => {
                for node in 0..n {
                    let b = bytes(shared);
                    traces[node as usize].push(Operation::ASend {
                        bytes: b,
                        dst: (node + 1) % n,
                    });
                    traces[node as usize].push(Operation::Recv {
                        src: (node + n - 1) % n,
                    });
                }
            }
            CommPattern::AllToAll => {
                for node in 0..n {
                    for peer in 0..n {
                        if peer != node {
                            traces[node as usize].push(Operation::ASend {
                                bytes: bytes(shared),
                                dst: peer,
                            });
                        }
                    }
                }
                for node in 0..n {
                    for peer in 0..n {
                        if peer != node {
                            traces[node as usize].push(Operation::Recv { src: peer });
                        }
                    }
                }
            }
            CommPattern::MasterWorker => {
                for w in 1..n {
                    traces[0].push(Operation::ASend {
                        bytes: bytes(shared),
                        dst: w,
                    });
                }
                for w in 1..n {
                    traces[w as usize].push(Operation::Recv { src: 0 });
                    traces[w as usize].push(Operation::ASend {
                        bytes: bytes(shared),
                        dst: 0,
                    });
                }
                for w in 1..n {
                    traces[0].push(Operation::Recv { src: w });
                }
            }
            CommPattern::RandomPermutation => {
                // A random permutation without fixed points where possible.
                let mut perm: Vec<u32> = (0..n).collect();
                for i in (1..n as usize).rev() {
                    let j = shared.gen_range(0..=i);
                    perm.swap(i, j);
                }
                for node in 0..n {
                    let dst = perm[node as usize];
                    if dst == node {
                        continue;
                    }
                    traces[node as usize].push(Operation::ASend {
                        bytes: bytes(shared),
                        dst,
                    });
                }
                for node in 0..n {
                    let dst = perm[node as usize];
                    if dst != node {
                        traces[dst as usize].push(Operation::Recv { src: node });
                    }
                }
            }
            CommPattern::Butterfly => {
                let stages = n.trailing_zeros();
                let bit = 1u32 << (phase % stages);
                for node in 0..n {
                    let partner = node ^ bit;
                    traces[node as usize].push(Operation::ASend {
                        bytes: bytes(shared),
                        dst: partner,
                    });
                    traces[node as usize].push(Operation::Recv { src: partner });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_ops::OpCategory;

    fn app(pattern: CommPattern, nodes: u32) -> StochasticApp {
        StochasticApp {
            pattern,
            nodes,
            phases: 4,
            ops_per_phase: SizeDist::Fixed(500),
            ..StochasticApp::scientific(nodes)
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g1 = StochasticGenerator::new(app(CommPattern::AllToAll, 4), 42);
        let g2 = StochasticGenerator::new(app(CommPattern::AllToAll, 4), 42);
        assert_eq!(g1.generate(), g2.generate());
        let g3 = StochasticGenerator::new(app(CommPattern::AllToAll, 4), 43);
        assert_ne!(g1.generate(), g3.generate());
    }

    #[test]
    fn all_patterns_generate_balanced_communication() {
        for pattern in [
            CommPattern::None,
            CommPattern::NearestNeighborRing,
            CommPattern::AllToAll,
            CommPattern::MasterWorker,
            CommPattern::RandomPermutation,
            CommPattern::Butterfly,
        ] {
            let ts = StochasticGenerator::new(app(pattern, 8), 7).generate();
            assert!(
                ts.comm_imbalances().is_empty(),
                "{pattern:?} produced imbalanced communication"
            );
            let task = StochasticGenerator::new(app(pattern, 8), 7).generate_task_level();
            assert!(task.comm_imbalances().is_empty(), "{pattern:?} task-level");
        }
    }

    #[test]
    fn instruction_level_respects_requested_volume() {
        let a = app(CommPattern::None, 2);
        let ts = StochasticGenerator::new(a, 1).generate();
        let s = ts.trace(0).stats();
        // 4 phases × 500 counted ops. Branches drawn from the mix are part
        // of the 500; loop-closing branches are extra. So the non-fetch,
        // non-control volume is at most 2000 and close to it (the
        // scientific mix has 6% branches).
        let non_fetch_non_control = s.total - s.ifetches - s.control;
        assert!(non_fetch_non_control <= 2_000);
        assert!(
            non_fetch_non_control >= 1_700,
            "too few counted ops: {non_fetch_non_control}"
        );
        assert!(s.ifetches >= 2_000, "each op is preceded by an ifetch");
    }

    #[test]
    fn loops_produce_recurring_ifetch_addresses() {
        let a = app(CommPattern::None, 1);
        let ts = StochasticGenerator::new(a, 3).generate();
        let mut seen = std::collections::HashMap::new();
        for op in ts.trace(0).iter() {
            if let Operation::IFetch { addr } = op {
                *seen.entry(*addr).or_insert(0u32) += 1;
            }
        }
        let recurring = seen.values().filter(|&&c| c > 1).count();
        assert!(
            recurring > seen.len() / 4,
            "loop bodies should revisit instruction addresses ({recurring}/{})",
            seen.len()
        );
    }

    #[test]
    fn addresses_stay_in_the_working_set() {
        let mut a = app(CommPattern::None, 1);
        a.working_set = 4096;
        let ts = StochasticGenerator::new(a, 5).generate();
        for op in ts.trace(0).iter() {
            if let Some(addr) = op.address() {
                if matches!(op, Operation::Load { .. } | Operation::Store { .. }) {
                    assert!(
                        (DATA_BASE..DATA_BASE + 4096 + 8).contains(&addr),
                        "address {addr:#x} outside working set"
                    );
                }
            }
        }
    }

    #[test]
    fn scientific_mix_generates_float_arithmetic() {
        let ts = StochasticGenerator::new(app(CommPattern::None, 1), 9).generate();
        let s = ts.trace(0).stats();
        assert!(s.float_arith > 0);
        assert!(s.loads > 0);
        // Memory transfers are ~45% of counted ops, but the trace also
        // carries one ifetch per op plus loop branches, roughly halving the
        // fraction over the whole trace.
        assert!(s.fraction(OpCategory::MemoryTransfer) > 0.15);
    }

    #[test]
    fn integer_mix_has_no_floats() {
        let mut a = app(CommPattern::None, 1);
        a.mix = InstructionMix::integer();
        let ts = StochasticGenerator::new(a, 9).generate();
        assert_eq!(ts.trace(0).stats().float_arith, 0);
    }

    #[test]
    fn task_level_traces_contain_only_tasks_and_comm() {
        let ts = StochasticGenerator::new(app(CommPattern::AllToAll, 4), 11).generate_task_level();
        for t in ts.iter() {
            for op in t.iter() {
                assert!(
                    !op.is_computational(),
                    "instruction-level op {op} in task-level trace"
                );
            }
        }
        // 4 phases × 1 compute each.
        assert_eq!(ts.trace(0).stats().computes, 4);
    }

    #[test]
    fn size_dist_sampling() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(SizeDist::Fixed(7).sample(&mut rng), 7);
        for _ in 0..100 {
            let v = SizeDist::Uniform(10, 20).sample(&mut rng);
            assert!((10..=20).contains(&v));
        }
        let bim = SizeDist::Bimodal {
            small: 1,
            large: 1000,
            large_permille: 500,
        };
        let n_large = (0..1000).filter(|_| bim.sample(&mut rng) == 1000).count();
        assert!((300..700).contains(&n_large), "bimodal skewed: {n_large}");
        assert!((bim.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn butterfly_rejects_odd_node_counts() {
        StochasticGenerator::new(app(CommPattern::Butterfly, 6), 1);
    }

    #[test]
    fn single_node_apps_generate_no_communication() {
        let ts = StochasticGenerator::new(app(CommPattern::NearestNeighborRing, 1), 1).generate();
        assert_eq!(ts.trace(0).stats().comm_ops(), 0);
    }
}
