//! Wall-clock self-profiling of a traced run.
//!
//! The paper's Section 6 characterises simulator cost as *slowdown* —
//! host cycles burned per simulated unit of work. This sink extends that
//! machinery to the event stream: it timestamps every probe record on
//! the host clock, attributes the inter-event host time to the emitting
//! subsystem, and keeps a log₂ histogram of per-event host latency. The
//! host clock rate is passed in (see `mermaid`'s `slowdown::host_frequency`,
//! which honours the `MERMAID_HOST_HZ` override) so reports can be stated
//! in host cycles, not just nanoseconds.

use crate::{Probe, SimEvent};
use mermaid_stats::{Histogram, Table};
use std::collections::BTreeMap;
use std::time::Instant;

/// Which subsystem an event came from (profile attribution key).
fn category(ev: &SimEvent) -> &'static str {
    match ev {
        SimEvent::EngineDelivery { .. } => "engine",
        SimEvent::QueueTier { .. } => "queue",
        SimEvent::Activation { .. }
        | SimEvent::MsgSend { .. }
        | SimEvent::MsgDeliver { .. }
        | SimEvent::MsgPath { .. }
        | SimEvent::LinkBusy { .. }
        | SimEvent::PacketForward { .. }
        | SimEvent::PacketDeliver { .. } => "network",
        SimEvent::CacheAccess { .. }
        | SimEvent::CacheEvict { .. }
        | SimEvent::BusTransaction { .. } => "memory",
        SimEvent::LinkFault { .. }
        | SimEvent::RouterFault { .. }
        | SimEvent::PacketDropped { .. }
        | SimEvent::PacketCorrupted { .. }
        | SimEvent::MsgRetry { .. }
        | SimEvent::MsgGaveUp { .. }
        | SimEvent::Reroute { .. } => "fault",
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct CatStats {
    events: u64,
    host_ns: u64,
}

/// Measures host-side cost of a traced run from inside the event stream.
pub struct SelfProfiler {
    host_hz: f64,
    started: Instant,
    last_record: Instant,
    per_cat: BTreeMap<&'static str, CatStats>,
    event_host_ns: Histogram,
    events: u64,
    max_ts_ps: u64,
}

impl SelfProfiler {
    /// A profiler calibrated to `host_hz` host cycles per second.
    pub fn new(host_hz: f64) -> Self {
        let now = Instant::now();
        SelfProfiler {
            host_hz,
            started: now,
            last_record: now,
            per_cat: BTreeMap::new(),
            event_host_ns: Histogram::log2(),
            events: 0,
            max_ts_ps: 0,
        }
    }

    /// Snapshot the profile collected so far.
    pub fn profile(&self) -> HostProfile {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        let wall_secs = wall_ns as f64 / 1e9;
        let events_per_sec = if wall_secs > 0.0 {
            self.events as f64 / wall_secs
        } else {
            0.0
        };
        let host_cycles_per_event = if self.events > 0 {
            self.host_hz * wall_secs / self.events as f64
        } else {
            0.0
        };
        let sim_secs = self.max_ts_ps as f64 / 1e12;
        let slowdown = if sim_secs > 0.0 {
            wall_secs / sim_secs
        } else {
            0.0
        };
        HostProfile {
            host_hz: self.host_hz,
            events: self.events,
            wall_ns,
            events_per_sec,
            host_cycles_per_event,
            sim_ps: self.max_ts_ps,
            slowdown,
            per_category: self
                .per_cat
                .iter()
                .map(|(&k, v)| (k, v.events, v.host_ns))
                .collect(),
            event_host_ns: self.event_host_ns.clone(),
        }
    }
}

impl Probe for SelfProfiler {
    fn record(&mut self, ev: &SimEvent) {
        let now = Instant::now();
        let gap_ns = now.duration_since(self.last_record).as_nanos() as u64;
        self.last_record = now;
        self.events += 1;
        self.max_ts_ps = self.max_ts_ps.max(ev.ts_ps());
        self.event_host_ns.record(gap_ns);
        let cat = self.per_cat.entry(category(ev)).or_default();
        cat.events += 1;
        cat.host_ns += gap_ns;
    }
}

/// A snapshot of host-side cost, renderable as a table.
#[derive(Debug, Clone)]
pub struct HostProfile {
    /// Host clock rate used for cycle figures.
    pub host_hz: f64,
    /// Probe events recorded.
    pub events: u64,
    /// Wall-clock time since the profiler was created.
    pub wall_ns: u64,
    /// Probe events per host second.
    pub events_per_sec: f64,
    /// Host cycles per probe event (wall time × host_hz / events).
    pub host_cycles_per_event: f64,
    /// Latest virtual time observed.
    pub sim_ps: u64,
    /// Host seconds per simulated second (the paper's slowdown figure,
    /// taken over the whole traced run).
    pub slowdown: f64,
    /// `(category, events, host_ns)` attribution per subsystem.
    pub per_category: Vec<(&'static str, u64, u64)>,
    /// Log₂ histogram of per-event host latency in nanoseconds.
    pub event_host_ns: Histogram,
}

impl HostProfile {
    /// Render the profile as an ASCII table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["category", "events", "host ms", "share %"])
            .with_title(format!(
                "Self-profile: {} events in {:.1} ms ({:.0} ev/s, {:.0} host cycles/event, slowdown {:.0})",
                self.events,
                self.wall_ns as f64 / 1e6,
                self.events_per_sec,
                self.host_cycles_per_event,
                self.slowdown,
            ));
        let total_ns: u64 = self.per_category.iter().map(|&(_, _, ns)| ns).sum();
        for &(cat, events, ns) in &self.per_category {
            let share = if total_ns > 0 {
                100.0 * ns as f64 / total_ns as f64
            } else {
                0.0
            };
            t.row([
                cat.to_string(),
                events.to_string(),
                format!("{:.3}", ns as f64 / 1e6),
                format!("{share:.1}"),
            ]);
        }
        let mut out = t.render();
        if let (Some(p50), Some(p99)) = (
            self.event_host_ns.percentile(0.50),
            self.event_host_ns.percentile(0.99),
        ) {
            out.push_str(&format!(
                "per-event host latency: p50 ~{p50} ns, p99 ~{p99} ns (log2 buckets)\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_events_to_categories() {
        let mut p = SelfProfiler::new(1e9);
        p.record(&SimEvent::EngineDelivery {
            ts_ps: 100,
            src: 0,
            dst: 0,
            pending: 0,
        });
        p.record(&SimEvent::MsgSend {
            ts_ps: 200,
            src: 0,
            dst: 1,
            bytes: 8,
            sync: false,
        });
        p.record(&SimEvent::BusTransaction {
            node: 0,
            start_ps: 250,
            end_ps: 300,
            wait_ps: 0,
        });
        let prof = p.profile();
        assert_eq!(prof.events, 3);
        assert_eq!(prof.sim_ps, 250);
        assert_eq!(prof.event_host_ns.count(), 3);
        let cats: Vec<&str> = prof.per_category.iter().map(|&(c, _, _)| c).collect();
        assert_eq!(cats, vec!["engine", "memory", "network"]);
        let text = prof.render();
        assert!(text.contains("Self-profile"));
        assert!(text.contains("engine"));
        assert!(text.contains("per-event host latency"));
    }

    #[test]
    fn empty_profile_renders_without_division_by_zero() {
        let p = SelfProfiler::new(3e9);
        let prof = p.profile();
        assert_eq!(prof.events, 0);
        assert_eq!(prof.host_cycles_per_event, 0.0);
        assert_eq!(prof.slowdown, 0.0);
        let _ = prof.render();
    }
}
