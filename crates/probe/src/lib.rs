//! # mermaid-probe — the workbench's instrumentation layer
//!
//! The paper's Section 3 describes Mermaid as a *workbench*: simulation
//! data can be visualised "both at run-time and post-mortem". This crate
//! is the single event source both halves share. Simulation models emit
//! structured [`SimEvent`]s through a cloneable [`ProbeHandle`]; attached
//! sinks consume them:
//!
//! * [`MetricsAggregator`] — per-component counters, utilisations and
//!   latency histograms, rendered as a [`MetricsReport`] (text table +
//!   CSV) for post-mortem analysis,
//! * [`ChromeTraceSink`] — a `chrome://tracing` / Perfetto JSON trace
//!   (virtual picoseconds mapped to trace microseconds),
//! * [`JsonlSink`] — a line-per-event JSON stream for external tooling,
//! * [`SelfProfiler`] — wall-clock host-side profiling (events/sec,
//!   host time per event category) extending the slowdown machinery of
//!   the paper's Section 6.
//!
//! # Zero cost when disabled
//!
//! A disabled handle is `None` inside: every emission site is one branch
//! and the event is never constructed ([`ProbeHandle::emit`] takes a
//! closure). The engine-side hook is the same shape
//! (`Option<Box<dyn pearl::EngineProbe>>`). The workspace's
//! `probe_overhead` benchmark pins the disabled path within noise of a
//! build without any instrumentation.
//!
//! # Determinism under observation
//!
//! Probes observe the simulation and have no channel back into it: no
//! emission site reads probe state into model behaviour, so a traced run
//! computes bit-identical virtual-time results to an untraced one (the
//! workspace's `tooling_end_to_end` test asserts this).

mod attribution;
mod chrome;
mod jsonl;
mod metrics;
mod profile;
mod value_json;

pub use attribution::{
    AttributionReport, AttributionSink, LinkAttr, RouterAttr, TIMELINE_BUCKETS, TOP_K,
};
pub use chrome::{validate_chrome_trace, ChromeTraceSink, TraceSummary};
pub use jsonl::JsonlSink;
pub use metrics::{MetricsAggregator, MetricsReport};
pub use profile::{HostProfile, SelfProfiler};

use pearl::probe::{EngineProbe, LadderStats};
use pearl::{CompId, Time};
use std::cell::RefCell;
use std::rc::Rc;

/// What an abstract processor was doing over a virtual-time span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActKind {
    /// Executing modelled computation.
    Compute,
    /// Blocked in a synchronous send waiting for the ack.
    SendBlock,
    /// Blocked in a receive waiting for data.
    RecvBlock,
    /// Blocked in a remote get waiting for the reply.
    GetBlock,
}

impl ActKind {
    /// Stable lower-case label (used as trace span name and metric key).
    pub fn label(self) -> &'static str {
        match self {
            ActKind::Compute => "compute",
            ActKind::SendBlock => "send_block",
            ActKind::RecvBlock => "recv_block",
            ActKind::GetBlock => "get_block",
        }
    }
}

/// Kind of memory access, mirroring the memory model's access kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// Instruction fetch.
    IFetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

impl AccessKind {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::IFetch => "ifetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }
}

/// Where a memory access was satisfied, mirroring the memory model's hit
/// levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitWhere {
    /// First-level cache hit.
    L1,
    /// Second-level cache hit.
    L2,
    /// Supplied by another CPU's cache (cache-to-cache transfer).
    CacheToCache,
    /// Served from DRAM.
    Dram,
}

impl HitWhere {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            HitWhere::L1 => "l1",
            HitWhere::L2 => "l2",
            HitWhere::CacheToCache => "cache_to_cache",
            HitWhere::Dram => "dram",
        }
    }

    /// True when the access missed every private cache level.
    pub fn is_miss(self) -> bool {
        matches!(self, HitWhere::CacheToCache | HitWhere::Dram)
    }
}

/// Why a router discarded a packet (fault layer; see `mermaid-network`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// The chosen output link was down and no minimal alternative was up.
    LinkDown,
    /// The router itself was down when the packet arrived.
    RouterDown,
    /// The packet failed its checksum (corrupted on a previous link).
    Corrupt,
    /// A transient per-packet loss on an otherwise healthy link.
    Transient,
}

impl DropReason {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::LinkDown => "link_down",
            DropReason::RouterDown => "router_down",
            DropReason::Corrupt => "corrupt",
            DropReason::Transient => "transient",
        }
    }
}

/// Which ladder tier transition the event queue performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TierMove {
    /// A bucket was promoted wholesale into the current-window heap.
    Promotion,
    /// A new epoch was rebased from the far heap.
    Rebase,
    /// A small far set was drained via the plain-heap fallback.
    FarDrain,
}

impl TierMove {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            TierMove::Promotion => "promotion",
            TierMove::Rebase => "rebase",
            TierMove::FarDrain => "far_drain",
        }
    }
}

/// One structured observation from a running simulation.
///
/// All times are virtual picoseconds (`pearl::Time`); node/cpu indices
/// match the model's own numbering. Variants with a `start_ps`/`end_ps`
/// pair describe a closed span; the rest are instants.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimEvent {
    /// The engine delivered one event to component `dst`; `pending` is
    /// the queue depth after the pop.
    EngineDelivery {
        ts_ps: u64,
        src: CompId,
        dst: CompId,
        pending: usize,
    },
    /// The event queue moved between ladder tiers; `total` is the new
    /// monotone count for this transition kind.
    QueueTier {
        ts_ps: u64,
        kind: TierMove,
        total: u64,
    },
    /// A processor activation span (paper: component activity over time).
    Activation {
        node: u32,
        kind: ActKind,
        start_ps: u64,
        end_ps: u64,
    },
    /// A message left the sending processor.
    MsgSend {
        ts_ps: u64,
        src: u32,
        dst: u32,
        bytes: u32,
        sync: bool,
    },
    /// A fully reassembled message was consumed by a receive.
    MsgDeliver {
        ts_ps: u64,
        src: u32,
        dst: u32,
        bytes: u32,
        latency_ps: u64,
    },
    /// Latency decomposition of one delivered message: where its
    /// end-to-end time went. The components sum to `latency_ps` exactly
    /// (`overhead + retry + queue + routing + ser + wire == latency`);
    /// `overhead_ps` is software injection overhead (zero for messages
    /// completed by a retransmission), `retry_ps` the fault-recovery span
    /// between the original issue and the completing attempt's injection
    /// (zero for first-transmission completions).
    MsgPath {
        ts_ps: u64,
        src: u32,
        dst: u32,
        bytes: u32,
        latency_ps: u64,
        overhead_ps: u64,
        retry_ps: u64,
        queue_ps: u64,
        routing_ps: u64,
        ser_ps: u64,
        wire_ps: u64,
    },
    /// An outgoing link at `node` towards `to` was occupied by one packet.
    LinkBusy {
        node: u32,
        to: u32,
        start_ps: u64,
        end_ps: u64,
    },
    /// A router forwarded a packet (or packet train) one hop.
    PacketForward {
        ts_ps: u64,
        node: u32,
        to: u32,
        packets: u32,
    },
    /// A router delivered a packet (or packet train) to its local
    /// processor.
    PacketDeliver { ts_ps: u64, node: u32, packets: u32 },
    /// One cache-line access resolved at `hit`.
    CacheAccess {
        ts_ps: u64,
        node: u32,
        cpu: u32,
        kind: AccessKind,
        hit: HitWhere,
    },
    /// A victim line left a cache level (`level` is 1 or 2).
    CacheEvict {
        ts_ps: u64,
        node: u32,
        cpu: u32,
        level: u8,
        dirty: bool,
    },
    /// One bus tenure: granted `[start_ps, end_ps)` after `wait_ps` of
    /// FCFS queueing.
    BusTransaction {
        node: u32,
        start_ps: u64,
        end_ps: u64,
        wait_ps: u64,
    },
    /// A scripted fault toggled the status of the link `node` → `to`.
    LinkFault {
        ts_ps: u64,
        node: u32,
        to: u32,
        up: bool,
    },
    /// A scripted fault toggled a whole router up or down.
    RouterFault { ts_ps: u64, node: u32, up: bool },
    /// A router discarded a packet of message `src`:`seq`.
    PacketDropped {
        ts_ps: u64,
        node: u32,
        src: u32,
        seq: u64,
        reason: DropReason,
    },
    /// A packet of message `src`:`seq` was corrupted crossing the link
    /// `node` → `to` (detected and discarded at the next checksum point).
    PacketCorrupted {
        ts_ps: u64,
        node: u32,
        to: u32,
        src: u32,
        seq: u64,
    },
    /// A processor retransmitted an unacknowledged message (`attempt` is
    /// 1-based: the first retry is attempt 1).
    MsgRetry {
        ts_ps: u64,
        src: u32,
        dst: u32,
        attempt: u32,
    },
    /// A processor exhausted its retries and reported `dst` unreachable.
    MsgGaveUp {
        ts_ps: u64,
        src: u32,
        dst: u32,
        retries: u32,
    },
    /// A router steered a packet around a failed link (the chosen
    /// alternative output is `to`).
    Reroute { ts_ps: u64, node: u32, to: u32 },
}

impl SimEvent {
    /// Stable lower-case label naming the event variant.
    pub fn label(&self) -> &'static str {
        match self {
            SimEvent::EngineDelivery { .. } => "engine_delivery",
            SimEvent::QueueTier { .. } => "queue_tier",
            SimEvent::Activation { .. } => "activation",
            SimEvent::MsgSend { .. } => "msg_send",
            SimEvent::MsgDeliver { .. } => "msg_deliver",
            SimEvent::MsgPath { .. } => "msg_path",
            SimEvent::LinkBusy { .. } => "link_busy",
            SimEvent::PacketForward { .. } => "packet_forward",
            SimEvent::PacketDeliver { .. } => "packet_deliver",
            SimEvent::CacheAccess { .. } => "cache_access",
            SimEvent::CacheEvict { .. } => "cache_evict",
            SimEvent::BusTransaction { .. } => "bus_transaction",
            SimEvent::LinkFault { .. } => "link_fault",
            SimEvent::RouterFault { .. } => "router_fault",
            SimEvent::PacketDropped { .. } => "packet_dropped",
            SimEvent::PacketCorrupted { .. } => "packet_corrupted",
            SimEvent::MsgRetry { .. } => "msg_retry",
            SimEvent::MsgGaveUp { .. } => "msg_gave_up",
            SimEvent::Reroute { .. } => "reroute",
        }
    }

    /// True for events describing the *engine's* internals (delivery
    /// bookkeeping, ladder-tier moves) rather than the simulated machine.
    /// Sharded runs cannot reproduce these bit-for-bit — queue depths and
    /// tier transitions are per-shard artifacts — so sharded probe merging
    /// carries model-level events only (see `mermaid-network`'s sharded
    /// runner and DESIGN.md §11).
    pub fn is_engine_internal(&self) -> bool {
        matches!(
            self,
            SimEvent::EngineDelivery { .. } | SimEvent::QueueTier { .. }
        )
    }

    /// The event's anchor timestamp in virtual picoseconds (span start
    /// for span-shaped events).
    pub fn ts_ps(&self) -> u64 {
        match *self {
            SimEvent::EngineDelivery { ts_ps, .. }
            | SimEvent::QueueTier { ts_ps, .. }
            | SimEvent::MsgSend { ts_ps, .. }
            | SimEvent::MsgDeliver { ts_ps, .. }
            | SimEvent::MsgPath { ts_ps, .. }
            | SimEvent::PacketForward { ts_ps, .. }
            | SimEvent::PacketDeliver { ts_ps, .. }
            | SimEvent::CacheAccess { ts_ps, .. }
            | SimEvent::CacheEvict { ts_ps, .. }
            | SimEvent::LinkFault { ts_ps, .. }
            | SimEvent::RouterFault { ts_ps, .. }
            | SimEvent::PacketDropped { ts_ps, .. }
            | SimEvent::PacketCorrupted { ts_ps, .. }
            | SimEvent::MsgRetry { ts_ps, .. }
            | SimEvent::MsgGaveUp { ts_ps, .. }
            | SimEvent::Reroute { ts_ps, .. } => ts_ps,
            SimEvent::Activation { start_ps, .. }
            | SimEvent::LinkBusy { start_ps, .. }
            | SimEvent::BusTransaction { start_ps, .. } => start_ps,
        }
    }
}

/// A consumer of [`SimEvent`]s.
pub trait Probe {
    /// Record one event. Called in the emission order of the simulation,
    /// which for virtual-time instants is nondecreasing in `ts_ps`
    /// per emitting component.
    fn record(&mut self, ev: &SimEvent);
}

/// A sink that just stores every event, in emission order.
///
/// Sharded runs attach one buffer per shard and merge the buffers into a
/// single canonically-ordered stream afterwards (see
/// [`canonical_sort`]); it is also handy in tests.
#[derive(Debug, Default)]
pub struct EventBuffer {
    events: Vec<SimEvent>,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        EventBuffer::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Take the recorded events out, leaving the buffer empty.
    pub fn take(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Discard every event recorded after the first `len` — the rollback
    /// primitive for speculative execution: a shard records the buffer
    /// length before speculating and truncates back to it when the
    /// speculation is squashed, so squashed events never reach the merged
    /// stream (re-execution re-emits them identically).
    pub fn truncate(&mut self, len: usize) {
        self.events.truncate(len);
    }
}

impl Probe for EventBuffer {
    fn record(&mut self, ev: &SimEvent) {
        self.events.push(ev.clone());
    }
}

/// Sort events into the canonical order: primarily by anchor timestamp,
/// with the derived total order on [`SimEvent`] breaking ties.
///
/// Emission order is *not* timestamp order (a handler may emit an event
/// anchored in the future, e.g. a delivery at `now + residue`), so two
/// equal event *multisets* — such as the streams of a serial and a sharded
/// run of the same model — canonicalize to the same sequence. This is the
/// order sharded runs replay merged per-shard buffers in.
pub fn canonical_sort(events: &mut [SimEvent]) {
    events.sort_unstable_by(|a, b| a.ts_ps().cmp(&b.ts_ps()).then_with(|| a.cmp(b)));
}

/// The set of sinks attached to one traced run.
///
/// Concrete optional slots (rather than `Vec<Box<dyn Probe>>`) so results
/// can be read back without downcasting after the run.
#[derive(Default)]
pub struct ProbeStack {
    /// Metrics aggregation for the post-mortem report.
    pub metrics: Option<MetricsAggregator>,
    /// Chrome-trace (`chrome://tracing` / Perfetto) JSON export.
    pub chrome: Option<ChromeTraceSink>,
    /// Line-per-event JSON stream.
    pub jsonl: Option<JsonlSink>,
    /// Wall-clock self-profiler.
    pub profiler: Option<SelfProfiler>,
    /// Bottleneck-attribution sink (utilization timelines + latency
    /// decomposition).
    pub attribution: Option<AttributionSink>,
    /// Raw event buffer (used by sharded runs; available to tests).
    pub buffer: Option<EventBuffer>,
}

impl ProbeStack {
    /// An empty stack (attachable, but records into nothing).
    pub fn new() -> Self {
        ProbeStack::default()
    }

    /// Attach a metrics aggregator.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = Some(MetricsAggregator::new());
        self
    }

    /// Attach a Chrome-trace sink.
    pub fn with_chrome(mut self) -> Self {
        self.chrome = Some(ChromeTraceSink::new());
        self
    }

    /// Attach a JSONL sink.
    pub fn with_jsonl(mut self) -> Self {
        self.jsonl = Some(JsonlSink::new());
        self
    }

    /// Attach a wall-clock self-profiler calibrated to `host_hz` host
    /// cycles per second (see `mermaid`'s slowdown machinery).
    pub fn with_profiler(mut self, host_hz: f64) -> Self {
        self.profiler = Some(SelfProfiler::new(host_hz));
        self
    }

    /// Attach a bottleneck-attribution sink.
    pub fn with_attribution(mut self) -> Self {
        self.attribution = Some(AttributionSink::new());
        self
    }

    /// Attach a raw event buffer.
    pub fn with_buffer(mut self) -> Self {
        self.buffer = Some(EventBuffer::new());
        self
    }
}

impl Probe for ProbeStack {
    fn record(&mut self, ev: &SimEvent) {
        if let Some(m) = &mut self.metrics {
            m.record(ev);
        }
        if let Some(c) = &mut self.chrome {
            c.record(ev);
        }
        if let Some(j) = &mut self.jsonl {
            j.record(ev);
        }
        if let Some(p) = &mut self.profiler {
            p.record(ev);
        }
        if let Some(a) = &mut self.attribution {
            a.record(ev);
        }
        if let Some(b) = &mut self.buffer {
            b.record(ev);
        }
    }
}

/// A cloneable, possibly-disabled reference to a [`ProbeStack`], held by
/// every instrumented component of one simulation.
///
/// Internally `Option<Rc<RefCell<_>>>`: a disabled handle is `None`, so
/// the per-emission cost of an untraced run is a single branch and the
/// event closure is never evaluated. `Rc` (not `Arc`) is deliberate —
/// simulations are single-threaded objects; `parallel_sweep` builds each
/// sim inside its worker thread and never moves one across threads.
#[derive(Clone, Default)]
pub struct ProbeHandle {
    inner: Option<Rc<RefCell<ProbeStack>>>,
}

impl ProbeHandle {
    /// The no-op handle every untraced simulation carries.
    pub fn disabled() -> Self {
        ProbeHandle { inner: None }
    }

    /// A live handle recording into `stack`.
    pub fn new(stack: ProbeStack) -> Self {
        ProbeHandle {
            inner: Some(Rc::new(RefCell::new(stack))),
        }
    }

    /// True when a stack is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record the event built by `f` — the closure runs only when the
    /// handle is enabled.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> SimEvent) {
        if let Some(stack) = &self.inner {
            stack.borrow_mut().record(&f());
        }
    }

    /// Run `f` against the attached stack, if any. This is how results
    /// are read back after a run (components keep their handle clones, so
    /// the stack stays shared).
    pub fn with_stack<R>(&self, f: impl FnOnce(&mut ProbeStack) -> R) -> Option<R> {
        self.inner.as_ref().map(|s| f(&mut s.borrow_mut()))
    }

    /// An adapter implementing [`pearl::EngineProbe`] that forwards
    /// engine deliveries and ladder transitions into this handle, or
    /// `None` for a disabled handle.
    pub fn engine_adapter(&self) -> Option<Box<dyn EngineProbe>> {
        self.inner.as_ref()?;
        Some(Box::new(EngineForwarder {
            handle: self.clone(),
            last: LadderStats::default(),
        }))
    }

    /// Rendered metrics report, if a [`MetricsAggregator`] is attached.
    /// `horizon_ps` bounds utilisation fractions (normally the run's
    /// finish time).
    pub fn metrics_report(&self, horizon_ps: u64) -> Option<MetricsReport> {
        self.with_stack(|s| s.metrics.as_ref().map(|m| m.report(horizon_ps)))
            .flatten()
    }

    /// The complete Chrome-trace JSON document, if that sink is attached.
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.with_stack(|s| s.chrome.as_ref().map(|c| c.to_json()))
            .flatten()
    }

    /// The JSONL stream recorded so far, if that sink is attached.
    pub fn jsonl_output(&self) -> Option<String> {
        self.with_stack(|s| s.jsonl.as_ref().map(|j| j.output().to_string()))
            .flatten()
    }

    /// The host-side profile, if a [`SelfProfiler`] is attached.
    pub fn host_profile(&self) -> Option<HostProfile> {
        self.with_stack(|s| s.profiler.as_ref().map(|p| p.profile()))
            .flatten()
    }

    /// The bottleneck-attribution report, if an [`AttributionSink`] is
    /// attached. `horizon_ps` bounds utilization fractions (normally the
    /// run's finish time).
    pub fn attribution_report(&self, horizon_ps: u64) -> Option<AttributionReport> {
        self.with_stack(|s| s.attribution.as_ref().map(|a| a.report(horizon_ps)))
            .flatten()
    }

    /// Drain the attached [`EventBuffer`], if any.
    pub fn take_buffer(&self) -> Option<Vec<SimEvent>> {
        self.with_stack(|s| s.buffer.as_mut().map(|b| b.take()))
            .flatten()
    }

    /// Replay a pre-recorded event into the attached sinks (used when
    /// merging per-shard buffers into the caller's stack).
    #[inline]
    pub fn replay(&self, ev: &SimEvent) {
        if let Some(stack) = &self.inner {
            stack.borrow_mut().record(ev);
        }
    }
}

/// Forwards `pearl` engine hooks into a [`ProbeHandle`] as [`SimEvent`]s.
struct EngineForwarder {
    handle: ProbeHandle,
    last: LadderStats,
}

impl EngineProbe for EngineForwarder {
    fn delivered(&mut self, now: Time, src: CompId, dst: CompId, pending: usize) {
        self.handle.emit(|| SimEvent::EngineDelivery {
            ts_ps: now.as_ps(),
            src,
            dst,
            pending,
        });
    }

    fn ladder(&mut self, now: Time, stats: LadderStats) {
        let ts_ps = now.as_ps();
        if stats.promotions != self.last.promotions {
            self.handle.emit(|| SimEvent::QueueTier {
                ts_ps,
                kind: TierMove::Promotion,
                total: stats.promotions,
            });
        }
        if stats.rebases != self.last.rebases {
            self.handle.emit(|| SimEvent::QueueTier {
                ts_ps,
                kind: TierMove::Rebase,
                total: stats.rebases,
            });
        }
        if stats.far_drains != self.last.far_drains {
            self.handle.emit(|| SimEvent::QueueTier {
                ts_ps,
                kind: TierMove::FarDrain,
                total: stats.far_drains,
            });
        }
        self.last = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_builds_events() {
        let h = ProbeHandle::disabled();
        assert!(!h.is_enabled());
        let mut built = false;
        h.emit(|| {
            built = true;
            SimEvent::PacketDeliver {
                ts_ps: 0,
                node: 0,
                packets: 1,
            }
        });
        assert!(!built, "closure must not run on a disabled handle");
        assert!(h.engine_adapter().is_none());
        assert!(h.chrome_trace_json().is_none());
        assert!(h.metrics_report(1).is_none());
    }

    #[test]
    fn enabled_handle_fans_out_to_all_sinks() {
        let h = ProbeHandle::new(
            ProbeStack::new()
                .with_metrics()
                .with_chrome()
                .with_jsonl()
                .with_profiler(1e9),
        );
        assert!(h.is_enabled());
        h.emit(|| SimEvent::MsgSend {
            ts_ps: 1_000,
            src: 0,
            dst: 1,
            bytes: 64,
            sync: true,
        });
        h.emit(|| SimEvent::MsgDeliver {
            ts_ps: 5_000,
            src: 0,
            dst: 1,
            bytes: 64,
            latency_ps: 4_000,
        });
        let report = h.metrics_report(10_000).unwrap();
        assert!(report.render().contains("msg"));
        let json = h.chrome_trace_json().unwrap();
        let summary = validate_chrome_trace(&json).unwrap();
        assert!(summary.events >= 2);
        let jsonl = h.jsonl_output().unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        let prof = h.host_profile().unwrap();
        assert_eq!(prof.events, 2);
    }

    #[test]
    fn engine_adapter_translates_ladder_deltas() {
        let h = ProbeHandle::new(ProbeStack::new().with_jsonl());
        let mut fwd = h.engine_adapter().unwrap();
        fwd.delivered(Time::from_ps(10), 0, 1, 3);
        fwd.ladder(
            Time::from_ps(20),
            LadderStats {
                promotions: 2,
                rebases: 1,
                far_drains: 0,
            },
        );
        let out = h.jsonl_output().unwrap();
        assert_eq!(out.lines().count(), 3, "delivery + two tier moves: {out}");
        assert!(out.contains("promotion"));
        assert!(out.contains("rebase"));
        assert!(!out.contains("far_drain"));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ActKind::Compute.label(), "compute");
        assert_eq!(AccessKind::IFetch.label(), "ifetch");
        assert_eq!(HitWhere::CacheToCache.label(), "cache_to_cache");
        assert!(HitWhere::Dram.is_miss());
        assert!(!HitWhere::L1.is_miss());
        assert_eq!(TierMove::FarDrain.label(), "far_drain");
        let ev = SimEvent::Activation {
            node: 1,
            kind: ActKind::Compute,
            start_ps: 5,
            end_ps: 9,
        };
        assert_eq!(ev.label(), "activation");
        assert_eq!(ev.ts_ps(), 5);
        assert_eq!(DropReason::LinkDown.label(), "link_down");
        assert_eq!(DropReason::Corrupt.label(), "corrupt");
        let drop = SimEvent::PacketDropped {
            ts_ps: 7,
            node: 2,
            src: 0,
            seq: 3,
            reason: DropReason::Transient,
        };
        assert_eq!(drop.label(), "packet_dropped");
        assert_eq!(drop.ts_ps(), 7);
        assert!(!drop.is_engine_internal());
    }
}
