//! Metrics aggregation: the post-mortem half of the paper's Section 3.
//!
//! The aggregator folds the probe event stream into the existing
//! `mermaid-stats` primitives — [`Counters`] for event counts,
//! [`Utilization`] for link/bus occupancy, a [`Histogram`] for message
//! latency, and a [`TimeSeries`] sampling engine queue depth — and
//! renders them as a [`MetricsReport`] (ASCII tables plus CSV through
//! `stats::csv`).

use crate::{Probe, SimEvent, TierMove};
use mermaid_stats::{chart, csv, Counters, Histogram, Table, TimeSeries, Utilization};
use std::collections::BTreeMap;

/// Queue depth is sampled once per this many engine deliveries.
const DEPTH_SAMPLE_EVERY: u64 = 256;

/// Folds [`SimEvent`]s into per-component statistics.
pub struct MetricsAggregator {
    counters: Counters,
    msg_latency_ps: Histogram,
    link_util: BTreeMap<(u32, u32), Utilization>,
    bus_util: BTreeMap<u32, Utilization>,
    queue_depth: TimeSeries,
    deliveries: u64,
    last_tier: [u64; 3],
    finish_ps: u64,
}

impl Default for MetricsAggregator {
    fn default() -> Self {
        MetricsAggregator::new()
    }
}

impl MetricsAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        MetricsAggregator {
            counters: Counters::new(),
            msg_latency_ps: Histogram::log2(),
            link_util: BTreeMap::new(),
            bus_util: BTreeMap::new(),
            queue_depth: TimeSeries::new("queue_depth"),
            deliveries: 0,
            last_tier: [0; 3],
            finish_ps: 0,
        }
    }

    /// The aggregated counter registry (sorted iteration order).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Message end-to-end latency distribution (picoseconds).
    pub fn msg_latency_ps(&self) -> &Histogram {
        &self.msg_latency_ps
    }

    /// Latest virtual time seen in any event.
    pub fn finish_ps(&self) -> u64 {
        self.finish_ps
    }

    /// The decimated engine queue-depth series.
    pub fn queue_depth(&self) -> &TimeSeries {
        &self.queue_depth
    }

    fn tier_index(kind: TierMove) -> usize {
        match kind {
            TierMove::Promotion => 0,
            TierMove::Rebase => 1,
            TierMove::FarDrain => 2,
        }
    }

    /// Render the report. `horizon_ps` bounds utilisation fractions; pass
    /// the run's finish time (or 0 to use the latest event time seen).
    pub fn report(&self, horizon_ps: u64) -> MetricsReport {
        let horizon = if horizon_ps == 0 {
            self.finish_ps
        } else {
            horizon_ps
        };

        let mut summary = Table::new(["metric", "value"]).with_title("Run summary");
        summary.row(["finish time (ps)".to_string(), self.finish_ps.to_string()]);
        summary.row(["engine deliveries".to_string(), self.deliveries.to_string()]);
        summary.row([
            "messages delivered".to_string(),
            self.msg_latency_ps.count().to_string(),
        ]);
        if let Some(mean) = self.msg_latency_ps.mean() {
            summary.row(["mean msg latency (ps)".to_string(), format!("{mean:.0}")]);
            let p95 = self.msg_latency_ps.percentile(0.95).unwrap_or(0);
            summary.row(["p95 msg latency (ps)".to_string(), p95.to_string()]);
        }

        let mut counters = Table::new(["counter", "value"]).with_title("Component counters");
        for (name, value) in self.counters.iter() {
            counters.row([name.to_string(), value.to_string()]);
        }

        let mut links = Table::new(["resource", "busy (ps)", "intervals", "util %"])
            .with_title("Link / bus occupancy");
        for (&(node, to), u) in &self.link_util {
            links.row([
                format!("link {node}->{to}"),
                u.busy_ps().to_string(),
                u.intervals().to_string(),
                format!("{:.1}", 100.0 * u.fraction(horizon)),
            ]);
        }
        for (&node, u) in &self.bus_util {
            links.row([
                format!("bus {node}"),
                u.busy_ps().to_string(),
                u.intervals().to_string(),
                format!("{:.1}", 100.0 * u.fraction(horizon)),
            ]);
        }

        MetricsReport {
            summary,
            counters,
            occupancy: links,
            latency_chart: if self.msg_latency_ps.count() > 0 {
                Some(chart::histogram_chart(&self.msg_latency_ps, 40))
            } else {
                None
            },
            queue_depth: self.queue_depth.clone(),
        }
    }
}

impl Probe for MetricsAggregator {
    fn record(&mut self, ev: &SimEvent) {
        self.finish_ps = self.finish_ps.max(ev.ts_ps());
        match *ev {
            SimEvent::EngineDelivery { ts_ps, pending, .. } => {
                self.deliveries += 1;
                self.counters.incr("engine/deliveries");
                if self.deliveries % DEPTH_SAMPLE_EVERY == 1 {
                    self.queue_depth.push(ts_ps, pending as f64);
                }
            }
            SimEvent::QueueTier { kind, total, .. } => {
                let i = Self::tier_index(kind);
                let delta = total.saturating_sub(self.last_tier[i]);
                self.last_tier[i] = total;
                self.counters.add(&format!("queue/{}", kind.label()), delta);
            }
            SimEvent::Activation {
                node,
                kind,
                start_ps,
                end_ps,
            } => {
                let key = format!("node{node}/{}_ps", kind.label());
                self.counters.add(&key, end_ps.saturating_sub(start_ps));
                self.finish_ps = self.finish_ps.max(end_ps);
            }
            SimEvent::MsgSend {
                src, bytes, sync, ..
            } => {
                self.counters.incr(&format!("node{src}/sends"));
                self.counters.add("net/bytes_sent", bytes as u64);
                if sync {
                    self.counters.incr("net/sync_sends");
                }
            }
            SimEvent::MsgDeliver {
                dst, latency_ps, ..
            } => {
                self.counters.incr(&format!("node{dst}/recvs"));
                self.counters.incr("net/messages");
                self.msg_latency_ps.record(latency_ps);
            }
            SimEvent::MsgPath {
                overhead_ps,
                retry_ps,
                queue_ps,
                routing_ps,
                ser_ps,
                wire_ps,
                ..
            } => {
                self.counters.add("lat/overhead_ps", overhead_ps);
                self.counters.add("lat/retry_ps", retry_ps);
                self.counters.add("lat/queue_ps", queue_ps);
                self.counters.add("lat/routing_ps", routing_ps);
                self.counters.add("lat/ser_ps", ser_ps);
                self.counters.add("lat/wire_ps", wire_ps);
            }
            SimEvent::LinkBusy {
                node,
                to,
                start_ps,
                end_ps,
            } => {
                self.link_util
                    .entry((node, to))
                    .or_default()
                    .record(start_ps, end_ps);
                self.finish_ps = self.finish_ps.max(end_ps);
            }
            SimEvent::PacketForward { node, packets, .. } => {
                self.counters
                    .add(&format!("node{node}/pkts_forwarded"), packets as u64);
            }
            SimEvent::PacketDeliver { node, packets, .. } => {
                self.counters
                    .add(&format!("node{node}/pkts_delivered"), packets as u64);
            }
            SimEvent::CacheAccess {
                node, kind, hit, ..
            } => {
                self.counters.incr(&format!("mem{node}/{}", kind.label()));
                self.counters
                    .incr(&format!("mem{node}/hit_{}", hit.label()));
                if hit.is_miss() {
                    self.counters.incr(&format!("mem{node}/misses"));
                }
            }
            SimEvent::CacheEvict {
                node, level, dirty, ..
            } => {
                self.counters.incr(&format!("mem{node}/evict_l{level}"));
                if dirty {
                    self.counters.incr(&format!("mem{node}/writebacks"));
                }
            }
            SimEvent::BusTransaction {
                node,
                start_ps,
                end_ps,
                wait_ps,
            } => {
                self.bus_util
                    .entry(node)
                    .or_default()
                    .record(start_ps, end_ps);
                self.counters
                    .add(&format!("mem{node}/bus_wait_ps"), wait_ps);
                self.finish_ps = self.finish_ps.max(end_ps);
            }
            SimEvent::LinkFault { up, .. } => {
                self.counters.incr(if up {
                    "fault/link_up"
                } else {
                    "fault/link_down"
                });
            }
            SimEvent::RouterFault { up, .. } => {
                self.counters.incr(if up {
                    "fault/router_up"
                } else {
                    "fault/router_down"
                });
            }
            SimEvent::PacketDropped { node, reason, .. } => {
                self.counters.incr(&format!("node{node}/pkts_dropped"));
                self.counters
                    .incr(&format!("net/dropped_{}", reason.label()));
            }
            SimEvent::PacketCorrupted { .. } => {
                self.counters.incr("net/corrupted");
            }
            SimEvent::MsgRetry { src, .. } => {
                self.counters.incr(&format!("node{src}/retries"));
                self.counters.incr("net/retries");
            }
            SimEvent::MsgGaveUp { src, .. } => {
                self.counters.incr(&format!("node{src}/gave_up"));
                self.counters.incr("net/msgs_failed");
            }
            SimEvent::Reroute { node, .. } => {
                self.counters.incr(&format!("node{node}/reroutes"));
                self.counters.incr("net/reroutes");
            }
        }
    }
}

/// The rendered post-mortem report: ASCII tables for humans,
/// CSV through `stats::csv` for scripts.
pub struct MetricsReport {
    /// Headline figures for the run.
    pub summary: Table,
    /// Every aggregated counter, in sorted key order.
    pub counters: Table,
    /// Per-link and per-bus occupancy.
    pub occupancy: Table,
    /// ASCII latency histogram, when any message was delivered.
    pub latency_chart: Option<String>,
    /// Decimated engine queue-depth samples.
    pub queue_depth: TimeSeries,
}

impl MetricsReport {
    /// Render the full text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.summary.render());
        out.push('\n');
        out.push_str(&self.counters.render());
        if !self.occupancy.is_empty() {
            out.push('\n');
            out.push_str(&self.occupancy.render());
        }
        if let Some(chart) = &self.latency_chart {
            out.push('\n');
            out.push_str("Message latency (ps, log2 buckets)\n");
            out.push_str(chart);
        }
        out
    }

    /// The counter table as CSV (`counter,value` rows).
    pub fn to_csv(&self) -> String {
        self.counters.to_csv()
    }

    /// The queue-depth series as CSV (`time_ps,queue_depth`).
    pub fn queue_depth_csv(&self) -> String {
        csv::series_to_csv(&[&self.queue_depth])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, ActKind, HitWhere};

    #[test]
    fn aggregates_counters_utilisation_and_latency() {
        let mut m = MetricsAggregator::new();
        m.record(&SimEvent::EngineDelivery {
            ts_ps: 10,
            src: 0,
            dst: 1,
            pending: 4,
        });
        m.record(&SimEvent::MsgSend {
            ts_ps: 10,
            src: 0,
            dst: 1,
            bytes: 100,
            sync: true,
        });
        m.record(&SimEvent::MsgDeliver {
            ts_ps: 1_010,
            src: 0,
            dst: 1,
            bytes: 100,
            latency_ps: 1_000,
        });
        m.record(&SimEvent::LinkBusy {
            node: 0,
            to: 1,
            start_ps: 10,
            end_ps: 510,
        });
        m.record(&SimEvent::BusTransaction {
            node: 1,
            start_ps: 0,
            end_ps: 200,
            wait_ps: 50,
        });
        m.record(&SimEvent::CacheAccess {
            ts_ps: 20,
            node: 1,
            cpu: 0,
            kind: AccessKind::Read,
            hit: HitWhere::Dram,
        });
        m.record(&SimEvent::Activation {
            node: 0,
            kind: ActKind::Compute,
            start_ps: 0,
            end_ps: 900,
        });
        assert_eq!(m.counters().get("node0/sends"), 1);
        assert_eq!(m.counters().get("node1/recvs"), 1);
        assert_eq!(m.counters().get("net/bytes_sent"), 100);
        assert_eq!(m.counters().get("mem1/misses"), 1);
        assert_eq!(m.counters().get("node0/compute_ps"), 900);
        assert_eq!(m.msg_latency_ps().count(), 1);
        assert_eq!(m.finish_ps(), 1_010);

        let report = m.report(1_000);
        let text = report.render();
        assert!(text.contains("Run summary"));
        assert!(text.contains("link 0->1"));
        assert!(text.contains("bus 1"));
        assert!(text.contains("50.0"), "500/1000 = 50% link util: {text}");
        let csv = report.to_csv();
        assert!(csv.starts_with("counter,value\n"));
        assert!(csv.contains("node0/sends,1"));
        assert!(csv.contains("engine/deliveries,1"));
    }

    #[test]
    fn tier_totals_become_deltas() {
        let mut m = MetricsAggregator::new();
        m.record(&SimEvent::QueueTier {
            ts_ps: 1,
            kind: TierMove::Promotion,
            total: 3,
        });
        m.record(&SimEvent::QueueTier {
            ts_ps: 2,
            kind: TierMove::Promotion,
            total: 5,
        });
        assert_eq!(m.counters().get("queue/promotion"), 5);
    }

    #[test]
    fn queue_depth_is_sampled_and_exports_csv() {
        let mut m = MetricsAggregator::new();
        for i in 0..(2 * DEPTH_SAMPLE_EVERY) {
            m.record(&SimEvent::EngineDelivery {
                ts_ps: i * 10,
                src: 0,
                dst: 0,
                pending: i as usize,
            });
        }
        assert_eq!(m.queue_depth().len(), 2);
        let csv = m.report(0).queue_depth_csv();
        assert!(csv.starts_with("time_ps,queue_depth"));
    }
}
