//! Chrome-trace (`chrome://tracing` / Perfetto) JSON export.
//!
//! Emits the JSON Object Format: a top-level object whose `traceEvents`
//! array holds events with `name`, `ph`, `ts`, `pid`, `tid` (and `dur`
//! for complete spans). Virtual picoseconds are mapped to trace
//! microseconds (`ts = ps / 1e6`), so one simulated microsecond reads as
//! one trace microsecond in the viewer.
//!
//! Track layout:
//!
//! | pid | process        | tracks                                        |
//! |-----|----------------|-----------------------------------------------|
//! | 1   | `engine`       | queue-depth counter, ladder-tier instants     |
//! | 2   | `network`      | per-node activation spans + message instants  |
//! | 3   | `links`        | per-node outgoing-link busy spans             |
//! | 4   | `memory`       | per-node cache instants + bus tenure spans    |
//!
//! The exporter also stamps a non-standard top-level `mermaidSummary`
//! object (exact `u64` delivered-message count and finish time in
//! picoseconds); trace viewers ignore unknown keys, and the workspace's
//! end-to-end test uses it to compare a traced run against an untraced
//! one without going through lossy `f64` microseconds.

use crate::value_json::{kv, s, u, Raw};
use crate::{Probe, SimEvent};
use serde::Value;

/// Engine deliveries are decimated to one queue-depth counter sample
/// every this many events, so long runs stay viewable.
const DEPTH_SAMPLE_EVERY: u64 = 64;

const PID_ENGINE: u64 = 1;
const PID_NETWORK: u64 = 2;
const PID_LINKS: u64 = 3;
const PID_MEMORY: u64 = 4;

/// Collects trace events in memory; [`ChromeTraceSink::to_json`] renders
/// the complete document.
#[derive(Default)]
pub struct ChromeTraceSink {
    events: Vec<Value>,
    deliveries: u64,
    msg_delivers: u64,
    max_ts_ps: u64,
}

impl ChromeTraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        ChromeTraceSink::default()
    }

    /// Number of trace events collected so far (excluding metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(
        &mut self,
        name: &str,
        ph: &str,
        ts_ps: u64,
        pid: u64,
        tid: u64,
        extra: Vec<(String, Value)>,
    ) {
        let mut m = vec![
            kv("name", s(name)),
            kv("ph", s(ph)),
            kv("ts", Value::F64(ts_ps as f64 / 1e6)),
            kv("pid", u(pid)),
            kv("tid", u(tid)),
        ];
        m.extend(extra);
        self.events.push(Value::Map(m));
    }

    fn span(&mut self, name: &str, start_ps: u64, end_ps: u64, pid: u64, tid: u64, args: Value) {
        let dur = Value::F64((end_ps.saturating_sub(start_ps)) as f64 / 1e6);
        self.push(
            name,
            "X",
            start_ps,
            pid,
            tid,
            vec![kv("dur", dur), kv("args", args)],
        );
        self.max_ts_ps = self.max_ts_ps.max(end_ps);
    }

    fn instant(&mut self, name: &str, ts_ps: u64, pid: u64, tid: u64, args: Value) {
        self.push(
            name,
            "i",
            ts_ps,
            pid,
            tid,
            vec![kv("s", s("t")), kv("args", args)],
        );
        self.max_ts_ps = self.max_ts_ps.max(ts_ps);
    }

    fn counter(&mut self, name: &str, ts_ps: u64, pid: u64, series: &str, value: f64) {
        let args = Value::Map(vec![kv(series, Value::F64(value))]);
        self.push(name, "C", ts_ps, pid, 0, vec![kv("args", args)]);
        self.max_ts_ps = self.max_ts_ps.max(ts_ps);
    }

    /// Render the complete Chrome-trace JSON document.
    pub fn to_json(&self) -> String {
        let mut events = Vec::with_capacity(self.events.len() + 4);
        for (pid, name) in [
            (PID_ENGINE, "engine"),
            (PID_NETWORK, "network"),
            (PID_LINKS, "links"),
            (PID_MEMORY, "memory"),
        ] {
            events.push(Value::Map(vec![
                kv("name", s("process_name")),
                kv("ph", s("M")),
                kv("ts", Value::F64(0.0)),
                kv("pid", u(pid)),
                kv("tid", u(0)),
                kv("args", Value::Map(vec![kv("name", s(name))])),
            ]));
        }
        events.extend(self.events.iter().cloned());
        let doc = Value::Map(vec![
            kv("traceEvents", Value::Seq(events)),
            kv("displayTimeUnit", s("ns")),
            kv(
                "mermaidSummary",
                Value::Map(vec![
                    kv("delivered_messages", u(self.msg_delivers)),
                    kv("finish_ps", u(self.max_ts_ps)),
                    kv("engine_deliveries", u(self.deliveries)),
                ]),
            ),
        ]);
        serde_json::to_string(&Raw(doc)).expect("trace document contains only finite numbers")
    }
}

impl Probe for ChromeTraceSink {
    fn record(&mut self, ev: &SimEvent) {
        match *ev {
            SimEvent::EngineDelivery { ts_ps, pending, .. } => {
                self.deliveries += 1;
                self.max_ts_ps = self.max_ts_ps.max(ts_ps);
                if self.deliveries % DEPTH_SAMPLE_EVERY == 1 {
                    self.counter(
                        "pending_events",
                        ts_ps,
                        PID_ENGINE,
                        "pending",
                        pending as f64,
                    );
                }
            }
            SimEvent::QueueTier { ts_ps, kind, total } => {
                let args = Value::Map(vec![kv("total", u(total))]);
                self.instant(kind.label(), ts_ps, PID_ENGINE, 0, args);
            }
            SimEvent::Activation {
                node,
                kind,
                start_ps,
                end_ps,
            } => {
                self.span(
                    kind.label(),
                    start_ps,
                    end_ps,
                    PID_NETWORK,
                    node as u64,
                    Value::Map(vec![]),
                );
            }
            SimEvent::MsgSend {
                ts_ps,
                src,
                dst,
                bytes,
                sync,
            } => {
                let args = Value::Map(vec![
                    kv("dst", u(dst as u64)),
                    kv("bytes", u(bytes as u64)),
                    kv("sync", Value::Bool(sync)),
                ]);
                self.instant("msg_send", ts_ps, PID_NETWORK, src as u64, args);
            }
            SimEvent::MsgDeliver {
                ts_ps,
                src,
                dst,
                bytes,
                latency_ps,
            } => {
                self.msg_delivers += 1;
                let args = Value::Map(vec![
                    kv("src", u(src as u64)),
                    kv("bytes", u(bytes as u64)),
                    kv("latency_ps", u(latency_ps)),
                ]);
                self.instant("msg_deliver", ts_ps, PID_NETWORK, dst as u64, args);
            }
            SimEvent::MsgPath {
                ts_ps,
                src,
                dst,
                latency_ps,
                overhead_ps,
                retry_ps,
                queue_ps,
                routing_ps,
                ser_ps,
                wire_ps,
                ..
            } => {
                let args = Value::Map(vec![
                    kv("src", u(src as u64)),
                    kv("latency_ps", u(latency_ps)),
                    kv("overhead_ps", u(overhead_ps)),
                    kv("retry_ps", u(retry_ps)),
                    kv("queue_ps", u(queue_ps)),
                    kv("routing_ps", u(routing_ps)),
                    kv("ser_ps", u(ser_ps)),
                    kv("wire_ps", u(wire_ps)),
                ]);
                self.instant("msg_path", ts_ps, PID_NETWORK, dst as u64, args);
            }
            SimEvent::LinkBusy {
                node,
                to,
                start_ps,
                end_ps,
            } => {
                let name = format!("link->{to}");
                let args = Value::Map(vec![kv("to", u(to as u64))]);
                self.span(&name, start_ps, end_ps, PID_LINKS, node as u64, args);
            }
            SimEvent::PacketForward { .. } | SimEvent::PacketDeliver { .. } => {
                // Hop-level packet traffic is visible via the link spans;
                // per-packet instants would dominate the trace. The
                // metrics aggregator still counts them.
            }
            SimEvent::CacheAccess {
                ts_ps,
                node,
                cpu,
                kind,
                hit,
            } => {
                let name = format!("{}:{}", kind.label(), hit.label());
                let args = Value::Map(vec![kv("cpu", u(cpu as u64))]);
                self.instant(&name, ts_ps, PID_MEMORY, node as u64, args);
            }
            SimEvent::CacheEvict {
                ts_ps,
                node,
                cpu,
                level,
                dirty,
            } => {
                let args = Value::Map(vec![
                    kv("cpu", u(cpu as u64)),
                    kv("level", u(level as u64)),
                    kv("dirty", Value::Bool(dirty)),
                ]);
                self.instant("cache_evict", ts_ps, PID_MEMORY, node as u64, args);
            }
            SimEvent::BusTransaction {
                node,
                start_ps,
                end_ps,
                wait_ps,
            } => {
                let args = Value::Map(vec![kv("wait_ps", u(wait_ps))]);
                self.span("bus", start_ps, end_ps, PID_MEMORY, node as u64, args);
            }
            SimEvent::LinkFault {
                ts_ps,
                node,
                to,
                up,
            } => {
                let name = if up { "link_up" } else { "link_down" };
                let args = Value::Map(vec![kv("to", u(to as u64))]);
                self.instant(name, ts_ps, PID_LINKS, node as u64, args);
            }
            SimEvent::RouterFault { ts_ps, node, up } => {
                let name = if up { "router_up" } else { "router_down" };
                self.instant(name, ts_ps, PID_NETWORK, node as u64, Value::Map(vec![]));
            }
            SimEvent::PacketDropped {
                ts_ps,
                node,
                src,
                seq,
                reason,
            } => {
                let name = format!("drop:{}", reason.label());
                let args = Value::Map(vec![kv("src", u(src as u64)), kv("seq", u(seq))]);
                self.instant(&name, ts_ps, PID_NETWORK, node as u64, args);
            }
            SimEvent::PacketCorrupted {
                ts_ps,
                node,
                to,
                src,
                seq,
            } => {
                let args = Value::Map(vec![
                    kv("to", u(to as u64)),
                    kv("src", u(src as u64)),
                    kv("seq", u(seq)),
                ]);
                self.instant("corrupt", ts_ps, PID_LINKS, node as u64, args);
            }
            SimEvent::MsgRetry {
                ts_ps,
                src,
                dst,
                attempt,
            } => {
                let args = Value::Map(vec![
                    kv("dst", u(dst as u64)),
                    kv("attempt", u(attempt as u64)),
                ]);
                self.instant("msg_retry", ts_ps, PID_NETWORK, src as u64, args);
            }
            SimEvent::MsgGaveUp {
                ts_ps,
                src,
                dst,
                retries,
            } => {
                let args = Value::Map(vec![
                    kv("dst", u(dst as u64)),
                    kv("retries", u(retries as u64)),
                ]);
                self.instant("msg_gave_up", ts_ps, PID_NETWORK, src as u64, args);
            }
            SimEvent::Reroute { ts_ps, node, to } => {
                let args = Value::Map(vec![kv("to", u(to as u64))]);
                self.instant("reroute", ts_ps, PID_NETWORK, node as u64, args);
            }
        }
    }
}

/// What [`validate_chrome_trace`] found in a trace document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total entries in `traceEvents` (including metadata).
    pub events: u64,
    /// Complete spans (`ph == "X"`).
    pub spans: u64,
    /// Instant events (`ph == "i"`).
    pub instants: u64,
    /// Counter samples (`ph == "C"`).
    pub counters: u64,
    /// Metadata records (`ph == "M"`).
    pub metadata: u64,
    /// Fault-variant events (link/router up/down, corruption, drops,
    /// retries, give-ups, reroutes) — zero for a healthy run.
    pub fault_events: u64,
    /// `mermaidSummary.delivered_messages`, when present.
    pub delivered_messages: Option<u64>,
    /// `mermaidSummary.finish_ps`, when present.
    pub finish_ps: Option<u64>,
}

/// Event names the sink emits only under fault injection.
fn is_fault_event(name: &str) -> bool {
    matches!(
        name,
        "link_down"
            | "link_up"
            | "router_down"
            | "router_up"
            | "corrupt"
            | "msg_retry"
            | "msg_gave_up"
            | "reroute"
    ) || name.starts_with("drop:")
}

fn get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    serde::map_get(m, key)
}

fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::U64(n) => Some(n),
        Value::I64(n) if n >= 0 => Some(n as u64),
        _ => None,
    }
}

fn is_number(v: &Value) -> bool {
    matches!(v, Value::U64(_) | Value::I64(_) | Value::F64(_))
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::U64(n) => Some(n as f64),
        Value::I64(n) => Some(n as f64),
        Value::F64(n) => Some(n),
        _ => None,
    }
}

/// Parse `json` (round-tripping through the vendored `serde_json`) and
/// check it against the Chrome-trace conventions this crate emits: a
/// top-level object with a `traceEvents` array whose entries carry
/// `name`, `ph`, numeric `ts`, and numeric `pid`/`tid`; complete spans
/// additionally carry a numeric `dur` and start in non-decreasing `ts`
/// order within their `(pid, tid, name)` track (the sink emits spans in
/// completion order over a time-sorted event stream, so regressing start
/// times mean a scrambled trace). Instants are exempt: out-of-order
/// message consumption legitimately emits deliveries with decreasing
/// timestamps on the same track.
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, String> {
    let Raw(doc) = serde_json::from_str::<Raw>(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let top = doc
        .as_map()
        .ok_or_else(|| "top level is not a JSON object".to_string())?;
    let events = get(top, "traceEvents")
        .ok_or_else(|| "missing `traceEvents`".to_string())?
        .as_seq()
        .ok_or_else(|| "`traceEvents` is not an array".to_string())?;
    let mut summary = TraceSummary::default();
    let mut span_clock: std::collections::HashMap<(u64, u64, String), f64> =
        std::collections::HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let m = ev
            .as_map()
            .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if get(m, key).is_none() {
                return Err(format!("traceEvents[{i}] missing `{key}`"));
            }
        }
        for key in ["ts", "pid", "tid"] {
            if !is_number(get(m, key).expect("checked above")) {
                return Err(format!("traceEvents[{i}] `{key}` is not a number"));
            }
        }
        let ph = get(m, "ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] `ph` is not a string"))?;
        let name = get(m, "name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] `name` is not a string"))?;
        summary.events += 1;
        if ph != "M" && is_fault_event(name) {
            summary.fault_events += 1;
        }
        match ph {
            "X" => {
                if !get(m, "dur").is_some_and(is_number) {
                    return Err(format!("traceEvents[{i}] span missing numeric `dur`"));
                }
                summary.spans += 1;
                let ts = as_f64(get(m, "ts").expect("checked above")).expect("checked above");
                let pid = as_f64(get(m, "pid").expect("checked above")).expect("checked above");
                let tid = as_f64(get(m, "tid").expect("checked above")).expect("checked above");
                let key = (pid as u64, tid as u64, name.to_string());
                if let Some(&prev) = span_clock.get(&key) {
                    if ts < prev {
                        return Err(format!(
                            "traceEvents[{i}] span `{name}` on pid {} tid {} starts at \
                             {ts}us, before the previous span at {prev}us",
                            key.0, key.1
                        ));
                    }
                }
                span_clock.insert(key, ts);
            }
            "i" => summary.instants += 1,
            "C" => summary.counters += 1,
            "M" => summary.metadata += 1,
            other => return Err(format!("traceEvents[{i}] unknown phase `{other}`")),
        }
    }
    if let Some(ms) = get(top, "mermaidSummary").and_then(|v| v.as_map().map(|m| m.to_vec())) {
        summary.delivered_messages = get(&ms, "delivered_messages").and_then(as_u64);
        summary.finish_ps = get(&ms, "finish_ps").and_then(as_u64);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActKind, TierMove};

    #[test]
    fn trace_round_trips_and_validates() {
        let mut sink = ChromeTraceSink::new();
        sink.record(&SimEvent::EngineDelivery {
            ts_ps: 1_000,
            src: 0,
            dst: 1,
            pending: 3,
        });
        sink.record(&SimEvent::Activation {
            node: 2,
            kind: ActKind::Compute,
            start_ps: 1_000,
            end_ps: 4_000,
        });
        sink.record(&SimEvent::MsgDeliver {
            ts_ps: 9_000,
            src: 0,
            dst: 2,
            bytes: 128,
            latency_ps: 8_000,
        });
        sink.record(&SimEvent::QueueTier {
            ts_ps: 9_500,
            kind: TierMove::Rebase,
            total: 1,
        });
        let json = sink.to_json();
        let s = validate_chrome_trace(&json).expect("emitted trace must validate");
        assert_eq!(s.metadata, 4);
        assert_eq!(s.spans, 1);
        assert_eq!(s.counters, 1, "first delivery samples the depth counter");
        assert_eq!(s.instants, 2);
        assert_eq!(s.delivered_messages, Some(1));
        assert_eq!(s.finish_ps, Some(9_500));
    }

    #[test]
    fn ts_maps_picoseconds_to_microseconds() {
        let mut sink = ChromeTraceSink::new();
        sink.record(&SimEvent::Activation {
            node: 0,
            kind: ActKind::Compute,
            start_ps: 2_000_000,
            end_ps: 3_500_000,
        });
        let json = sink.to_json();
        assert!(json.contains("\"ts\":2.0"), "2e6 ps = 2 us: {json}");
        assert!(json.contains("\"dur\":1.5"), "1.5e6 ps = 1.5 us: {json}");
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(
            validate_chrome_trace(r#"{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":1}]}"#)
                .is_err(),
            "missing tid must fail"
        );
        assert!(
            validate_chrome_trace(
                r#"{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":1,"tid":1}]}"#
            )
            .is_err(),
            "span without dur must fail"
        );
        let ok = validate_chrome_trace(
            r#"{"traceEvents":[{"name":"x","ph":"X","ts":1.5,"pid":1,"tid":1,"dur":2}]}"#,
        )
        .unwrap();
        assert_eq!(ok.spans, 1);
        assert_eq!(ok.delivered_messages, None);
    }

    #[test]
    fn regressing_span_starts_on_one_track_are_rejected() {
        // Same (pid, tid, name) track, second span starts earlier: a
        // scrambled trace. Different tid (or name) is fine.
        let scrambled = r#"{"traceEvents":[
            {"name":"compute","ph":"X","ts":5.0,"pid":2,"tid":1,"dur":1},
            {"name":"compute","ph":"X","ts":2.0,"pid":2,"tid":1,"dur":1}]}"#;
        let err = validate_chrome_trace(scrambled).unwrap_err();
        assert!(err.contains("before the previous span"), "{err}");

        let other_track = r#"{"traceEvents":[
            {"name":"compute","ph":"X","ts":5.0,"pid":2,"tid":1,"dur":1},
            {"name":"compute","ph":"X","ts":2.0,"pid":2,"tid":2,"dur":1}]}"#;
        assert_eq!(validate_chrome_trace(other_track).unwrap().spans, 2);
    }

    #[test]
    fn fault_variant_events_are_counted() {
        use crate::DropReason;
        let mut sink = ChromeTraceSink::new();
        sink.record(&SimEvent::LinkFault {
            ts_ps: 100,
            node: 0,
            to: 1,
            up: false,
        });
        sink.record(&SimEvent::RouterFault {
            ts_ps: 200,
            node: 2,
            up: true,
        });
        sink.record(&SimEvent::PacketDropped {
            ts_ps: 300,
            node: 0,
            src: 1,
            seq: 7,
            reason: DropReason::LinkDown,
        });
        sink.record(&SimEvent::MsgRetry {
            ts_ps: 400,
            src: 0,
            dst: 1,
            attempt: 1,
        });
        sink.record(&SimEvent::MsgDeliver {
            ts_ps: 500,
            src: 0,
            dst: 1,
            bytes: 64,
            latency_ps: 400,
        });
        let s = validate_chrome_trace(&sink.to_json()).unwrap();
        assert_eq!(s.fault_events, 4, "msg_deliver is not a fault event");
    }

    #[test]
    fn depth_counter_is_decimated() {
        let mut sink = ChromeTraceSink::new();
        for i in 0..200u64 {
            sink.record(&SimEvent::EngineDelivery {
                ts_ps: i * 10,
                src: 0,
                dst: 0,
                pending: 1,
            });
        }
        let s = validate_chrome_trace(&sink.to_json()).unwrap();
        assert_eq!(s.counters, 200u64.div_ceil(DEPTH_SAMPLE_EVERY));
    }
}
