//! Shared helpers for building and round-tripping `serde::Value` trees.
//!
//! The vendored serde stand-in has no identity `Serialize` impl for its
//! own [`Value`], so sinks wrap trees in [`Raw`] to hand them to
//! `serde_json`.

use crate::SimEvent;
use serde::{Deserialize, Error, Serialize, Value};

/// Identity wrapper: serialises a pre-built [`Value`] tree as-is and
/// deserialises arbitrary JSON into one.
pub(crate) struct Raw(pub Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl Deserialize for Raw {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Raw(v.clone()))
    }
}

/// Shorthand for a map entry.
pub(crate) fn kv(key: &str, v: Value) -> (String, Value) {
    (key.to_string(), v)
}

pub(crate) fn u(n: u64) -> Value {
    Value::U64(n)
}

pub(crate) fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

/// The canonical JSON shape of one [`SimEvent`] (used by the JSONL sink):
/// an object led by an `"ev"` discriminator, then the variant's fields.
pub(crate) fn event_value(ev: &SimEvent) -> Value {
    let mut m = vec![kv("ev", s(ev.label()))];
    match *ev {
        SimEvent::EngineDelivery {
            ts_ps,
            src,
            dst,
            pending,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("src", u(src as u64)));
            m.push(kv("dst", u(dst as u64)));
            m.push(kv("pending", u(pending as u64)));
        }
        SimEvent::QueueTier { ts_ps, kind, total } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("kind", s(kind.label())));
            m.push(kv("total", u(total)));
        }
        SimEvent::Activation {
            node,
            kind,
            start_ps,
            end_ps,
        } => {
            m.push(kv("node", u(node as u64)));
            m.push(kv("kind", s(kind.label())));
            m.push(kv("start_ps", u(start_ps)));
            m.push(kv("end_ps", u(end_ps)));
        }
        SimEvent::MsgSend {
            ts_ps,
            src,
            dst,
            bytes,
            sync,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("src", u(src as u64)));
            m.push(kv("dst", u(dst as u64)));
            m.push(kv("bytes", u(bytes as u64)));
            m.push(kv("sync", Value::Bool(sync)));
        }
        SimEvent::MsgDeliver {
            ts_ps,
            src,
            dst,
            bytes,
            latency_ps,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("src", u(src as u64)));
            m.push(kv("dst", u(dst as u64)));
            m.push(kv("bytes", u(bytes as u64)));
            m.push(kv("latency_ps", u(latency_ps)));
        }
        SimEvent::MsgPath {
            ts_ps,
            src,
            dst,
            bytes,
            latency_ps,
            overhead_ps,
            retry_ps,
            queue_ps,
            routing_ps,
            ser_ps,
            wire_ps,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("src", u(src as u64)));
            m.push(kv("dst", u(dst as u64)));
            m.push(kv("bytes", u(bytes as u64)));
            m.push(kv("latency_ps", u(latency_ps)));
            m.push(kv("overhead_ps", u(overhead_ps)));
            m.push(kv("retry_ps", u(retry_ps)));
            m.push(kv("queue_ps", u(queue_ps)));
            m.push(kv("routing_ps", u(routing_ps)));
            m.push(kv("ser_ps", u(ser_ps)));
            m.push(kv("wire_ps", u(wire_ps)));
        }
        SimEvent::LinkBusy {
            node,
            to,
            start_ps,
            end_ps,
        } => {
            m.push(kv("node", u(node as u64)));
            m.push(kv("to", u(to as u64)));
            m.push(kv("start_ps", u(start_ps)));
            m.push(kv("end_ps", u(end_ps)));
        }
        SimEvent::PacketForward {
            ts_ps,
            node,
            to,
            packets,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("node", u(node as u64)));
            m.push(kv("to", u(to as u64)));
            m.push(kv("packets", u(packets as u64)));
        }
        SimEvent::PacketDeliver {
            ts_ps,
            node,
            packets,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("node", u(node as u64)));
            m.push(kv("packets", u(packets as u64)));
        }
        SimEvent::CacheAccess {
            ts_ps,
            node,
            cpu,
            kind,
            hit,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("node", u(node as u64)));
            m.push(kv("cpu", u(cpu as u64)));
            m.push(kv("kind", s(kind.label())));
            m.push(kv("hit", s(hit.label())));
        }
        SimEvent::CacheEvict {
            ts_ps,
            node,
            cpu,
            level,
            dirty,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("node", u(node as u64)));
            m.push(kv("cpu", u(cpu as u64)));
            m.push(kv("level", u(level as u64)));
            m.push(kv("dirty", Value::Bool(dirty)));
        }
        SimEvent::BusTransaction {
            node,
            start_ps,
            end_ps,
            wait_ps,
        } => {
            m.push(kv("node", u(node as u64)));
            m.push(kv("start_ps", u(start_ps)));
            m.push(kv("end_ps", u(end_ps)));
            m.push(kv("wait_ps", u(wait_ps)));
        }
        SimEvent::LinkFault {
            ts_ps,
            node,
            to,
            up,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("node", u(node as u64)));
            m.push(kv("to", u(to as u64)));
            m.push(kv("up", Value::Bool(up)));
        }
        SimEvent::RouterFault { ts_ps, node, up } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("node", u(node as u64)));
            m.push(kv("up", Value::Bool(up)));
        }
        SimEvent::PacketDropped {
            ts_ps,
            node,
            src,
            seq,
            reason,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("node", u(node as u64)));
            m.push(kv("src", u(src as u64)));
            m.push(kv("seq", u(seq)));
            m.push(kv("reason", s(reason.label())));
        }
        SimEvent::PacketCorrupted {
            ts_ps,
            node,
            to,
            src,
            seq,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("node", u(node as u64)));
            m.push(kv("to", u(to as u64)));
            m.push(kv("src", u(src as u64)));
            m.push(kv("seq", u(seq)));
        }
        SimEvent::MsgRetry {
            ts_ps,
            src,
            dst,
            attempt,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("src", u(src as u64)));
            m.push(kv("dst", u(dst as u64)));
            m.push(kv("attempt", u(attempt as u64)));
        }
        SimEvent::MsgGaveUp {
            ts_ps,
            src,
            dst,
            retries,
        } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("src", u(src as u64)));
            m.push(kv("dst", u(dst as u64)));
            m.push(kv("retries", u(retries as u64)));
        }
        SimEvent::Reroute { ts_ps, node, to } => {
            m.push(kv("ts_ps", u(ts_ps)));
            m.push(kv("node", u(node as u64)));
            m.push(kv("to", u(to as u64)));
        }
    }
    Value::Map(m)
}
