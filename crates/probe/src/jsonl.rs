//! Line-per-event JSON stream ("JSONL") for external tooling.
//!
//! Each [`SimEvent`] becomes one compact JSON object on its own line, led
//! by an `"ev"` discriminator, with every timestamp kept as exact `u64`
//! picoseconds — unlike the Chrome trace there is no lossy microsecond
//! conversion, so this is the format of choice for programmatic
//! post-processing.

use crate::value_json::{event_value, Raw};
use crate::{Probe, SimEvent};

/// Accumulates the JSONL stream in memory.
#[derive(Default)]
pub struct JsonlSink {
    out: String,
    events: u64,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// Number of events recorded.
    pub fn len(&self) -> u64 {
        self.events
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// The stream recorded so far (one JSON object per line).
    pub fn output(&self) -> &str {
        &self.out
    }
}

impl Probe for JsonlSink {
    fn record(&mut self, ev: &SimEvent) {
        let line = serde_json::to_string(&Raw(event_value(ev)))
            .expect("sim events contain only finite numbers");
        self.out.push_str(&line);
        self.out.push('\n');
        self.events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, HitWhere};
    use serde::{map_get, Value};

    #[test]
    fn one_line_per_event_and_lines_parse_back() {
        let mut sink = JsonlSink::new();
        sink.record(&SimEvent::MsgSend {
            ts_ps: 42,
            src: 1,
            dst: 2,
            bytes: 64,
            sync: false,
        });
        sink.record(&SimEvent::CacheAccess {
            ts_ps: 99,
            node: 0,
            cpu: 1,
            kind: AccessKind::Read,
            hit: HitWhere::L2,
        });
        assert_eq!(sink.len(), 2);
        let lines: Vec<&str> = sink.output().lines().collect();
        assert_eq!(lines.len(), 2);
        let Raw(v) = serde_json::from_str::<Raw>(lines[0]).unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(map_get(m, "ev"), Some(&Value::Str("msg_send".into())));
        assert_eq!(map_get(m, "ts_ps"), Some(&Value::U64(42)));
        let Raw(v) = serde_json::from_str::<Raw>(lines[1]).unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(map_get(m, "hit"), Some(&Value::Str("l2".into())));
    }
}
