//! Bottleneck attribution: folds the probe event stream into "where did
//! the time go?" evidence — per-link/per-router utilization timelines,
//! per-message latency decomposition, and hotspot rankings.
//!
//! # Order insensitivity
//!
//! A serial run records events in emission order; a sharded run replays
//! the canonically sorted merge of its per-shard buffers. Both streams
//! are the same *multiset*, so every fold in this sink is commutative
//! (histogram buckets, integer sums, keyed interval bags sorted at
//! report time) and the rendered report — including the serialised
//! `attribution.json` — is byte-identical between the two. The
//! conformance suite asserts exactly that.
//!
//! # Integer-only JSON
//!
//! `attribution.json` carries picoseconds and parts-per-million as
//! exact `u64`s — no floats — so byte comparison is meaningful across
//! platforms.

use crate::value_json::{kv, u, Raw};
use crate::{Probe, SimEvent};
use mermaid_stats::table::Align;
use mermaid_stats::{chart, rank, timeline, Histogram, Table, Utilization};
use serde::Value;
use std::collections::BTreeMap;

/// Buckets in a utilization timeline (also the heatmap width).
pub const TIMELINE_BUCKETS: usize = 48;

/// Rows in the hotspot tables and the heatmap.
pub const TOP_K: usize = 8;

/// The latency components of a delivered message, in fixed order.
const COMPONENTS: [&str; 6] = ["overhead", "retry", "queue", "routing", "ser", "wire"];

/// Streaming attribution sink: attach via `ProbeStack::with_attribution`.
pub struct AttributionSink {
    /// Delivered messages seen (one `MsgPath` each).
    msgs: u64,
    /// End-to-end latency distribution.
    latency: Histogram,
    /// Per-component latency distributions, indexed like [`COMPONENTS`].
    comp_hist: [Histogram; 6],
    /// Per-component exact totals, indexed like [`COMPONENTS`].
    comp_total: [u64; 6],
    /// Busy intervals per directed link, unordered until report time.
    link_busy: BTreeMap<(u32, u32), Vec<(u64, u64)>>,
    /// Packets forwarded per router.
    fwd: BTreeMap<u32, u64>,
    /// Packets delivered to the local processor per router.
    delivered: BTreeMap<u32, u64>,
    /// Fault-layer counts.
    dropped: u64,
    corrupted: u64,
    retries: u64,
    gave_up: u64,
    reroutes: u64,
    /// Latest event time seen (fallback horizon).
    finish_ps: u64,
}

impl Default for AttributionSink {
    fn default() -> Self {
        AttributionSink::new()
    }
}

impl AttributionSink {
    /// An empty sink.
    pub fn new() -> Self {
        let mk = Histogram::log2;
        AttributionSink {
            msgs: 0,
            latency: mk(),
            comp_hist: [mk(), mk(), mk(), mk(), mk(), mk()],
            comp_total: [0; 6],
            link_busy: BTreeMap::new(),
            fwd: BTreeMap::new(),
            delivered: BTreeMap::new(),
            dropped: 0,
            corrupted: 0,
            retries: 0,
            gave_up: 0,
            reroutes: 0,
            finish_ps: 0,
        }
    }

    /// Messages attributed so far.
    pub fn messages(&self) -> u64 {
        self.msgs
    }

    /// Build the report. `horizon_ps` bounds utilization fractions and
    /// the timeline span; pass the run's finish time (0 falls back to the
    /// latest event time seen). For serial-vs-sharded byte identity the
    /// caller must pass the same horizon on both sides — the predicted
    /// finish time is, by the sharding contract, identical.
    pub fn report(&self, horizon_ps: u64) -> AttributionReport {
        let horizon = if horizon_ps == 0 {
            self.finish_ps
        } else {
            horizon_ps
        };
        let bucket_ps = timeline::bucket_width(horizon, TIMELINE_BUCKETS);

        // Per-link: sort the interval bags (making the fold independent
        // of observation order), then derive busy totals and timelines.
        let mut links: Vec<LinkAttr> = Vec::with_capacity(self.link_busy.len());
        for (&(node, to), bag) in &self.link_busy {
            let mut iv = bag.clone();
            iv.sort_unstable();
            let mut util = Utilization::new();
            for &(s, e) in &iv {
                util.record(s, e);
            }
            links.push(LinkAttr {
                node,
                to,
                busy_ps: util.busy_ps(),
                intervals: util.intervals(),
                util_ppm: rank::share_ppm(util.busy_ps(), horizon),
                timeline: timeline::bucketize(&iv, bucket_ps, TIMELINE_BUCKETS),
            });
        }

        // Per-router: outgoing-link activity folded per source node.
        let mut routers: BTreeMap<u32, RouterAttr> = BTreeMap::new();
        for l in &links {
            let r = routers.entry(l.node).or_insert_with(|| RouterAttr {
                node: l.node,
                busy_ps: 0,
                links_out: 0,
                pkts_forwarded: 0,
                pkts_delivered: 0,
                util_ppm: 0,
                timeline: vec![0; TIMELINE_BUCKETS],
            });
            r.busy_ps += l.busy_ps;
            r.links_out += 1;
            r.timeline = timeline::merge(&[&r.timeline, &l.timeline]);
        }
        for (&node, &n) in &self.fwd {
            routers.entry(node).or_insert_with(|| RouterAttr {
                node,
                busy_ps: 0,
                links_out: 0,
                pkts_forwarded: 0,
                pkts_delivered: 0,
                util_ppm: 0,
                timeline: vec![0; TIMELINE_BUCKETS],
            });
            routers
                .get_mut(&node)
                .expect("just inserted")
                .pkts_forwarded = n;
        }
        for (&node, &n) in &self.delivered {
            if let Some(r) = routers.get_mut(&node) {
                r.pkts_delivered = n;
            }
        }
        for r in routers.values_mut() {
            // A router with k active output links can be "busy" up to
            // k × horizon; normalise so 1e6 ppm means all its links
            // saturated.
            let span = horizon.saturating_mul(r.links_out.max(1));
            r.util_ppm = rank::share_ppm(r.busy_ps, span);
        }

        AttributionReport {
            horizon_ps: horizon,
            bucket_ps,
            messages: self.msgs,
            latency: self.latency.clone(),
            comp_hist: self.comp_hist.clone(),
            comp_total: self.comp_total,
            links,
            routers: routers.into_values().collect(),
            dropped: self.dropped,
            corrupted: self.corrupted,
            retries: self.retries,
            gave_up: self.gave_up,
            reroutes: self.reroutes,
        }
    }

    /// Flatten the sink's full state into the integer vector of a
    /// checkpoint snapshot's `attr` record. Interval bags are emitted
    /// *sorted* — they are declared order-free until report time (module
    /// docs), so sorting here makes the capture canonical: a serial run's
    /// live sink and a sharded run's buffer-replayed sink produce the
    /// same integers at the same instant.
    pub fn snapshot_ints(&self) -> Vec<u64> {
        let mut out = Vec::new();
        out.push(self.msgs);
        let push_hist = |out: &mut Vec<u64>, h: &Histogram| {
            let ints = h.snapshot_ints();
            out.push(ints.len() as u64);
            out.extend(ints);
        };
        push_hist(&mut out, &self.latency);
        for h in &self.comp_hist {
            push_hist(&mut out, h);
        }
        out.extend(self.comp_total);
        out.push(self.link_busy.len() as u64);
        for (&(node, to), bag) in &self.link_busy {
            out.extend([node as u64, to as u64, bag.len() as u64]);
            let mut iv = bag.clone();
            iv.sort_unstable();
            for (s, e) in iv {
                out.extend([s, e]);
            }
        }
        out.push(self.fwd.len() as u64);
        for (&node, &count) in &self.fwd {
            out.extend([node as u64, count]);
        }
        out.push(self.delivered.len() as u64);
        for (&node, &count) in &self.delivered {
            out.extend([node as u64, count]);
        }
        out.extend([
            self.dropped,
            self.corrupted,
            self.retries,
            self.gave_up,
            self.reroutes,
            self.finish_ps,
        ]);
        out
    }

    /// Overlay state captured by [`AttributionSink::snapshot_ints`] onto
    /// this sink (call on a fresh sink — existing state is replaced).
    /// Errors name the field where a truncated or mismatched record gives
    /// out instead of panicking.
    pub fn restore_ints(&mut self, ints: &[u64]) -> Result<(), String> {
        let mut r = Cursor { data: ints, pos: 0 };
        let restored = AttributionSink::new();
        *self = restored;
        self.msgs = r.take("the message count")?;
        fn pull_hist(r: &mut Cursor<'_>, h: &mut Histogram, what: &str) -> Result<(), String> {
            let len = r.take(what)? as usize;
            let ints = r.slice(len, what)?;
            if !h.restore_ints(ints) {
                return Err(format!("{what} does not fit the histogram shape"));
            }
            Ok(())
        }
        pull_hist(&mut r, &mut self.latency, "the latency histogram")?;
        for (i, name) in COMPONENTS.iter().enumerate() {
            let what = format!("the `{name}` component histogram");
            pull_hist(&mut r, &mut self.comp_hist[i], &what)?;
        }
        for (i, name) in COMPONENTS.iter().enumerate() {
            self.comp_total[i] = r.take(&format!("the `{name}` component total"))?;
        }
        let links = r.take("the link-interval bag count")?;
        for _ in 0..links {
            let node = r.take("a link's source node")? as u32;
            let to = r.take("a link's destination node")? as u32;
            let n = r.take("a link's interval count")? as usize;
            let mut bag = Vec::with_capacity(n);
            for _ in 0..n {
                let s = r.take("a busy-interval start")?;
                let e = r.take("a busy-interval end")?;
                bag.push((s, e));
            }
            self.link_busy.insert((node, to), bag);
        }
        let fwd = r.take("the forwarded-count map size")?;
        for _ in 0..fwd {
            let node = r.take("a forwarding router id")? as u32;
            let count = r.take("a forwarded-packet count")?;
            self.fwd.insert(node, count);
        }
        let delivered = r.take("the delivered-count map size")?;
        for _ in 0..delivered {
            let node = r.take("a delivering router id")? as u32;
            let count = r.take("a delivered-packet count")?;
            self.delivered.insert(node, count);
        }
        self.dropped = r.take("the dropped count")?;
        self.corrupted = r.take("the corrupted count")?;
        self.retries = r.take("the retry count")?;
        self.gave_up = r.take("the gave-up count")?;
        self.reroutes = r.take("the reroute count")?;
        self.finish_ps = r.take("the fallback horizon")?;
        r.finish("the attribution record")
    }
}

/// Minimal bounds-checked integer reader for [`AttributionSink::restore_ints`].
struct Cursor<'a> {
    data: &'a [u64],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, what: &str) -> Result<u64, String> {
        match self.data.get(self.pos) {
            Some(&v) => {
                self.pos += 1;
                Ok(v)
            }
            None => Err(format!("record ends where {what} was expected")),
        }
    }

    fn slice(&mut self, len: usize, what: &str) -> Result<&'a [u64], String> {
        if self.pos + len > self.data.len() {
            return Err(format!(
                "record ends inside {what} ({} of {len} integer(s) present)",
                self.data.len() - self.pos
            ));
        }
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn finish(&self, what: &str) -> Result<(), String> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing integer(s) after {what}",
                self.data.len() - self.pos
            ))
        }
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_and_reports_identically() {
        let mut sink = AttributionSink::new();
        sink.record(&SimEvent::MsgPath {
            ts_ps: 1_000,
            src: 0,
            dst: 1,
            bytes: 64,
            latency_ps: 1_000,
            overhead_ps: 500,
            retry_ps: 0,
            queue_ps: 300,
            routing_ps: 0,
            ser_ps: 0,
            wire_ps: 200,
        });
        sink.record(&SimEvent::LinkBusy {
            node: 0,
            to: 1,
            start_ps: 500,
            end_ps: 600, // deliberately out of order vs the next interval
        });
        sink.record(&SimEvent::LinkBusy {
            node: 0,
            to: 1,
            start_ps: 100,
            end_ps: 300,
        });
        sink.record(&SimEvent::MsgRetry {
            ts_ps: 5,
            src: 0,
            dst: 1,
            attempt: 1,
        });
        let ints = sink.snapshot_ints();
        let mut back = AttributionSink::new();
        back.restore_ints(&ints).expect("round trip");
        assert_eq!(back.report(2_000).to_json(), sink.report(2_000).to_json());
        // The re-capture is canonical: restoring sorted bags re-emits them.
        assert_eq!(back.snapshot_ints(), ints);
    }

    #[test]
    fn truncated_records_name_the_missing_field() {
        let sink = AttributionSink::new();
        let ints = sink.snapshot_ints();
        let err = AttributionSink::new()
            .restore_ints(&ints[..ints.len() - 1])
            .unwrap_err();
        assert!(err.contains("fallback horizon"), "{err}");
        let err = AttributionSink::new().restore_ints(&[]).unwrap_err();
        assert!(err.contains("message count"), "{err}");
    }

    #[test]
    fn engine_internal_events_do_not_move_the_horizon() {
        let mut sink = AttributionSink::new();
        sink.record(&SimEvent::EngineDelivery {
            ts_ps: 9_999,
            src: 0,
            dst: 1,
            pending: 3,
        });
        assert_eq!(sink.report(0).horizon_ps, 0);
    }
}

impl Probe for AttributionSink {
    fn record(&mut self, ev: &SimEvent) {
        // Engine-internal events (scheduler deliveries, ladder moves)
        // describe the simulator, not the simulated machine — no fold
        // below matches them, and skipping them entirely keeps the sink's
        // state (including the `finish_ps` fallback horizon) identical
        // between a serial run and a replayed shard merge, which is what
        // lets checkpoint snapshots carry one canonical attribution
        // record for both modes.
        if ev.is_engine_internal() {
            return;
        }
        self.finish_ps = self.finish_ps.max(ev.ts_ps());
        match *ev {
            SimEvent::MsgPath {
                latency_ps,
                overhead_ps,
                retry_ps,
                queue_ps,
                routing_ps,
                ser_ps,
                wire_ps,
                ..
            } => {
                self.msgs += 1;
                self.latency.record(latency_ps);
                for (i, v) in [overhead_ps, retry_ps, queue_ps, routing_ps, ser_ps, wire_ps]
                    .into_iter()
                    .enumerate()
                {
                    self.comp_hist[i].record(v);
                    self.comp_total[i] += v;
                }
            }
            SimEvent::LinkBusy {
                node,
                to,
                start_ps,
                end_ps,
            } => {
                self.link_busy
                    .entry((node, to))
                    .or_default()
                    .push((start_ps, end_ps));
                self.finish_ps = self.finish_ps.max(end_ps);
            }
            SimEvent::PacketForward { node, packets, .. } => {
                *self.fwd.entry(node).or_default() += packets as u64;
            }
            SimEvent::PacketDeliver { node, packets, .. } => {
                *self.delivered.entry(node).or_default() += packets as u64;
            }
            SimEvent::PacketDropped { .. } => self.dropped += 1,
            SimEvent::PacketCorrupted { .. } => self.corrupted += 1,
            SimEvent::MsgRetry { .. } => self.retries += 1,
            SimEvent::MsgGaveUp { .. } => self.gave_up += 1,
            SimEvent::Reroute { .. } => self.reroutes += 1,
            _ => {}
        }
    }
}

/// One directed link's attribution record.
#[derive(Debug, Clone)]
pub struct LinkAttr {
    /// Source router.
    pub node: u32,
    /// Destination router.
    pub to: u32,
    /// Total busy picoseconds.
    pub busy_ps: u64,
    /// Busy intervals recorded.
    pub intervals: u64,
    /// Busy fraction of the horizon, parts per million.
    pub util_ppm: u64,
    /// Busy picoseconds per timeline bucket.
    pub timeline: Vec<u64>,
}

impl LinkAttr {
    /// `"src->dst"` display label.
    pub fn label(&self) -> String {
        format!("{}->{}", self.node, self.to)
    }
}

/// One router's attribution record (its outgoing links folded together).
#[derive(Debug, Clone)]
pub struct RouterAttr {
    /// Router / node id.
    pub node: u32,
    /// Sum of outgoing-link busy picoseconds.
    pub busy_ps: u64,
    /// Outgoing links that saw any traffic.
    pub links_out: u64,
    /// Packets this router forwarded onward.
    pub pkts_forwarded: u64,
    /// Packets this router delivered to its processor.
    pub pkts_delivered: u64,
    /// `busy_ps` over `links_out × horizon`, parts per million.
    pub util_ppm: u64,
    /// Summed busy picoseconds per timeline bucket.
    pub timeline: Vec<u64>,
}

/// The finished attribution analysis: renders the human tables/heatmap
/// and the machine-readable JSON.
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Horizon the utilizations are normalised to.
    pub horizon_ps: u64,
    /// Width of one timeline bucket.
    pub bucket_ps: u64,
    /// Delivered messages attributed.
    pub messages: u64,
    /// End-to-end latency distribution.
    pub latency: Histogram,
    comp_hist: [Histogram; 6],
    comp_total: [u64; 6],
    /// Per-link records in `(node, to)` order.
    pub links: Vec<LinkAttr>,
    /// Per-router records in node order.
    pub routers: Vec<RouterAttr>,
    dropped: u64,
    corrupted: u64,
    retries: u64,
    gave_up: u64,
    reroutes: u64,
}

fn fmt_ppm_pct(ppm: u64) -> String {
    // ppm → percent with one decimal, in pure integer arithmetic.
    let tenths = ppm / 1_000; // 1e6 ppm = 100.0% = 1000 tenths
    format!("{}.{}", tenths / 10, tenths % 10)
}

fn fmt_ppm_ratio(ppm: u64) -> String {
    // ppm → "N.NNx" vs-mean ratio, integer arithmetic.
    let hundredths = ppm / 10_000;
    format!("{}.{:02}x", hundredths / 100, hundredths % 100)
}

impl AttributionReport {
    /// Sum of all component totals (equals the sum of message latencies).
    pub fn total_ps(&self) -> u64 {
        self.comp_total.iter().sum()
    }

    /// `(name, total_ps, share_ppm, p50, p90, p99)` per component.
    pub fn components(&self) -> Vec<(&'static str, u64, u64, u64, u64, u64)> {
        let whole = self.total_ps();
        COMPONENTS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let h = &self.comp_hist[i];
                (
                    *name,
                    self.comp_total[i],
                    rank::share_ppm(self.comp_total[i], whole),
                    h.percentile(50.0).unwrap_or(0),
                    h.percentile(90.0).unwrap_or(0),
                    h.percentile(99.0).unwrap_or(0),
                )
            })
            .collect()
    }

    /// The latency-decomposition table.
    pub fn decomposition_table(&self) -> Table {
        let mut t = Table::new(["component", "total (ps)", "share %", "p50", "p90", "p99"])
            .with_title(format!(
                "Latency decomposition: {} message(s), components sum to end-to-end latency",
                self.messages
            ))
            .with_aligns(vec![
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        for (name, total, share, p50, p90, p99) in self.components() {
            t.row([
                name.to_string(),
                total.to_string(),
                fmt_ppm_pct(share),
                p50.to_string(),
                p90.to_string(),
                p99.to_string(),
            ]);
        }
        t
    }

    /// The top-K busiest links, with vs-mean ratios.
    pub fn hot_links_table(&self) -> Table {
        let total: u64 = self.links.iter().map(|l| l.busy_ps).sum();
        let n = self.links.len() as u64;
        let top = rank::top_k(
            self.links.iter().map(|l| ((l.node, l.to), l.busy_ps)),
            TOP_K,
        );
        let mut t = Table::new(["rank", "link", "busy (ps)", "util %", "vs mean"])
            .with_title(format!("Hottest links (of {n} active)"))
            .with_aligns(vec![
                Align::Right,
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        for (i, ((node, to), busy)) in top.iter().enumerate() {
            let l = self
                .links
                .iter()
                .find(|l| l.node == *node && l.to == *to)
                .expect("ranked link exists");
            t.row([
                (i + 1).to_string(),
                l.label(),
                busy.to_string(),
                fmt_ppm_pct(l.util_ppm),
                fmt_ppm_ratio(rank::vs_mean_ppm(*busy, total, n)),
            ]);
        }
        t
    }

    /// The top-K busiest routers, with vs-mean ratios.
    pub fn hot_routers_table(&self) -> Table {
        let total: u64 = self.routers.iter().map(|r| r.busy_ps).sum();
        let n = self.routers.len() as u64;
        let top = rank::top_k(self.routers.iter().map(|r| (r.node, r.busy_ps)), TOP_K);
        let mut t = Table::new([
            "rank",
            "router",
            "busy (ps)",
            "fwd",
            "dlvr",
            "util %",
            "vs mean",
        ])
        .with_title(format!("Hottest routers (of {n} active)"))
        .with_aligns(vec![
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for (i, (node, busy)) in top.iter().enumerate() {
            let r = self
                .routers
                .iter()
                .find(|r| r.node == *node)
                .expect("ranked router exists");
            t.row([
                (i + 1).to_string(),
                node.to_string(),
                busy.to_string(),
                r.pkts_forwarded.to_string(),
                r.pkts_delivered.to_string(),
                fmt_ppm_pct(r.util_ppm),
                fmt_ppm_ratio(rank::vs_mean_ppm(*busy, total, n)),
            ]);
        }
        t
    }

    /// ASCII utilization heatmap of the top-K busiest links over time
    /// (one row per link, one column per bucket).
    pub fn heatmap(&self) -> String {
        let top = rank::top_k(
            self.links.iter().map(|l| ((l.node, l.to), l.busy_ps)),
            TOP_K,
        );
        let rows: Vec<(String, Vec<u64>)> = top
            .iter()
            .map(|((node, to), _)| {
                let l = self
                    .links
                    .iter()
                    .find(|l| l.node == *node && l.to == *to)
                    .expect("ranked link exists");
                (l.label(), l.timeline.clone())
            })
            .collect();
        chart::heatmap(&rows)
    }

    /// Render the full human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.decomposition_table().render());
        if let (Some(p50), Some(p99), Some(max)) = (
            self.latency.percentile(50.0),
            self.latency.percentile(99.0),
            self.latency.max(),
        ) {
            out.push_str(&format!(
                "end-to-end latency: p50 ~{p50} ps, p99 ~{p99} ps, max {max} ps\n"
            ));
        }
        if !self.links.is_empty() {
            out.push('\n');
            out.push_str(&self.hot_links_table().render());
            out.push('\n');
            out.push_str(&self.hot_routers_table().render());
            out.push('\n');
            out.push_str(&format!(
                "Link utilization heatmap (top {} links, {} buckets of {} ps):\n",
                TOP_K.min(self.links.len()),
                TIMELINE_BUCKETS,
                self.bucket_ps
            ));
            out.push_str(&self.heatmap());
        }
        if self.dropped + self.retries + self.gave_up + self.reroutes + self.corrupted > 0 {
            out.push_str(&format!(
                "\nfault activity: {} drop(s), {} corrupted, {} retransmission(s), \
                 {} gave up, {} reroute(s)\n",
                self.dropped, self.corrupted, self.retries, self.gave_up, self.reroutes
            ));
        }
        out
    }

    /// The machine-readable `attribution.json` document. Integers only
    /// (picoseconds and parts-per-million), rendered deterministically.
    pub fn to_json(&self) -> String {
        let mut comps = Vec::new();
        for (name, total, share, p50, p90, p99) in self.components() {
            comps.push(Value::Map(vec![
                kv("name", crate::value_json::s(name)),
                kv("total_ps", u(total)),
                kv("share_ppm", u(share)),
                kv("p50_ps", u(p50)),
                kv("p90_ps", u(p90)),
                kv("p99_ps", u(p99)),
            ]));
        }
        let links = self
            .links
            .iter()
            .map(|l| {
                Value::Map(vec![
                    kv("node", u(l.node as u64)),
                    kv("to", u(l.to as u64)),
                    kv("busy_ps", u(l.busy_ps)),
                    kv("intervals", u(l.intervals)),
                    kv("util_ppm", u(l.util_ppm)),
                    kv(
                        "timeline_busy_ps",
                        Value::Seq(l.timeline.iter().map(|&v| u(v)).collect()),
                    ),
                ])
            })
            .collect();
        let routers = self
            .routers
            .iter()
            .map(|r| {
                Value::Map(vec![
                    kv("node", u(r.node as u64)),
                    kv("busy_ps", u(r.busy_ps)),
                    kv("links_out", u(r.links_out)),
                    kv("pkts_forwarded", u(r.pkts_forwarded)),
                    kv("pkts_delivered", u(r.pkts_delivered)),
                    kv("util_ppm", u(r.util_ppm)),
                ])
            })
            .collect();
        let doc = Value::Map(vec![
            kv("schema", crate::value_json::s("mermaid-attribution-v1")),
            kv("horizon_ps", u(self.horizon_ps)),
            kv("bucket_ps", u(self.bucket_ps)),
            kv("buckets", u(TIMELINE_BUCKETS as u64)),
            kv("messages", u(self.messages)),
            kv(
                "latency",
                Value::Map(vec![
                    kv("sum_ps", u(self.latency.sum())),
                    kv("p50_ps", u(self.latency.percentile(50.0).unwrap_or(0))),
                    kv("p90_ps", u(self.latency.percentile(90.0).unwrap_or(0))),
                    kv("p99_ps", u(self.latency.percentile(99.0).unwrap_or(0))),
                    kv("max_ps", u(self.latency.max().unwrap_or(0))),
                ]),
            ),
            kv("components", Value::Seq(comps)),
            kv("links", Value::Seq(links)),
            kv("routers", Value::Seq(routers)),
            kv(
                "faults",
                Value::Map(vec![
                    kv("dropped", u(self.dropped)),
                    kv("corrupted", u(self.corrupted)),
                    kv("retries", u(self.retries)),
                    kv("gave_up", u(self.gave_up)),
                    kv("reroutes", u(self.reroutes)),
                ]),
            ),
        ]);
        serde_json::to_string(&Raw(doc)).expect("attribution document is all integers")
    }

    /// Headline figures for campaign records: the dominant component and
    /// the busiest link. `(dominant_name, dominant_share_ppm,
    /// max_link_util_ppm)`.
    pub fn headline(&self) -> (&'static str, u64, u64) {
        let comps = self.components();
        let (name, _, share) = comps
            .iter()
            .map(|&(n, t, s, ..)| (n, t, s))
            .max_by_key(|&(n, t, _)| (t, std::cmp::Reverse(n)))
            .unwrap_or(("overhead", 0, 0));
        let max_link = self.links.iter().map(|l| l.util_ppm).max().unwrap_or(0);
        (name, share, max_link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_event(latency: u64, queue: u64, wire: u64) -> SimEvent {
        SimEvent::MsgPath {
            ts_ps: latency,
            src: 0,
            dst: 1,
            bytes: 64,
            latency_ps: latency,
            overhead_ps: latency - queue - wire,
            retry_ps: 0,
            queue_ps: queue,
            routing_ps: 0,
            ser_ps: 0,
            wire_ps: wire,
        }
    }

    #[test]
    fn folds_are_order_insensitive() {
        let events = vec![
            path_event(1_000, 300, 200),
            path_event(2_000, 900, 400),
            SimEvent::LinkBusy {
                node: 0,
                to: 1,
                start_ps: 100,
                end_ps: 400,
            },
            SimEvent::LinkBusy {
                node: 0,
                to: 1,
                start_ps: 500,
                end_ps: 600,
            },
            SimEvent::PacketForward {
                ts_ps: 100,
                node: 0,
                to: 1,
                packets: 2,
            },
        ];
        let mut fwd = AttributionSink::new();
        let mut rev = AttributionSink::new();
        for ev in &events {
            fwd.record(ev);
        }
        for ev in events.iter().rev() {
            rev.record(ev);
        }
        assert_eq!(fwd.report(2_000).to_json(), rev.report(2_000).to_json());
    }

    #[test]
    fn components_conserve_latency() {
        let mut sink = AttributionSink::new();
        sink.record(&path_event(1_000, 300, 200));
        sink.record(&path_event(2_000, 900, 400));
        let r = sink.report(0);
        assert_eq!(r.messages, 2);
        assert_eq!(r.total_ps(), 3_000, "components sum to latency sum");
        assert_eq!(r.latency.sum(), 3_000);
    }

    #[test]
    fn report_renders_tables_heatmap_and_json() {
        let mut sink = AttributionSink::new();
        sink.record(&path_event(1_000, 300, 200));
        sink.record(&SimEvent::LinkBusy {
            node: 0,
            to: 1,
            start_ps: 0,
            end_ps: 500,
        });
        sink.record(&SimEvent::LinkBusy {
            node: 1,
            to: 2,
            start_ps: 0,
            end_ps: 100,
        });
        sink.record(&SimEvent::PacketForward {
            ts_ps: 0,
            node: 0,
            to: 1,
            packets: 1,
        });
        let r = sink.report(1_000);
        let text = r.render();
        assert!(text.contains("Latency decomposition"), "{text}");
        assert!(text.contains("Hottest links"), "{text}");
        assert!(text.contains("0->1"), "{text}");
        assert!(text.contains("50.0"), "500/1000 = 50% util: {text}");
        let json = r.to_json();
        assert!(json.contains("\"schema\":\"mermaid-attribution-v1\""));
        assert!(json.contains("\"util_ppm\":500000"));
        assert!(!json.contains('.'), "attribution.json is integer-only");
        // Busiest link ranks first and is 500/300-vs-mean ≈ 1.66x.
        let (dom, _, max_link) = r.headline();
        assert_eq!(dom, "overhead");
        assert_eq!(max_link, 500_000);
    }

    #[test]
    fn empty_sink_reports_cleanly() {
        let r = AttributionSink::new().report(0);
        assert_eq!(r.messages, 0);
        assert_eq!(r.total_ps(), 0);
        let text = r.render();
        assert!(text.contains("0 message(s)"));
        let json = r.to_json();
        assert!(json.contains("\"messages\":0"));
        assert_eq!(r.headline().1, 0);
    }

    #[test]
    fn retry_component_is_tracked_separately() {
        let mut sink = AttributionSink::new();
        sink.record(&SimEvent::MsgPath {
            ts_ps: 10,
            src: 0,
            dst: 1,
            bytes: 8,
            latency_ps: 5_000,
            overhead_ps: 0,
            retry_ps: 4_000,
            queue_ps: 0,
            routing_ps: 500,
            ser_ps: 300,
            wire_ps: 200,
        });
        sink.record(&SimEvent::MsgRetry {
            ts_ps: 5,
            src: 0,
            dst: 1,
            attempt: 1,
        });
        let r = sink.report(0);
        assert_eq!(r.total_ps(), 5_000);
        let comps = r.components();
        let retry = comps.iter().find(|c| c.0 == "retry").unwrap();
        assert_eq!(retry.1, 4_000);
        assert_eq!(retry.2, 800_000, "4/5 of the time went to recovery");
        assert_eq!(r.headline().0, "retry");
        assert!(r.to_json().contains("\"retries\":1"));
    }
}
