//! # mermaid-dsm — virtual shared memory over message passing
//!
//! The paper notes that explicit `send`/`recv` annotations leak the
//! platform's physical topology into the application level, and announces
//! the fix as future work: *"we will use a virtual shared memory in the
//! future to hide all explicit communication"* (Section 5.1). This crate
//! implements that layer.
//!
//! ## Model
//!
//! A **page-based, home-based DSM** with release consistency:
//!
//! * Shared arrays are striped over the nodes page by page
//!   (`home(page) = page mod nodes`). Every node holds a full-size local
//!   *shadow* of each shared array; locally-homed pages are always valid in
//!   it.
//! * A read of a remote page **faults** at most once between acquires: the
//!   runtime issues a one-sided `get(page_bytes, home)` (serviced by the
//!   home node without any trace operation of its own — see
//!   `mermaid_ops::Operation::Get`), then reads the shadow copy.
//! * A write to a remote page is **written through** with a one-sided
//!   `put` to the home (and updates the local shadow).
//! * [`Dsm::acquire`] invalidates all cached remote pages, so subsequent
//!   reads observe writes that other nodes pushed to the homes — lazy
//!   consistency with explicit synchronisation points, the model scalable
//!   software DSMs (TreadMarks-style) actually used.
//!
//! Because page state evolves only from the node's *own* access/acquire
//! sequence, trace generation remains deterministic — the timing-dependent
//! part (when the data actually moves) is resolved by the communication
//! model, exactly like every other Mermaid operation.
//!
//! ## Example
//!
//! ```
//! use mermaid_dsm::{Dsm, DsmConfig};
//! use mermaid_tracegen::annotate::{Annotator, Translator};
//! use mermaid_ops::DataType;
//!
//! let mut t = Translator::with_defaults(0);
//! let mut dsm = Dsm::new(&mut t, DsmConfig { nodes: 4, page_bytes: 1024 });
//! let v = dsm.shared_array("v", DataType::F64, 1024);
//! dsm.read(v, 0);        // page 0 is homed here: local
//! dsm.read(v, 200);      // page 1 is homed on node 1: faults (get)
//! dsm.read(v, 201);      // same page: served from the cached copy
//! dsm.write(v, 200);     // remote page: write-through (put)
//! let stats = dsm.stats().clone();
//! assert_eq!(stats.page_faults, 1);
//! assert_eq!(stats.write_throughs, 1);
//! ```

pub mod programs;
pub mod runtime;

pub use runtime::{Dsm, DsmConfig, DsmStats, SharedVar};
