//! Shared-memory SPMD kernels written against the DSM layer — the same
//! algorithms as `mermaid_tracegen::programs`, but with *no explicit
//! communication*: the applications only read and write shared arrays, and
//! the DSM runtime turns sharing into (one-sided) messages. This is the
//! programming model the paper's Section 5.1 promises.

use mermaid_ops::{ArithOp, DataType};
use mermaid_tracegen::annotate::Annotator;

use crate::runtime::{Dsm, DsmConfig};

/// DSM matrix multiply `C = A × B`: all three matrices shared and striped
/// across the nodes; node `me` computes its block of rows. `B` is read by
/// everyone (page faults pull it in once per node), `C` rows are written
/// mostly to locally-homed pages.
pub fn dsm_matmul(ann: &mut impl Annotator, cfg: DsmConfig, n: u64) {
    let me = ann.node();
    let nodes = cfg.nodes;
    let mut dsm = Dsm::new(ann, cfg);
    let a = dsm.shared_array("A", DataType::F64, n * n);
    let b = dsm.shared_array("B", DataType::F64, n * n);
    let c = dsm.shared_array("C", DataType::F64, n * n);

    // Wait for initialisation everywhere, then compute this node's rows.
    dsm.barrier();
    let rows_per = n.div_ceil(nodes as u64);
    let lo = (me as u64 * rows_per).min(n);
    let hi = ((me as u64 + 1) * rows_per).min(n);
    for i in lo..hi {
        for j in 0..n {
            let ann = dsm.annotator();
            let jl = ann.loop_head();
            ann.loadc(DataType::F64);
            for k in 0..n {
                dsm.read(a, i * n + k);
                dsm.read(b, k * n + j);
                let ann = dsm.annotator();
                ann.arith(ArithOp::Mul, DataType::F64);
                ann.arith(ArithOp::Add, DataType::F64);
            }
            dsm.write(c, i * n + j);
            dsm.annotator().loop_back(jl);
        }
    }
    // Publish results and synchronise.
    dsm.barrier();
}

/// DSM Jacobi relaxation on a shared 1-D grid: every node sweeps its own
/// slice; halo values are simply shared reads — the runtime fetches the
/// neighbour's boundary page on demand after each barrier.
pub fn dsm_jacobi1d(ann: &mut impl Annotator, cfg: DsmConfig, cells_per_node: u64, iters: u32) {
    let me = ann.node() as u64;
    let nodes = cfg.nodes as u64;
    let total = cells_per_node * nodes;
    let mut dsm = Dsm::new(ann, cfg);
    let cur = dsm.shared_array("u", DataType::F64, total);
    let new = dsm.shared_array("u_new", DataType::F64, total);

    let lo = me * cells_per_node;
    let hi = lo + cells_per_node;
    for _ in 0..iters {
        dsm.barrier();
        for i in lo..hi {
            let left = i.checked_sub(1);
            let right = if i + 1 < total { Some(i + 1) } else { None };
            if let Some(l) = left {
                dsm.read(cur, l);
            }
            if let Some(r) = right {
                dsm.read(cur, r);
            }
            let ann = dsm.annotator();
            ann.arith(ArithOp::Add, DataType::F64);
            ann.loadc(DataType::F64);
            ann.arith(ArithOp::Mul, DataType::F64);
            dsm.write(new, i);
        }
    }
    dsm.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_ops::{Trace, TraceSet};
    use mermaid_tracegen::annotate::Translator;

    fn run_all(cfg: DsmConfig, f: impl Fn(&mut Translator, DsmConfig)) -> TraceSet {
        let traces: Vec<Trace> = (0..cfg.nodes)
            .map(|node| {
                let mut t = Translator::with_defaults(node);
                f(&mut t, cfg);
                t.finish()
            })
            .collect();
        TraceSet::from_traces(traces)
    }

    fn cfg4() -> DsmConfig {
        DsmConfig {
            nodes: 4,
            page_bytes: 1024,
        }
    }

    #[test]
    fn dsm_matmul_produces_balanced_traces() {
        let ts = run_all(cfg4(), |t, c| dsm_matmul(t, c, 16));
        assert!(ts.comm_imbalances().is_empty());
        for t in ts.iter() {
            let s = t.stats();
            // DSM programs communicate through gets/puts and barriers only:
            // no application-level sends besides the barrier traffic.
            assert!(s.gets > 0, "node {} never faulted a page", t.node);
            assert!(s.float_arith > 0);
        }
    }

    #[test]
    fn dsm_hides_explicit_communication() {
        // Application-visible communication is only the two barriers — all
        // data movement is one-sided, driven by the runtime.
        let ts = run_all(cfg4(), |t, c| dsm_matmul(t, c, 8));
        let worker = ts.trace(2).stats();
        // Two barriers × one asend each for a worker.
        assert_eq!(worker.asends, 2);
        assert_eq!(worker.sends, 0);
    }

    #[test]
    fn dsm_jacobi_faults_only_boundary_pages() {
        // Interior reads hit locally-homed or already-cached pages; only
        // the neighbour-boundary pages fault, once per iteration.
        let cfg = DsmConfig {
            nodes: 4,
            page_bytes: 1024,
        };
        let iters = 3u32;
        // 512 cells/node × 8 B = 4 KiB/node = 4 pages per node slice.
        let ts = run_all(cfg, move |t, c| dsm_jacobi1d(t, c, 512, iters));
        assert!(ts.comm_imbalances().is_empty());
        let middle = ts.trace(1).stats();
        // Per iteration a middle node faults O(boundary) pages, not O(slice):
        // ≤ 4 pages per sweep (left/right halo + own-slice pages homed
        // elsewhere by striping).
        assert!(
            middle.gets <= (iters as u64) * 10,
            "{} gets is too many",
            middle.gets
        );
        assert!(
            middle.gets >= iters as u64,
            "halo must fault every iteration"
        );
    }

    #[test]
    fn page_size_trades_faults_for_volume() {
        let gets = |page_bytes: u32| {
            let cfg = DsmConfig {
                nodes: 4,
                page_bytes,
            };
            let ts = run_all(cfg, |t, c| dsm_matmul(t, c, 16));
            ts.trace(3).stats().gets
        };
        // Larger pages ⇒ fewer faults (more data per fault).
        assert!(gets(4096) < gets(256));
    }
}
