//! The DSM runtime: page table, fault handling, and synchronisation.

use std::collections::HashSet;

use mermaid_ops::{DataType, NodeId};
use mermaid_tracegen::annotate::Annotator;
use mermaid_tracegen::VarId;
use serde::{Deserialize, Serialize};

/// Configuration of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DsmConfig {
    /// Number of nodes sharing the space.
    pub nodes: u32,
    /// Page size in bytes (the fault/transfer granularity).
    pub page_bytes: u32,
}

impl DsmConfig {
    /// Validate the configuration.
    pub fn validate(&self) {
        assert!(self.nodes >= 1, "DSM needs at least one node");
        assert!(
            self.page_bytes >= 64 && self.page_bytes.is_power_of_two(),
            "page size must be a power of two ≥ 64"
        );
    }

    /// The home node of a (global) page index.
    #[inline]
    pub fn home(&self, page: u64) -> NodeId {
        (page % self.nodes as u64) as NodeId
    }
}

/// Handle to a shared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedVar {
    /// The local shadow array backing this node's view.
    shadow: VarId,
    /// Element type.
    ty: DataType,
    /// Element count.
    elems: u64,
    /// First global page of this array.
    first_page: u64,
}

/// Runtime statistics of one node's DSM layer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DsmStats {
    /// Accesses served from locally-homed pages.
    pub local_accesses: u64,
    /// Accesses served from a cached remote page.
    pub cached_accesses: u64,
    /// Remote-page faults (each costs one `get` of a page).
    pub page_faults: u64,
    /// Remote writes pushed to their home (each costs one `put`).
    pub write_throughs: u64,
    /// `acquire` synchronisation points executed.
    pub acquires: u64,
}

/// The per-node DSM runtime, layered over any [`Annotator`].
///
/// All nodes of an SPMD program must create their shared arrays in the same
/// order with the same shapes (exactly like globals in an SPMD C program) —
/// the address space layout is derived from the allocation sequence.
pub struct Dsm<'a, A: Annotator> {
    ann: &'a mut A,
    cfg: DsmConfig,
    me: NodeId,
    /// Next free global page.
    next_page: u64,
    /// Remote pages currently cached read-valid.
    cached: HashSet<u64>,
    stats: DsmStats,
}

impl<'a, A: Annotator> Dsm<'a, A> {
    /// Wrap an annotator in a DSM runtime.
    pub fn new(ann: &'a mut A, cfg: DsmConfig) -> Self {
        cfg.validate();
        let me = ann.node();
        assert!(
            me < cfg.nodes,
            "node {me} outside the DSM's {} nodes",
            cfg.nodes
        );
        Dsm {
            ann,
            cfg,
            me,
            next_page: 0,
            cached: HashSet::new(),
            stats: DsmStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> DsmConfig {
        self.cfg
    }

    /// Runtime statistics so far.
    pub fn stats(&self) -> &DsmStats {
        &self.stats
    }

    /// Direct access to the wrapped annotator (for the private parts of the
    /// program).
    pub fn annotator(&mut self) -> &mut A {
        self.ann
    }

    /// Allocate a shared array of `elems` elements of `ty`, striped over
    /// the nodes page by page.
    pub fn shared_array(&mut self, name: &str, ty: DataType, elems: u64) -> SharedVar {
        assert!(elems >= 1, "shared array {name} has zero elements");
        let bytes = elems * ty.bytes();
        let pages = bytes.div_ceil(self.cfg.page_bytes as u64);
        let first_page = self.next_page;
        self.next_page += pages;
        let shadow = self.ann.global(&format!("dsm::{name}"), ty, elems);
        SharedVar {
            shadow,
            ty,
            elems,
            first_page,
        }
    }

    /// The global page holding element `idx` of `var`.
    fn page_of(&self, var: SharedVar, idx: u64) -> u64 {
        assert!(idx < var.elems, "shared index {idx} out of bounds");
        var.first_page + idx * var.ty.bytes() / self.cfg.page_bytes as u64
    }

    /// Ensure element `idx` of `var` is readable locally, faulting if
    /// needed. Returns the page touched.
    fn ensure_readable(&mut self, var: SharedVar, idx: u64) -> u64 {
        let page = self.page_of(var, idx);
        let home = self.cfg.home(page);
        if home == self.me {
            self.stats.local_accesses += 1;
        } else if self.cached.contains(&page) {
            self.stats.cached_accesses += 1;
        } else {
            self.stats.page_faults += 1;
            self.ann.get(self.cfg.page_bytes, home);
            self.cached.insert(page);
        }
        page
    }

    /// Shared read: `x = var[idx]`.
    pub fn read(&mut self, var: SharedVar, idx: u64) {
        self.ensure_readable(var, idx);
        self.ann.load_idx(var.shadow, idx);
    }

    /// Shared write: `var[idx] = x`. Remote pages are written through to
    /// their home with a one-sided `put` of the element.
    pub fn write(&mut self, var: SharedVar, idx: u64) {
        let page = self.page_of(var, idx);
        let home = self.cfg.home(page);
        self.ann.store_idx(var.shadow, idx);
        if home == self.me {
            self.stats.local_accesses += 1;
        } else {
            self.stats.write_throughs += 1;
            self.ann.put(var.ty.bytes() as u32, home);
        }
    }

    /// Acquire: invalidate all cached remote pages so subsequent reads see
    /// writes other nodes pushed to the homes. Call on entry to a
    /// synchronised phase (after a barrier/lock acquisition).
    pub fn acquire(&mut self) {
        self.stats.acquires += 1;
        self.cached.clear();
    }

    /// A master-based barrier built from the messaging layer, followed by
    /// an [`Dsm::acquire`]. Every node of the SPMD program must call it the
    /// same number of times.
    pub fn barrier(&mut self) {
        let n = self.cfg.nodes;
        if n > 1 {
            if self.me == 0 {
                for w in 1..n {
                    self.ann.recv(w);
                }
                for w in 1..n {
                    self.ann.asend(0, w);
                }
            } else {
                self.ann.asend(0, 0);
                self.ann.recv(0);
            }
        }
        self.acquire();
    }

    /// Number of distinct remote pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.cached.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_ops::Operation;
    use mermaid_tracegen::annotate::Translator;

    fn dsm_node(node: NodeId) -> (Translator, DsmConfig) {
        (
            Translator::with_defaults(node),
            DsmConfig {
                nodes: 4,
                page_bytes: 1024,
            },
        )
    }

    #[test]
    fn home_striping_is_round_robin() {
        let cfg = DsmConfig {
            nodes: 4,
            page_bytes: 1024,
        };
        assert_eq!(cfg.home(0), 0);
        assert_eq!(cfg.home(1), 1);
        assert_eq!(cfg.home(5), 1);
        assert_eq!(cfg.home(7), 3);
    }

    #[test]
    fn local_pages_never_fault() {
        let (mut t, cfg) = dsm_node(0);
        let mut dsm = Dsm::new(&mut t, cfg);
        // Page 0 of the array is homed on node 0 (first_page = 0).
        let v = dsm.shared_array("v", DataType::F64, 4096);
        for idx in 0..128 {
            dsm.read(v, idx); // 128 × 8 B = exactly page 0
        }
        assert_eq!(dsm.stats().page_faults, 0);
        assert_eq!(dsm.stats().local_accesses, 128);
        let trace = t.finish();
        assert_eq!(trace.stats().gets, 0);
        assert!(trace.stats().loads > 0);
    }

    #[test]
    fn remote_page_faults_once_until_acquire() {
        let (mut t, cfg) = dsm_node(0);
        let mut dsm = Dsm::new(&mut t, cfg);
        let v = dsm.shared_array("v", DataType::F64, 4096);
        // Elements 128..256 live on page 1, homed on node 1.
        dsm.read(v, 128);
        dsm.read(v, 129);
        dsm.read(v, 255);
        assert_eq!(dsm.stats().page_faults, 1);
        assert_eq!(dsm.stats().cached_accesses, 2);
        assert_eq!(dsm.cached_pages(), 1);
        // Acquire invalidates; the next read re-fetches.
        dsm.acquire();
        assert_eq!(dsm.cached_pages(), 0);
        dsm.read(v, 128);
        assert_eq!(dsm.stats().page_faults, 2);
        let trace = t.finish();
        assert_eq!(trace.stats().gets, 2);
        assert_eq!(
            trace
                .iter()
                .filter(|o| matches!(o, Operation::Get { from: 1, .. }))
                .count(),
            2
        );
    }

    #[test]
    fn remote_writes_are_written_through_every_time() {
        let (mut t, cfg) = dsm_node(0);
        let mut dsm = Dsm::new(&mut t, cfg);
        let v = dsm.shared_array("v", DataType::F64, 4096);
        dsm.write(v, 128); // page 1 → node 1
        dsm.write(v, 129);
        dsm.write(v, 0); // local
        assert_eq!(dsm.stats().write_throughs, 2);
        assert_eq!(dsm.stats().local_accesses, 1);
        let trace = t.finish();
        assert_eq!(trace.stats().puts, 2);
        assert_eq!(trace.stats().stores, 3); // every write updates the shadow
    }

    #[test]
    fn multiple_arrays_get_distinct_pages() {
        let (mut t, cfg) = dsm_node(2);
        let mut dsm = Dsm::new(&mut t, cfg);
        let a = dsm.shared_array("a", DataType::F64, 128); // 1 page: page 0
        let b = dsm.shared_array("b", DataType::I32, 256); // 1 page: page 1
        assert_eq!(dsm.page_of(a, 0), 0);
        assert_eq!(dsm.page_of(b, 0), 1);
        assert_eq!(dsm.page_of(b, 255), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_bounds_are_checked() {
        let (mut t, cfg) = dsm_node(0);
        let mut dsm = Dsm::new(&mut t, cfg);
        let v = dsm.shared_array("v", DataType::I32, 10);
        dsm.read(v, 10);
    }

    #[test]
    fn barrier_emits_balanced_messages() {
        use mermaid_ops::{Trace, TraceSet};
        let cfg = DsmConfig {
            nodes: 3,
            page_bytes: 1024,
        };
        let traces: Vec<Trace> = (0..3)
            .map(|node| {
                let mut t = Translator::with_defaults(node);
                let mut dsm = Dsm::new(&mut t, cfg);
                dsm.barrier();
                dsm.barrier();
                t.finish()
            })
            .collect();
        let ts = TraceSet::from_traces(traces);
        assert!(ts.comm_imbalances().is_empty());
    }

    #[test]
    fn single_node_dsm_is_all_local() {
        let mut t = Translator::with_defaults(0);
        let mut dsm = Dsm::new(
            &mut t,
            DsmConfig {
                nodes: 1,
                page_bytes: 1024,
            },
        );
        let v = dsm.shared_array("v", DataType::F64, 10_000);
        for i in (0..10_000).step_by(97) {
            dsm.read(v, i);
            dsm.write(v, i);
        }
        assert_eq!(dsm.stats().page_faults, 0);
        assert_eq!(dsm.stats().write_throughs, 0);
        dsm.barrier(); // no messages on one node
        let trace = t.finish();
        assert_eq!(trace.stats().comm_ops(), 0);
    }
}
