//! Property-based tests of the DSM runtime's caching discipline.

use proptest::prelude::*;
use std::collections::HashSet;

use mermaid_dsm::{Dsm, DsmConfig};
use mermaid_ops::{DataType, Operation};
use mermaid_tracegen::annotate::Translator;

proptest! {
    /// Fault accounting: the number of `get` operations in the generated
    /// trace equals the page-fault statistic, and never exceeds the number
    /// of distinct remote pages touched per epoch (between acquires).
    #[test]
    fn faults_are_bounded_by_distinct_remote_pages(
        accesses in prop::collection::vec((any::<bool>(), 0u64..4096, any::<bool>()), 1..300),
        me in 0u32..4,
    ) {
        let cfg = DsmConfig { nodes: 4, page_bytes: 512 };
        let mut t = Translator::with_defaults(me);
        let mut dsm = Dsm::new(&mut t, cfg);
        let v = dsm.shared_array("v", DataType::F64, 4096);

        let mut epoch_remote_reads: HashSet<u64> = HashSet::new();
        let mut expected_fault_bound = 0u64;
        let mut expected_puts = 0u64;
        for &(is_write, idx, do_acquire) in &accesses {
            if do_acquire {
                dsm.acquire();
                expected_fault_bound += epoch_remote_reads.len() as u64;
                epoch_remote_reads.clear();
            }
            let page = idx * 8 / 512;
            let home = cfg.home(page);
            if is_write {
                dsm.write(v, idx);
                if home != me {
                    expected_puts += 1;
                }
            } else {
                dsm.read(v, idx);
                if home != me {
                    epoch_remote_reads.insert(page);
                }
            }
        }
        expected_fault_bound += epoch_remote_reads.len() as u64;

        let stats = dsm.stats().clone();
        let trace = t.finish();
        let s = trace.stats();
        prop_assert_eq!(s.gets, stats.page_faults, "trace gets == stat faults");
        prop_assert_eq!(s.puts, stats.write_throughs);
        prop_assert_eq!(s.puts, expected_puts);
        prop_assert!(
            stats.page_faults <= expected_fault_bound,
            "faults {} exceed distinct-remote-page bound {}",
            stats.page_faults,
            expected_fault_bound
        );
        // Every read/write touched the shadow: loads+stores ≥ accesses.
        prop_assert!(s.loads + s.stores >= accesses.len() as u64);
    }

    /// Within one epoch, re-reading the same element never faults twice.
    #[test]
    fn repeated_reads_fault_at_most_once(idx in 0u64..4096, reps in 1usize..20) {
        let cfg = DsmConfig { nodes: 4, page_bytes: 512 };
        let mut t = Translator::with_defaults(0);
        let mut dsm = Dsm::new(&mut t, cfg);
        let v = dsm.shared_array("v", DataType::F64, 4096);
        for _ in 0..reps {
            dsm.read(v, idx);
        }
        prop_assert!(dsm.stats().page_faults <= 1);
    }

    /// The generated communication is one-sided only (no sends/recvs from
    /// data access; the matcher-based operations appear only via barrier).
    #[test]
    fn data_access_emits_only_one_sided_traffic(
        accesses in prop::collection::vec((any::<bool>(), 0u64..1024), 1..100),
    ) {
        let cfg = DsmConfig { nodes: 4, page_bytes: 512 };
        let mut t = Translator::with_defaults(1);
        let mut dsm = Dsm::new(&mut t, cfg);
        let v = dsm.shared_array("v", DataType::F64, 1024);
        for &(is_write, idx) in &accesses {
            if is_write { dsm.write(v, idx) } else { dsm.read(v, idx) }
        }
        let trace = t.finish();
        for op in trace.iter() {
            let two_sided = matches!(
                op,
                Operation::Send { .. }
                    | Operation::Recv { .. }
                    | Operation::ASend { .. }
                    | Operation::ARecv { .. }
            );
            prop_assert!(!two_sided, "unexpected two-sided op {}", op);
        }
    }
}
