//! The pending-event set: a stable priority queue ordered by virtual time.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO), which makes every simulation deterministic — a
//! property the Mermaid trace-validity argument (physical-time interleaving)
//! relies on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// An entry in the queue: an opaque payload tagged with its delivery time
/// and a monotone sequence number for stable ordering.
struct Entry<T> {
    time: Time,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable min-priority queue of timestamped items.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Insert `item` for delivery at `time`.
    #[inline]
    pub fn push(&mut self, time: Time, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, item });
    }

    /// Remove and return the earliest item together with its delivery time.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|e| (e.time, e.item))
    }

    /// Delivery time of the earliest pending item, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending items.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no items are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending items.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of items ever pushed (monotone; used by engine stats).
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), "c");
        q.push(Time::from_ps(10), "a");
        q.push(Time::from_ps(20), "b");
        assert_eq!(q.pop(), Some((Time::from_ps(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_ps(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_ps(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ps(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_stable() {
        let mut q = EventQueue::new();
        let t = Time::from_ps(1);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ps(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_ps(7)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 1);
    }
}
