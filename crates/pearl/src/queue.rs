//! The pending-event set: a stable priority queue ordered by virtual time.
//!
//! Events scheduled for the same instant are delivered in a deterministic
//! order, which makes every simulation reproducible — a property the
//! Mermaid trace-validity argument (physical-time interleaving) relies on.
//! Two tie-break regimes share one entry layout (see [`EventKey`]):
//!
//! * [`EventQueue::push`] assigns a queue-global monotone sequence, so
//!   plain pushes pop FIFO among ties — the classic stable-queue contract.
//! * [`EventQueue::push_keyed`] lets the caller supply the key. The engine
//!   derives it from *simulation state only* (schedule instant, scheduling
//!   component, that component's own push count), so the pop order is
//!   independent of how pushes from different components interleave — the
//!   property that lets a sharded run replay the exact single-threaded
//!   order (see `crate::shard`).
//!
//! A queue should use one regime or the other; mixing them keeps time
//! order but leaves same-instant ties between the two regimes unspecified.
//!
//! # Two-tier scheduler
//!
//! The queue is a ladder/calendar hybrid rather than a single binary heap.
//! Pending events live in one of three tiers by how far ahead of the
//! consumption frontier they are:
//!
//! 1. **current** — a small binary min-heap holding every event earlier
//!    than `cur_end`. All pops come from here.
//! 2. **buckets** — `NUM_BUCKETS` append-only vectors covering the epoch
//!    window `[epoch_base, epoch_base + NUM_BUCKETS × width)`. A push into
//!    this window is an O(1) `Vec::push`; the bucket is heapified in one
//!    batch when the frontier reaches it.
//! 3. **far** — a binary heap for everything at or beyond the epoch
//!    horizon.
//!
//! When `current` and all buckets drain, the queue *rebases*: it pulls a
//! batch of the earliest far events, sizes `width` from their span (so
//! bucket occupancy adapts to the simulation's event density), and
//! scatters them into a fresh epoch. Every tier orders entries by the
//! same `(time, seq)` key, so the pop sequence is exactly the sequence a
//! plain stable binary heap would produce — determinism is structural,
//! not incidental. The win is that the common case (events scheduled a
//! short, similar distance ahead — link hops, pipeline stages, timers)
//! bypasses heap sifting entirely. When the pending set is small the
//! queue degrades gracefully to plain-heap operation (see `FAR_DRAIN`)
//! instead of paying epoch bookkeeping per event.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::probe::LadderStats;
use crate::time::Time;

/// Buckets per epoch. Small enough that a cold scan is trivial, large
/// enough that a typical epoch separates events into near-singleton
/// buckets.
const NUM_BUCKETS: usize = 64;

/// How many far events are pulled to size a new epoch. The span of this
/// batch sets the bucket width, so the figure trades adaptivity (small
/// batch) against rebase frequency (large batch).
const REBASE_BATCH: usize = NUM_BUCKETS * 4;

/// Below this many pending far events a drained queue skips epoch
/// construction entirely and falls back to plain heap order: scattering a
/// handful of events into buckets costs more than heap sifting saves, and
/// lightly-loaded simulations (a few timers per node) would otherwise pay
/// a rebase per delivery.
const FAR_DRAIN: usize = 2 * NUM_BUCKETS;

/// Deterministic tie-break key for events that share a delivery time.
///
/// Ordered lexicographically as `(push_ps, src, seq)`:
///
/// * `push_ps` — virtual instant at which the event was scheduled
///   (earlier-scheduled events deliver first, matching FIFO intuition),
/// * `src` — id of the scheduling component (ties between components
///   scheduled at the same instant resolve by id, not by host-side
///   execution order),
/// * `seq` — the scheduling component's own monotone push counter.
///
/// Every field is derived from simulation state a component can compute
/// locally, never from global push interleaving — so a sharded engine
/// reproduces exactly the keys the single-threaded engine assigns, and
/// with them the exact delivery order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventKey {
    /// Virtual time (ps) at which the push happened.
    pub push_ps: u64,
    /// Scheduling component id.
    pub src: u32,
    /// The scheduling component's push count at the time of the push.
    pub seq: u64,
}

/// An entry in the queue: an opaque payload tagged with its delivery time
/// and a deterministic tie-break key.
struct Entry<T> {
    time: Time,
    key: EventKey,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, key) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// A stable min-priority queue of timestamped items.
pub struct EventQueue<T> {
    /// Tier 1: events below `cur_end`, in a min-heap. The global minimum
    /// is always here once [`EventQueue::settle`] has run.
    current: BinaryHeap<Entry<T>>,
    /// Exclusive upper bound of the current window (`epoch_base +
    /// cursor × width`, saturating).
    cur_end: u64,
    /// Tier 2: bucket `i` covers `[epoch_base + i·width, +width)`.
    buckets: Vec<Vec<Entry<T>>>,
    /// Start of bucket 0's window for this epoch.
    epoch_base: u64,
    /// Bucket width in ps (≥ 1), resized at every rebase.
    width: u64,
    /// Next bucket the frontier will promote into `current`.
    cursor: usize,
    /// Total events currently held in `buckets`.
    in_buckets: usize,
    /// Tier 3: events at or beyond the epoch horizon.
    far: BinaryHeap<Entry<T>>,
    next_seq: u64,
    /// Monotone tier-transition counters (cold paths only; see
    /// [`EventQueue::ladder_stats`]).
    ladder: LadderStats,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            current: BinaryHeap::new(),
            cur_end: 0,
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            epoch_base: 0,
            width: 1,
            cursor: 0,
            in_buckets: 0,
            far: BinaryHeap::new(),
            next_seq: 0,
            ladder: LadderStats::default(),
        }
    }

    /// Create an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = EventQueue::new();
        q.current = BinaryHeap::with_capacity(cap.min(1024));
        q.far = BinaryHeap::with_capacity(cap);
        q
    }

    /// Insert `item` for delivery at `time`. Same-time ties pop FIFO
    /// (ordered by a queue-global push counter).
    #[inline]
    pub fn push(&mut self, time: Time, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_entry(Entry {
            time,
            key: EventKey {
                push_ps: 0,
                src: 0,
                seq,
            },
            item,
        });
    }

    /// Insert `item` for delivery at `time` with a caller-supplied
    /// tie-break key (see [`EventKey`]). Same-time ties pop in key order.
    #[inline]
    pub fn push_keyed(&mut self, time: Time, key: EventKey, item: T) {
        self.next_seq += 1; // keeps `total_pushed` meaningful
        self.push_entry(Entry { time, key, item });
    }

    #[inline]
    fn push_entry(&mut self, entry: Entry<T>) {
        let t = entry.time.as_ps();
        if t < self.cur_end {
            self.current.push(entry);
            return;
        }
        // `t >= cur_end >= epoch_base`, so this cannot underflow.
        let idx = (t - self.epoch_base) / self.width;
        if idx < NUM_BUCKETS as u64 {
            self.buckets[idx as usize].push(entry);
            self.in_buckets += 1;
        } else {
            self.far.push(entry);
        }
    }

    /// Ensure the global minimum (if any) sits in `current`, promoting
    /// buckets and rebasing from the far heap as needed.
    fn settle(&mut self) {
        while self.current.is_empty() {
            if self.in_buckets > 0 {
                // Advance the frontier to the next non-empty bucket and
                // promote it wholesale.
                while self.cursor < NUM_BUCKETS {
                    let c = self.cursor;
                    self.cursor += 1;
                    self.cur_end = self
                        .epoch_base
                        .saturating_add(self.width.saturating_mul(self.cursor as u64));
                    if !self.buckets[c].is_empty() {
                        let batch = std::mem::take(&mut self.buckets[c]);
                        self.in_buckets -= batch.len();
                        self.current.extend(batch);
                        self.ladder.promotions += 1;
                        break;
                    }
                }
            } else if self.far.len() > FAR_DRAIN {
                self.rebase();
            } else if !self.far.is_empty() {
                self.drain_far();
            } else {
                return; // genuinely empty
            }
        }
    }

    /// Start a new epoch: size the bucket width from the earliest far
    /// events and scatter everything below the new horizon into buckets.
    fn rebase(&mut self) {
        debug_assert!(self.current.is_empty() && self.in_buckets == 0);
        self.ladder.rebases += 1;
        let take = self.far.len().min(REBASE_BATCH);
        let mut batch = Vec::with_capacity(take);
        for _ in 0..take {
            batch.push(self.far.pop().expect("far heap emptied during rebase"));
        }
        // Heap pops arrive in ascending (time, seq) order.
        let t_min = batch
            .first()
            .expect("rebase on empty far heap")
            .time
            .as_ps();
        let t_max = batch.last().expect("rebase batch empty").time.as_ps();
        self.width = (t_max - t_min) / NUM_BUCKETS as u64 + 1;
        self.epoch_base = t_min;
        self.cursor = 0;
        self.cur_end = t_min;
        let horizon = t_min.saturating_add(self.width.saturating_mul(NUM_BUCKETS as u64));
        for e in batch {
            let idx = ((e.time.as_ps() - t_min) / self.width) as usize;
            debug_assert!(idx < NUM_BUCKETS);
            self.buckets[idx].push(e);
            self.in_buckets += 1;
        }
        // Stragglers below the horizon (ties at t_max, or events the
        // sizing batch did not reach) must move too, or a later push into
        // a bucket could overtake them.
        while self.far.peek().is_some_and(|e| e.time.as_ps() < horizon) {
            let e = self.far.pop().expect("peeked entry vanished");
            let idx = ((e.time.as_ps() - t_min) / self.width) as usize;
            self.buckets[idx].push(e);
            self.in_buckets += 1;
        }
    }

    /// Plain-heap fallback for a small pending set: move *all* far events
    /// into `current` (an O(1) storage swap — `current` is empty) and
    /// extend the window past them, so pushes near the frontier keep
    /// landing straight in the heap until traffic grows again.
    fn drain_far(&mut self) {
        debug_assert!(self.current.is_empty() && self.in_buckets == 0);
        self.ladder.far_drains += 1;
        self.current.append(&mut self.far);
        let last = self
            .current
            .iter()
            .map(|e| e.time.as_ps())
            .max()
            .unwrap_or(0);
        self.cur_end = last.saturating_add(1);
        self.epoch_base = self.cur_end;
        self.cursor = 0;
    }

    /// Remove and return the earliest item together with its delivery time.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, T)> {
        if self.current.is_empty() {
            self.settle();
        }
        self.current.pop().map(|e| (e.time, e.item))
    }

    /// Delivery time of the earliest pending item, if any.
    #[inline]
    pub fn peek_time(&mut self) -> Option<Time> {
        if self.current.is_empty() {
            self.settle();
        }
        self.current.peek().map(|e| e.time)
    }

    /// Delivery time and a view of the earliest pending item, if any.
    #[inline]
    pub fn peek(&mut self) -> Option<(Time, &T)> {
        if self.current.is_empty() {
            self.settle();
        }
        self.current.peek().map(|e| (e.time, &e.item))
    }

    /// Number of pending items.
    #[inline]
    pub fn len(&self) -> usize {
        self.current.len() + self.in_buckets + self.far.len()
    }

    /// True when no items are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all pending items.
    pub fn clear(&mut self) {
        self.current.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.far.clear();
        self.cur_end = 0;
        self.epoch_base = 0;
        self.width = 1;
        self.cursor = 0;
        self.in_buckets = 0;
    }

    /// Total number of items ever pushed (monotone; used by engine stats).
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }

    /// Non-destructive snapshot of every pending entry, sorted by
    /// `(time, key)` — the exact order the entries would pop in. Ladder
    /// geometry (which tier an entry currently sits in) is deliberately
    /// not captured: it is a performance artefact, not simulation state,
    /// and a restored queue rebuilds it from scratch.
    pub fn snapshot_events(&self) -> Vec<(Time, EventKey, T)>
    where
        T: Clone,
    {
        let mut out: Vec<(Time, EventKey, T)> = Vec::with_capacity(self.len());
        out.extend(self.current.iter().map(|e| (e.time, e.key, e.item.clone())));
        for b in &self.buckets {
            out.extend(b.iter().map(|e| (e.time, e.key, e.item.clone())));
        }
        out.extend(self.far.iter().map(|e| (e.time, e.key, e.item.clone())));
        out.sort_by_key(|a| (a.0, a.1));
        out
    }

    /// Monotone ladder-tier transition counters (like [`total_pushed`],
    /// they survive [`clear`]).
    ///
    /// [`total_pushed`]: EventQueue::total_pushed
    /// [`clear`]: EventQueue::clear
    #[inline]
    pub fn ladder_stats(&self) -> LadderStats {
        self.ladder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), "c");
        q.push(Time::from_ps(10), "a");
        q.push(Time::from_ps(20), "b");
        assert_eq!(q.pop(), Some((Time::from_ps(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_ps(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_ps(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ps(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_stable() {
        let mut q = EventQueue::new();
        let t = Time::from_ps(1);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ps(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_ps(7)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 1);
    }

    #[test]
    fn peek_exposes_item() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(9), "later");
        q.push(Time::from_ps(3), "first");
        assert_eq!(q.peek(), Some((Time::from_ps(3), &"first")));
        assert_eq!(q.pop(), Some((Time::from_ps(3), "first")));
        assert_eq!(q.peek(), Some((Time::from_ps(9), &"later")));
    }

    /// A small pending set takes the plain-heap drain path; pushes that
    /// land inside the extended window must still interleave correctly.
    #[test]
    fn small_sets_drain_and_stay_ordered() {
        let mut q = EventQueue::new();
        for i in (0u64..10).rev() {
            q.push(Time::from_ps(i * 1_000_000_000), i);
        }
        // First pop triggers the drain (all 10 are "far" initially).
        assert_eq!(q.pop(), Some((Time::from_ps(0), 0)));
        // A push below the extended window joins the heap directly and
        // pops in global order.
        q.push(Time::from_ps(500), 99);
        assert_eq!(q.pop(), Some((Time::from_ps(500), 99)));
        for i in 1u64..10 {
            assert_eq!(q.pop(), Some((Time::from_ps(i * 1_000_000_000), i)));
        }
        assert_eq!(q.pop(), None);
    }

    /// Times far enough apart to force every tier: current-window pushes,
    /// bucketed pushes, far-heap pushes, and multiple rebases.
    #[test]
    fn tiers_and_rebases_keep_global_order() {
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..500)
            .map(|i: u64| (i * 7_919) % 50 + (i % 7) * 1_000_000 + (i % 3) * 900_000_000)
            .collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ps(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort(); // (time, insertion index) == (time, seq) order
        for (t, i) in expect {
            assert_eq!(q.pop(), Some((Time::from_ps(t), i)));
        }
        assert_eq!(q.pop(), None);
    }

    /// Ladder counters move on the matching tier transitions and survive
    /// `clear`.
    #[test]
    fn ladder_stats_track_tier_transitions() {
        let mut q = EventQueue::new();
        assert_eq!(q.ladder_stats(), LadderStats::default());
        // t=0 lands in bucket 0 of the initial epoch; the rest are far.
        for i in 0u64..4 {
            q.push(Time::from_ps(i * 1_000_000_000), i);
        }
        q.pop();
        assert_eq!(q.ladder_stats().promotions, 1);
        // The remaining small far set drains via the plain-heap fallback.
        q.pop();
        assert_eq!(q.ladder_stats().far_drains, 1);
        assert_eq!(q.ladder_stats().rebases, 0);
        // A large far set forces a rebase and subsequent bucket promotions.
        let mut q = EventQueue::new();
        for i in 0u64..(2 * FAR_DRAIN as u64 + 1) {
            q.push(Time::from_ps(i * 1_000_000_000), i);
        }
        while q.pop().is_some() {}
        let s = q.ladder_stats();
        assert!(s.rebases >= 1, "expected at least one rebase: {s:?}");
        assert!(s.promotions >= 1, "expected promotions: {s:?}");
        assert_eq!(s.total(), s.promotions + s.rebases + s.far_drains);
        q.clear();
        assert_eq!(q.ladder_stats(), s, "counters are monotone across clear");
    }

    /// Pushes interleaved with pops land in whatever tier matches their
    /// horizon; order must still be exact.
    #[test]
    fn interleaved_cross_tier_traffic() {
        let mut q = EventQueue::new();
        for i in 0u64..64 {
            q.push(Time::from_ps(i * 1_000), i);
        }
        let mut popped = Vec::new();
        for round in 0u64..64 {
            let (t, v) = q.pop().unwrap();
            popped.push((t.as_ps(), v));
            // Schedule ahead of `now` at several distances.
            q.push(Time::from_ps(t.as_ps() + 10), 1_000 + round);
            q.push(Time::from_ps(t.as_ps() + 5_000_000), 2_000 + round);
        }
        let mut last = (0, 0);
        while let Some((t, v)) = q.pop() {
            let key = (t.as_ps(), v);
            assert!(key > last, "out of order: {key:?} after {last:?}");
            last = key;
        }
        assert!(q.is_empty());
    }
}
