//! The discrete-event engine: components, events, and the main loop.

use crate::probe::{EngineProbe, LadderStats};
use crate::queue::{EventKey, EventQueue};
use crate::time::{Duration, Time};

/// Identifies a component registered with an [`Engine`].
pub type CompId = usize;

/// A timestamped message between two components.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Virtual time at which the event is delivered.
    pub time: Time,
    /// Component that scheduled the event (== `dst` for self-scheduled
    /// timers).
    pub src: CompId,
    /// Component the event is delivered to.
    pub dst: CompId,
    /// Model-defined message payload.
    pub payload: M,
}

/// A simulation object (a Pearl "object"): receives events addressed to it
/// and reacts by mutating its state and scheduling further events.
///
/// `Any` is a supertrait so that concrete component state can be inspected
/// after a run via [`Engine::component`].
pub trait Component<M>: std::any::Any {
    /// Handle one event delivered to this component.
    fn handle(&mut self, ev: Event<M>, ctx: &mut Ctx<'_, M>);

    /// Called once before the simulation starts; schedule initial activity
    /// here. The default does nothing.
    fn init(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

/// The engine-side API handed to a component while it runs.
///
/// All scheduling is relative to the current virtual time; an event may not
/// be scheduled in the past (zero delay is allowed and is delivered after
/// all events already pending at the current instant).
pub struct Ctx<'e, M> {
    now: Time,
    self_id: CompId,
    queue: &'e mut EventQueue<QueuedEvent<M>>,
    stop_requested: &'e mut bool,
    key_counters: &'e mut [u64],
}

#[derive(Clone)]
struct QueuedEvent<M> {
    src: CompId,
    dst: CompId,
    payload: M,
}

/// One pending event as exposed by [`Engine::snapshot_pending`] and
/// accepted by [`Engine::restore`]: delivery time, deterministic tie-break
/// key, scheduling component, destination component, payload.
pub type PendingEvent<M> = (Time, EventKey, CompId, CompId, M);

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component currently executing.
    #[inline]
    pub fn self_id(&self) -> CompId {
        self.self_id
    }

    /// Allocate the deterministic tie-break key the *next* send from this
    /// component would carry, consuming one step of its push counter.
    ///
    /// Every scheduling path ([`Ctx::send_after`] and friends) allocates
    /// keys through here, so a caller that captures an event instead of
    /// scheduling it locally — a cross-shard egress — keeps this
    /// component's key sequence exactly in sync with a single-threaded run
    /// (see `crate::shard`).
    #[inline]
    pub fn alloc_key(&mut self) -> EventKey {
        let seq = self.key_counters[self.self_id];
        self.key_counters[self.self_id] = seq + 1;
        EventKey {
            push_ps: self.now.as_ps(),
            src: self.self_id as u32,
            seq,
        }
    }

    /// Send `payload` to `dst`, delivered after `delay`.
    #[inline]
    pub fn send_after(&mut self, delay: Duration, dst: CompId, payload: M) {
        let src = self.self_id;
        let key = self.alloc_key();
        self.queue
            .push_keyed(self.now + delay, key, QueuedEvent { src, dst, payload });
    }

    /// Send `payload` to `dst` at the current instant (after events already
    /// pending now).
    #[inline]
    pub fn send_now(&mut self, dst: CompId, payload: M) {
        self.send_after(Duration::ZERO, dst, payload);
    }

    /// Send `payload` to `dst` delivered at the absolute instant `at`.
    ///
    /// Panics if `at` is in the past — the same rule as every other
    /// scheduling path.
    #[inline]
    pub fn send_at(&mut self, at: Time, dst: CompId, payload: M) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.send_after(at.since(self.now), dst, payload);
    }

    /// Schedule a message to *this* component after `delay` — a timer.
    #[inline]
    pub fn timer(&mut self, delay: Duration, payload: M) {
        let me = self.self_id;
        self.send_after(delay, me, payload);
    }

    /// Ask the engine to stop after the current event completes.
    #[inline]
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// Storage and dispatch for a simulation's components.
///
/// The engine is generic over how components are stored. [`BoxWorld`] (the
/// default) keeps boxed trait objects, so any mix of `Component` types
/// composes freely. A model can instead supply its own struct-of-arrays
/// world — one typed slab per component kind, statically dispatched by id
/// range — for hot paths where cache locality and devirtualised calls
/// matter (the network model does this; see DESIGN.md §15).
///
/// Component ids are dense indices into the world. `count()` fixes the id
/// space: the engine sizes its per-component push counters (the
/// deterministic tie-break, see [`EventKey`]) from it, and `post` bounds-
/// checks against it. A sharded world may *own* only a sub-range of the id
/// space as long as `count()` still reports the full logical size — ids it
/// does not own must never be delivered to it.
pub trait World<M> {
    /// Size of the component id space (ids are `0..count()`).
    fn count(&self) -> usize;
    /// Run component `id`'s init hook. Called once per id, in id order.
    fn init(&mut self, id: CompId, ctx: &mut Ctx<'_, M>);
    /// Deliver one event to component `id`.
    fn handle(&mut self, id: CompId, ev: Event<M>, ctx: &mut Ctx<'_, M>);
}

/// The default [`World`]: boxed trait objects, one heap allocation per
/// component, dynamic dispatch per delivery.
pub struct BoxWorld<M: 'static> {
    comps: Vec<Box<dyn Component<M>>>,
    names: Vec<String>,
}

impl<M> Default for BoxWorld<M> {
    fn default() -> Self {
        BoxWorld {
            comps: Vec::new(),
            names: Vec::new(),
        }
    }
}

impl<M: 'static> World<M> for BoxWorld<M> {
    fn count(&self) -> usize {
        self.comps.len()
    }
    fn init(&mut self, id: CompId, ctx: &mut Ctx<'_, M>) {
        self.comps[id].init(ctx)
    }
    #[inline]
    fn handle(&mut self, id: CompId, ev: Event<M>, ctx: &mut Ctx<'_, M>) {
        self.comps[id].handle(ev, ctx)
    }
}

/// Why [`Engine::run`] (or a bounded variant) returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// The pending-event set drained completely.
    Drained,
    /// A component called [`Ctx::stop`].
    Stopped,
    /// The time bound of [`Engine::run_until`] was reached.
    TimeLimit,
    /// The event bound of [`Engine::run_events`] was reached.
    EventLimit,
}

/// The discrete-event simulation engine.
///
/// Generic over the message type `M`, so each subsystem (memory model,
/// network model) defines its own closed message enum and gets static
/// dispatch on payload matching, and over the component storage `W` (see
/// [`World`]): [`BoxWorld`] by default, or a model-supplied arena of typed
/// slabs for statically-dispatched hot paths.
pub struct Engine<M: 'static, W: World<M> = BoxWorld<M>> {
    now: Time,
    queue: EventQueue<QueuedEvent<M>>,
    // Dispatch goes through the world. A handler receives `&mut` its own
    // state plus a `Ctx` borrowing `queue`, `stop_requested` and
    // `key_counters` — disjoint fields, so nothing is moved while it runs.
    world: W,
    // Per-component push counters feeding the deterministic tie-break key
    // (see `EventKey`); indexed by component id. `post` consumes the
    // counter of the `src` it is attributed to.
    key_counters: Vec<u64>,
    events_processed: u64,
    stop_requested: bool,
    initialized: bool,
    // Instrumentation hook. `None` (the default) costs one null-check per
    // delivered event; see `crate::probe`.
    probe: Option<Box<dyn EngineProbe>>,
    last_ladder: LadderStats,
}

impl<M: 'static> Default for Engine<M> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<M: 'static> Engine<M> {
    /// Create an engine at time zero with no components.
    pub fn new() -> Self {
        Engine::with_world(BoxWorld::default())
    }

    /// Register a component; returns its id. Ids are dense and assigned in
    /// registration order.
    pub fn add_component<C>(&mut self, name: impl Into<String>, comp: C) -> CompId
    where
        C: Component<M> + 'static,
    {
        let id = self.world.comps.len();
        self.world.comps.push(Box::new(comp));
        self.world.names.push(name.into());
        self.key_counters.push(0);
        id
    }

    /// The registered name of a component.
    pub fn component_name(&self, id: CompId) -> &str {
        &self.world.names[id]
    }

    /// Borrow a component's concrete state (for inspection between runs).
    ///
    /// Returns `None` if the component is not of type `C`.
    pub fn component<C: 'static>(&self, id: CompId) -> Option<&C> {
        let any: &dyn std::any::Any = self.world.comps[id].as_ref();
        any.downcast_ref::<C>()
    }
}

impl<M: 'static, W: World<M>> Engine<M, W> {
    /// Create an engine at time zero over a fully-built world. The
    /// component id space is fixed by `world.count()`.
    pub fn with_world(world: W) -> Self {
        let key_counters = vec![0; world.count()];
        Engine {
            now: Time::ZERO,
            queue: EventQueue::new(),
            world,
            key_counters,
            events_processed: 0,
            stop_requested: false,
            initialized: false,
            probe: None,
            last_ladder: LadderStats::default(),
        }
    }

    /// Borrow the component storage (for inspection between runs).
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutably borrow the component storage.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Number of registered components (the size of the id space).
    pub fn component_count(&self) -> usize {
        self.world.count()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Inject an event from outside the simulation (e.g. the initial
    /// workload). `time` must not be in the past. The event is keyed as if
    /// `src` had scheduled it now (consuming one step of `src`'s push
    /// counter), so posts obey the same deterministic tie order as
    /// component sends.
    pub fn post(&mut self, time: Time, src: CompId, dst: CompId, payload: M) {
        assert!(time >= self.now, "cannot post an event in the past");
        assert!(dst < self.world.count(), "unknown destination component");
        assert!(src < self.world.count(), "unknown source component");
        let seq = self.key_counters[src];
        self.key_counters[src] = seq + 1;
        let key = EventKey {
            push_ps: self.now.as_ps(),
            src: src as u32,
            seq,
        };
        self.queue
            .push_keyed(time, key, QueuedEvent { src, dst, payload });
    }

    /// Inject an event carrying a key allocated elsewhere (by another
    /// shard's [`Ctx::alloc_key`]). `time` must not be in the past. This is
    /// the cross-shard ingress: the event slots into the queue exactly
    /// where the single-threaded run would have placed it.
    pub fn post_keyed(&mut self, time: Time, key: EventKey, src: CompId, dst: CompId, payload: M) {
        assert!(time >= self.now, "cannot post an event in the past");
        assert!(dst < self.world.count(), "unknown destination component");
        self.queue
            .push_keyed(time, key, QueuedEvent { src, dst, payload });
    }

    /// Delivery time of the earliest pending event, if any. Runs component
    /// `init` first if the engine has never run, so the initial workload is
    /// visible.
    pub fn next_event_time(&mut self) -> Option<Time> {
        self.ensure_init();
        self.queue.peek_time()
    }

    /// Run component `init` hooks without delivering any event. Idempotent;
    /// [`Engine::run`] and friends call this implicitly.
    pub fn prime(&mut self) {
        self.ensure_init();
    }

    /// Attach an instrumentation probe (replacing any previous one). The
    /// probe only observes deliveries; it cannot alter the simulation.
    pub fn set_probe(&mut self, probe: Box<dyn EngineProbe>) {
        self.last_ladder = self.queue.ladder_stats();
        self.probe = Some(probe);
    }

    /// Detach the current probe, if any, returning it to the caller.
    pub fn take_probe(&mut self) -> Option<Box<dyn EngineProbe>> {
        self.probe.take()
    }

    /// Ladder-tier transition counters of the underlying event queue.
    pub fn ladder_stats(&self) -> LadderStats {
        self.queue.ladder_stats()
    }

    /// The per-component push counters feeding the deterministic tie-break
    /// key (indexed by component id). Part of the checkpointable engine
    /// state: a restored engine must resume the exact key sequence.
    pub fn key_counters(&self) -> &[u64] {
        &self.key_counters
    }

    /// Non-destructive snapshot of every pending event, sorted by
    /// `(time, key)` — the exact delivery order. Ladder geometry is not
    /// captured (see `EventQueue::snapshot_events`).
    pub fn snapshot_pending(&self) -> Vec<PendingEvent<M>>
    where
        M: Clone,
    {
        self.queue
            .snapshot_events()
            .into_iter()
            .map(|(t, k, qe)| (t, k, qe.src, qe.dst, qe.payload))
            .collect()
    }

    /// Overwrite the engine's dynamic state with a checkpoint: clock,
    /// delivery counter, per-component key counters, and the pending-event
    /// set (each event keeping its original [`EventKey`], so same-instant
    /// ties replay in the checkpointed order).
    ///
    /// Component `init` hooks are marked as already run — the caller is
    /// responsible for overlaying the matching component state onto the
    /// world *without* re-running init (init schedules initial events and
    /// mutates state; the checkpoint already reflects all of that). A
    /// pending event earlier than `now` or addressed outside the id space
    /// panics: that is a corrupt checkpoint, not a recoverable condition.
    pub fn restore(
        &mut self,
        now: Time,
        events_processed: u64,
        key_counters: Vec<u64>,
        events: Vec<PendingEvent<M>>,
    ) {
        assert_eq!(
            key_counters.len(),
            self.world.count(),
            "checkpoint key counters do not match the component id space"
        );
        self.queue.clear();
        self.now = now;
        self.events_processed = events_processed;
        self.key_counters = key_counters;
        self.stop_requested = false;
        self.initialized = true;
        for (t, k, src, dst, payload) in events {
            assert!(
                t >= now,
                "checkpointed event earlier than the checkpoint instant"
            );
            assert!(
                dst < self.world.count(),
                "checkpointed event to unknown component"
            );
            self.queue
                .push_keyed(t, k, QueuedEvent { src, dst, payload });
        }
    }

    /// Notify the attached probe of one delivery (and any ladder-counter
    /// movement since the previous one). Caller has already checked that a
    /// probe is attached.
    fn probe_delivery(&mut self, now: Time, src: CompId, dst: CompId) {
        let pending = self.queue.len();
        let ladder = self.queue.ladder_stats();
        let probe = self.probe.as_mut().expect("probe_delivery without probe");
        if ladder != self.last_ladder {
            self.last_ladder = ladder;
            probe.ladder(now, ladder);
        }
        probe.delivered(now, src, dst, pending);
    }

    /// Run `init` on every component that has not been initialised yet.
    fn ensure_init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for id in 0..self.world.count() {
            let mut ctx = Ctx {
                now: self.now,
                self_id: id,
                queue: &mut self.queue,
                stop_requested: &mut self.stop_requested,
                key_counters: &mut self.key_counters,
            };
            self.world.init(id, &mut ctx);
        }
    }

    /// Deliver exactly one event, if any is pending. Returns `false` when
    /// the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_init();
        let Some((time, qe)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue returned a past event");
        self.now = time;
        self.events_processed += 1;
        if self.probe.is_some() {
            self.probe_delivery(time, qe.src, qe.dst);
        }
        let mut ctx = Ctx {
            now: time,
            self_id: qe.dst,
            queue: &mut self.queue,
            stop_requested: &mut self.stop_requested,
            key_counters: &mut self.key_counters,
        };
        self.world.handle(
            qe.dst,
            Event {
                time,
                src: qe.src,
                dst: qe.dst,
                payload: qe.payload,
            },
            &mut ctx,
        );
        true
    }

    /// Run until the event set drains or a component stops the engine.
    pub fn run(&mut self) -> RunResult {
        self.run_until(Time::MAX)
    }

    /// Run until `deadline` (events *at* the deadline are delivered), the
    /// event set drains, or a component stops the engine.
    ///
    /// A pending stop request — raised during component `init`, or by the
    /// last event of a previous bounded run — is honoured immediately:
    /// the call returns [`RunResult::Stopped`] without delivering any
    /// event. A stop is consumed by the run that reports it, so the next
    /// call resumes normally.
    pub fn run_until(&mut self, deadline: Time) -> RunResult {
        self.run_core(deadline, u64::MAX)
    }

    /// Run at most `max_events` events. Stop handling matches
    /// [`Engine::run_until`].
    pub fn run_events(&mut self, max_events: u64) -> RunResult {
        self.run_core(Time::MAX, max_events)
    }

    /// The batched main loop behind `run_until`/`run_events`.
    ///
    /// Events are delivered strictly in `(time, seq)` order — identical to
    /// repeated [`Engine::step`] — but consecutive events at the same
    /// instant are dispatched in one inner loop, and a run of same-instant
    /// events addressed to the same component reuses a single component
    /// borrow, so the per-event cost is one queue pop plus the handler.
    fn run_core(&mut self, deadline: Time, max_events: u64) -> RunResult {
        self.ensure_init();
        if self.stop_requested {
            // Raised during init (first run) or unobserved by a caller:
            // honour and consume it before delivering anything.
            self.stop_requested = false;
            return RunResult::Stopped;
        }
        if max_events == 0 {
            return RunResult::EventLimit;
        }
        let mut remaining = max_events;
        loop {
            let t = match self.queue.peek_time() {
                None => return RunResult::Drained,
                Some(t) if t > deadline => {
                    self.now = deadline;
                    return RunResult::TimeLimit;
                }
                Some(t) => t,
            };
            self.now = t;
            // Deliver every event at instant `t`, including ones handlers
            // schedule for `t` as we go.
            'instant: loop {
                let mut qe = match self.queue.peek() {
                    Some((tt, _)) if tt == t => self.queue.pop().expect("peeked event vanished").1,
                    _ => break 'instant,
                };
                // A run of same-instant events to one destination shares
                // this component borrow.
                let dst = qe.dst;
                loop {
                    self.events_processed += 1;
                    remaining -= 1;
                    if self.probe.is_some() {
                        self.probe_delivery(t, qe.src, dst);
                    }
                    let mut ctx = Ctx {
                        now: t,
                        self_id: dst,
                        queue: &mut self.queue,
                        stop_requested: &mut self.stop_requested,
                        key_counters: &mut self.key_counters,
                    };
                    self.world.handle(
                        dst,
                        Event {
                            time: t,
                            src: qe.src,
                            dst,
                            payload: qe.payload,
                        },
                        &mut ctx,
                    );
                    if self.stop_requested {
                        self.stop_requested = false;
                        return RunResult::Stopped;
                    }
                    if remaining == 0 {
                        return RunResult::EventLimit;
                    }
                    match self.queue.peek() {
                        Some((tt, e)) if tt == t && e.dst == dst => {
                            qe = self.queue.pop().expect("peeked event vanished").1;
                        }
                        _ => continue 'instant,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Tick,
        Value(u64),
    }

    /// Counts ticks; reschedules itself `n` times.
    struct Ticker {
        period: Duration,
        remaining: u32,
        fired_at: Vec<Time>,
    }

    impl Component<Msg> for Ticker {
        fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if self.remaining > 0 {
                ctx.timer(self.period, Msg::Tick);
            }
        }
        fn handle(&mut self, ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
            assert_eq!(ev.payload, Msg::Tick);
            self.fired_at.push(ctx.now());
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.timer(self.period, Msg::Tick);
            }
        }
    }

    #[test]
    fn timer_fires_periodically() {
        let mut e = Engine::new();
        let id = e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(5),
                remaining: 3,
                fired_at: Vec::new(),
            },
        );
        assert_eq!(e.run(), RunResult::Drained);
        let t = e.component::<Ticker>(id).unwrap();
        assert_eq!(
            t.fired_at,
            vec![
                Time::from_ps(5_000),
                Time::from_ps(10_000),
                Time::from_ps(15_000)
            ]
        );
        assert_eq!(e.events_processed(), 3);
    }

    /// Schedules itself at fixed *absolute* instants via `send_at`.
    struct AbsoluteScheduler {
        at: Vec<Time>,
        fired_at: Vec<Time>,
    }

    impl Component<Msg> for AbsoluteScheduler {
        fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
            let me = ctx.self_id();
            for &t in &self.at {
                ctx.send_at(t, me, Msg::Tick);
            }
        }
        fn handle(&mut self, ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
            assert_eq!(ev.payload, Msg::Tick);
            self.fired_at.push(ctx.now());
        }
    }

    #[test]
    fn send_at_delivers_at_exact_absolute_instants() {
        // Posted out of order at init time; delivery order is by instant,
        // FIFO within an instant (two events land at 7 ns).
        let mut e = Engine::new();
        let id = e.add_component(
            "abs",
            AbsoluteScheduler {
                at: vec![
                    Time::from_ns(7),
                    Time::from_ns(3),
                    Time::from_ns(7),
                    Time::ZERO,
                ],
                fired_at: Vec::new(),
            },
        );
        assert_eq!(e.run(), RunResult::Drained);
        let c = e.component::<AbsoluteScheduler>(id).unwrap();
        assert_eq!(
            c.fired_at,
            vec![
                Time::ZERO,
                Time::from_ns(3),
                Time::from_ns(7),
                Time::from_ns(7)
            ]
        );
    }

    /// Fires once, then tries to schedule into the past.
    struct PastScheduler;

    impl Component<Msg> for PastScheduler {
        fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.timer(Duration::from_ns(5), Msg::Tick);
        }
        fn handle(&mut self, _ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
            let me = ctx.self_id();
            ctx.send_at(Time::from_ns(1), me, Msg::Tick); // now is 5 ns
        }
    }

    #[test]
    #[should_panic(expected = "past")]
    fn send_at_rejects_instants_in_the_past() {
        let mut e = Engine::new();
        e.add_component("past", PastScheduler);
        e.run();
    }

    struct Forwarder {
        next: CompId,
        hop_delay: Duration,
        received: Vec<u64>,
    }

    impl Component<Msg> for Forwarder {
        fn handle(&mut self, ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Value(v) = ev.payload {
                self.received.push(v);
                if v > 0 {
                    ctx.send_after(self.hop_delay, self.next, Msg::Value(v - 1));
                }
            }
        }
    }

    #[test]
    fn ring_of_forwarders_decrements_to_zero() {
        let mut e = Engine::new();
        let n = 4;
        let ids: Vec<CompId> = (0..n)
            .map(|i| {
                e.add_component(
                    format!("f{i}"),
                    Forwarder {
                        next: (i + 1) % n,
                        hop_delay: Duration::from_ns(1),
                        received: Vec::new(),
                    },
                )
            })
            .collect();
        e.post(Time::ZERO, ids[0], ids[0], Msg::Value(9));
        assert_eq!(e.run(), RunResult::Drained);
        // 10 deliveries total (values 9..=0), spread round the ring.
        assert_eq!(e.events_processed(), 10);
        assert_eq!(e.now(), Time::from_ps(9_000));
        let f0 = e.component::<Forwarder>(ids[0]).unwrap();
        assert_eq!(f0.received, vec![9, 5, 1]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = Engine::new();
        e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(10),
                remaining: 100,
                fired_at: Vec::new(),
            },
        );
        assert_eq!(e.run_until(Time::from_ps(35_000)), RunResult::TimeLimit);
        assert_eq!(e.events_processed(), 3);
        assert_eq!(e.now(), Time::from_ps(35_000));
        // Resume to completion.
        assert_eq!(e.run(), RunResult::Drained);
        assert_eq!(e.events_processed(), 100);
    }

    #[test]
    fn run_events_bounds_work() {
        let mut e = Engine::new();
        e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(1),
                remaining: 50,
                fired_at: Vec::new(),
            },
        );
        assert_eq!(e.run_events(20), RunResult::EventLimit);
        assert_eq!(e.events_processed(), 20);
        assert_eq!(e.run_events(1_000), RunResult::Drained);
        assert_eq!(e.events_processed(), 50);
    }

    struct Stopper;
    impl Component<Msg> for Stopper {
        fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.timer(Duration::from_ns(1), Msg::Tick);
        }
        fn handle(&mut self, _ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
            ctx.stop();
        }
    }

    #[test]
    fn stop_halts_the_engine() {
        let mut e = Engine::new();
        e.add_component("s", Stopper);
        e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(1),
                remaining: 1000,
                fired_at: Vec::new(),
            },
        );
        assert_eq!(e.run(), RunResult::Stopped);
        assert!(e.events_processed() < 1000);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn posting_in_the_past_panics() {
        let mut e: Engine<Msg> = Engine::new();
        let id = e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(1),
                remaining: 1,
                fired_at: Vec::new(),
            },
        );
        e.run();
        e.post(Time::ZERO, id, id, Msg::Tick);
    }

    #[test]
    fn component_names_are_kept() {
        let mut e: Engine<Msg> = Engine::new();
        let id = e.add_component("alpha", Stopper);
        assert_eq!(e.component_name(id), "alpha");
        assert_eq!(e.component_count(), 1);
    }

    /// A stop raised during component `init` used to be silently cleared
    /// by the reset-on-entry in `run_until`/`run_events`; it must instead
    /// stop the first run before any event is delivered.
    #[test]
    fn stop_during_init_halts_before_any_event() {
        struct InitStopper;
        impl Component<Msg> for InitStopper {
            fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.timer(Duration::from_ns(1), Msg::Tick);
                ctx.stop();
            }
            fn handle(&mut self, _ev: Event<Msg>, _ctx: &mut Ctx<'_, Msg>) {}
        }
        let mut e = Engine::new();
        e.add_component("s", InitStopper);
        assert_eq!(e.run(), RunResult::Stopped);
        assert_eq!(e.events_processed(), 0);
        // The stop is consumed by the run that reported it; the next run
        // proceeds normally and drains the timer scheduled in init.
        assert_eq!(e.run(), RunResult::Drained);
        assert_eq!(e.events_processed(), 1);
    }

    /// Same guarantee through the bounded entry points.
    #[test]
    fn stop_during_init_halts_bounded_runs() {
        struct InitStopper;
        impl Component<Msg> for InitStopper {
            fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.timer(Duration::from_ns(1), Msg::Tick);
                ctx.stop();
            }
            fn handle(&mut self, _ev: Event<Msg>, _ctx: &mut Ctx<'_, Msg>) {}
        }
        let mut e = Engine::new();
        e.add_component("s", InitStopper);
        assert_eq!(e.run_events(10), RunResult::Stopped);
        assert_eq!(e.events_processed(), 0);
        assert_eq!(e.run_events(10), RunResult::Drained);
        assert_eq!(e.events_processed(), 1);
    }

    #[test]
    fn run_events_zero_is_a_noop_event_limit() {
        let mut e = Engine::new();
        e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(1),
                remaining: 5,
                fired_at: Vec::new(),
            },
        );
        assert_eq!(e.run_events(0), RunResult::EventLimit);
        assert_eq!(e.events_processed(), 0);
    }

    /// An attached probe sees one `delivered` call per event, in delivery
    /// order, and observing does not change what the simulation computes.
    #[test]
    fn probe_sees_every_delivery_without_perturbing_the_run() {
        use crate::probe::{EngineProbe, LadderStats};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Recorder {
            deliveries: Vec<(Time, CompId, CompId, usize)>,
            ladder_calls: u64,
        }
        struct Fwd(Rc<RefCell<Recorder>>);
        impl EngineProbe for Fwd {
            fn delivered(&mut self, now: Time, src: CompId, dst: CompId, pending: usize) {
                self.0
                    .borrow_mut()
                    .deliveries
                    .push((now, src, dst, pending));
            }
            fn ladder(&mut self, _now: Time, _stats: LadderStats) {
                self.0.borrow_mut().ladder_calls += 1;
            }
        }

        let build = || {
            let mut e = Engine::new();
            let n = 4;
            let ids: Vec<CompId> = (0..n)
                .map(|i| {
                    e.add_component(
                        format!("f{i}"),
                        Forwarder {
                            next: (i + 1) % n,
                            hop_delay: Duration::from_ns(1),
                            received: Vec::new(),
                        },
                    )
                })
                .collect();
            e.post(Time::ZERO, ids[0], ids[0], Msg::Value(9));
            e
        };

        let mut plain = build();
        plain.run();

        let rec = Rc::new(RefCell::new(Recorder::default()));
        let mut probed = build();
        probed.set_probe(Box::new(Fwd(Rc::clone(&rec))));
        probed.run();

        assert_eq!(probed.now(), plain.now());
        assert_eq!(probed.events_processed(), plain.events_processed());
        assert_eq!(
            probed.component::<Forwarder>(0).unwrap().received,
            plain.component::<Forwarder>(0).unwrap().received,
        );
        let rec = rec.borrow();
        assert_eq!(rec.deliveries.len() as u64, probed.events_processed());
        // Deliveries arrive in nondecreasing time order.
        assert!(rec.deliveries.windows(2).all(|w| w[0].0 <= w[1].0));
        // Detaching returns the probe and restores the unprobed path.
        assert!(probed.take_probe().is_some());
        assert!(probed.take_probe().is_none());
    }

    #[test]
    fn same_instant_events_deliver_in_schedule_order() {
        struct Recorder {
            seen: Vec<u64>,
        }
        impl Component<Msg> for Recorder {
            fn handle(&mut self, ev: Event<Msg>, _ctx: &mut Ctx<'_, Msg>) {
                if let Msg::Value(v) = ev.payload {
                    self.seen.push(v);
                }
            }
        }
        let mut e = Engine::new();
        let id = e.add_component("r", Recorder { seen: Vec::new() });
        for v in 0..10 {
            e.post(Time::from_ps(42), id, id, Msg::Value(v));
        }
        e.run();
        let r = e.component::<Recorder>(id).unwrap();
        assert_eq!(r.seen, (0..10).collect::<Vec<_>>());
    }
}
