//! The discrete-event engine: components, events, and the main loop.

use crate::queue::EventQueue;
use crate::time::{Duration, Time};

/// Identifies a component registered with an [`Engine`].
pub type CompId = usize;

/// A timestamped message between two components.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Virtual time at which the event is delivered.
    pub time: Time,
    /// Component that scheduled the event (== `dst` for self-scheduled
    /// timers).
    pub src: CompId,
    /// Component the event is delivered to.
    pub dst: CompId,
    /// Model-defined message payload.
    pub payload: M,
}

/// A simulation object (a Pearl "object"): receives events addressed to it
/// and reacts by mutating its state and scheduling further events.
///
/// `Any` is a supertrait so that concrete component state can be inspected
/// after a run via [`Engine::component`].
pub trait Component<M>: std::any::Any {
    /// Handle one event delivered to this component.
    fn handle(&mut self, ev: Event<M>, ctx: &mut Ctx<'_, M>);

    /// Called once before the simulation starts; schedule initial activity
    /// here. The default does nothing.
    fn init(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

/// The engine-side API handed to a component while it runs.
///
/// All scheduling is relative to the current virtual time; an event may not
/// be scheduled in the past (zero delay is allowed and is delivered after
/// all events already pending at the current instant).
pub struct Ctx<'e, M> {
    now: Time,
    self_id: CompId,
    queue: &'e mut EventQueue<QueuedEvent<M>>,
    stop_requested: &'e mut bool,
}

struct QueuedEvent<M> {
    src: CompId,
    dst: CompId,
    payload: M,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component currently executing.
    #[inline]
    pub fn self_id(&self) -> CompId {
        self.self_id
    }

    /// Send `payload` to `dst`, delivered after `delay`.
    #[inline]
    pub fn send_after(&mut self, delay: Duration, dst: CompId, payload: M) {
        let src = self.self_id;
        self.queue.push(
            self.now + delay,
            QueuedEvent { src, dst, payload },
        );
    }

    /// Send `payload` to `dst` at the current instant (after events already
    /// pending now).
    #[inline]
    pub fn send_now(&mut self, dst: CompId, payload: M) {
        self.send_after(Duration::ZERO, dst, payload);
    }

    /// Schedule a message to *this* component after `delay` — a timer.
    #[inline]
    pub fn timer(&mut self, delay: Duration, payload: M) {
        let me = self.self_id;
        self.send_after(delay, me, payload);
    }

    /// Ask the engine to stop after the current event completes.
    #[inline]
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// Why [`Engine::run`] (or a bounded variant) returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// The pending-event set drained completely.
    Drained,
    /// A component called [`Ctx::stop`].
    Stopped,
    /// The time bound of [`Engine::run_until`] was reached.
    TimeLimit,
    /// The event bound of [`Engine::run_events`] was reached.
    EventLimit,
}

/// The discrete-event simulation engine.
///
/// Generic over the message type `M`, so each subsystem (memory model,
/// network model) defines its own closed message enum and gets static
/// dispatch on payload matching while components are dynamically dispatched.
pub struct Engine<M: 'static> {
    now: Time,
    queue: EventQueue<QueuedEvent<M>>,
    // `Option` so a component can be moved out while its handler runs
    // (allowing the handler to schedule events through `Ctx` without
    // aliasing the component storage).
    components: Vec<Option<Box<dyn Component<M>>>>,
    names: Vec<String>,
    events_processed: u64,
    stop_requested: bool,
    initialized: bool,
}

impl<M: 'static> Default for Engine<M> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<M: 'static> Engine<M> {
    /// Create an engine at time zero with no components.
    pub fn new() -> Self {
        Engine {
            now: Time::ZERO,
            queue: EventQueue::new(),
            components: Vec::new(),
            names: Vec::new(),
            events_processed: 0,
            stop_requested: false,
            initialized: false,
        }
    }

    /// Register a component; returns its id. Ids are dense and assigned in
    /// registration order.
    pub fn add_component<C>(&mut self, name: impl Into<String>, comp: C) -> CompId
    where
        C: Component<M> + 'static,
    {
        let id = self.components.len();
        self.components.push(Some(Box::new(comp)));
        self.names.push(name.into());
        id
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The registered name of a component.
    pub fn component_name(&self, id: CompId) -> &str {
        &self.names[id]
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Inject an event from outside the simulation (e.g. the initial
    /// workload). `time` must not be in the past.
    pub fn post(&mut self, time: Time, src: CompId, dst: CompId, payload: M) {
        assert!(time >= self.now, "cannot post an event in the past");
        assert!(dst < self.components.len(), "unknown destination component");
        self.queue.push(time, QueuedEvent { src, dst, payload });
    }

    /// Borrow a component's concrete state (for inspection between runs).
    ///
    /// Returns `None` if the component is not of type `C`.
    pub fn component<C: 'static>(&self, id: CompId) -> Option<&C> {
        self.components[id].as_ref().and_then(|b| {
            let any: &dyn std::any::Any = b.as_ref();
            any.downcast_ref::<C>()
        })
    }

    /// Run `init` on every component that has not been initialised yet.
    fn ensure_init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for id in 0..self.components.len() {
            let mut comp = self.components[id].take().expect("component vanished");
            let mut ctx = Ctx {
                now: self.now,
                self_id: id,
                queue: &mut self.queue,
                stop_requested: &mut self.stop_requested,
            };
            comp.init(&mut ctx);
            self.components[id] = Some(comp);
        }
    }

    /// Deliver exactly one event, if any is pending. Returns `false` when
    /// the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_init();
        let Some((time, qe)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue returned a past event");
        self.now = time;
        self.events_processed += 1;
        let mut comp = self.components[qe.dst]
            .take()
            .unwrap_or_else(|| panic!("component {} re-entered", qe.dst));
        let mut ctx = Ctx {
            now: self.now,
            self_id: qe.dst,
            queue: &mut self.queue,
            stop_requested: &mut self.stop_requested,
        };
        comp.handle(
            Event {
                time,
                src: qe.src,
                dst: qe.dst,
                payload: qe.payload,
            },
            &mut ctx,
        );
        self.components[qe.dst] = Some(comp);
        true
    }

    /// Run until the event set drains or a component stops the engine.
    pub fn run(&mut self) -> RunResult {
        self.run_until(Time::MAX)
    }

    /// Run until `deadline` (events *at* the deadline are delivered), the
    /// event set drains, or a component stops the engine.
    pub fn run_until(&mut self, deadline: Time) -> RunResult {
        self.ensure_init();
        self.stop_requested = false;
        loop {
            match self.queue.peek_time() {
                None => return RunResult::Drained,
                Some(t) if t > deadline => {
                    self.now = deadline;
                    return RunResult::TimeLimit;
                }
                Some(_) => {}
            }
            self.step();
            if self.stop_requested {
                return RunResult::Stopped;
            }
        }
    }

    /// Run at most `max_events` events.
    pub fn run_events(&mut self, max_events: u64) -> RunResult {
        self.ensure_init();
        self.stop_requested = false;
        for _ in 0..max_events {
            if !self.step() {
                return RunResult::Drained;
            }
            if self.stop_requested {
                return RunResult::Stopped;
            }
        }
        RunResult::EventLimit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Tick,
        Value(u64),
    }

    /// Counts ticks; reschedules itself `n` times.
    struct Ticker {
        period: Duration,
        remaining: u32,
        fired_at: Vec<Time>,
    }

    impl Component<Msg> for Ticker {
        fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if self.remaining > 0 {
                ctx.timer(self.period, Msg::Tick);
            }
        }
        fn handle(&mut self, ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
            assert_eq!(ev.payload, Msg::Tick);
            self.fired_at.push(ctx.now());
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.timer(self.period, Msg::Tick);
            }
        }
    }

    #[test]
    fn timer_fires_periodically() {
        let mut e = Engine::new();
        let id = e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(5),
                remaining: 3,
                fired_at: Vec::new(),
            },
        );
        assert_eq!(e.run(), RunResult::Drained);
        let t = e.component::<Ticker>(id).unwrap();
        assert_eq!(
            t.fired_at,
            vec![
                Time::from_ps(5_000),
                Time::from_ps(10_000),
                Time::from_ps(15_000)
            ]
        );
        assert_eq!(e.events_processed(), 3);
    }

    struct Forwarder {
        next: CompId,
        hop_delay: Duration,
        received: Vec<u64>,
    }

    impl Component<Msg> for Forwarder {
        fn handle(&mut self, ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Value(v) = ev.payload {
                self.received.push(v);
                if v > 0 {
                    ctx.send_after(self.hop_delay, self.next, Msg::Value(v - 1));
                }
            }
        }
    }

    #[test]
    fn ring_of_forwarders_decrements_to_zero() {
        let mut e = Engine::new();
        let n = 4;
        let ids: Vec<CompId> = (0..n)
            .map(|i| {
                e.add_component(
                    format!("f{i}"),
                    Forwarder {
                        next: (i + 1) % n,
                        hop_delay: Duration::from_ns(1),
                        received: Vec::new(),
                    },
                )
            })
            .collect();
        e.post(Time::ZERO, ids[0], ids[0], Msg::Value(9));
        assert_eq!(e.run(), RunResult::Drained);
        // 10 deliveries total (values 9..=0), spread round the ring.
        assert_eq!(e.events_processed(), 10);
        assert_eq!(e.now(), Time::from_ps(9_000));
        let f0 = e.component::<Forwarder>(ids[0]).unwrap();
        assert_eq!(f0.received, vec![9, 5, 1]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = Engine::new();
        e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(10),
                remaining: 100,
                fired_at: Vec::new(),
            },
        );
        assert_eq!(e.run_until(Time::from_ps(35_000)), RunResult::TimeLimit);
        assert_eq!(e.events_processed(), 3);
        assert_eq!(e.now(), Time::from_ps(35_000));
        // Resume to completion.
        assert_eq!(e.run(), RunResult::Drained);
        assert_eq!(e.events_processed(), 100);
    }

    #[test]
    fn run_events_bounds_work() {
        let mut e = Engine::new();
        e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(1),
                remaining: 50,
                fired_at: Vec::new(),
            },
        );
        assert_eq!(e.run_events(20), RunResult::EventLimit);
        assert_eq!(e.events_processed(), 20);
        assert_eq!(e.run_events(1_000), RunResult::Drained);
        assert_eq!(e.events_processed(), 50);
    }

    struct Stopper;
    impl Component<Msg> for Stopper {
        fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.timer(Duration::from_ns(1), Msg::Tick);
        }
        fn handle(&mut self, _ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
            ctx.stop();
        }
    }

    #[test]
    fn stop_halts_the_engine() {
        let mut e = Engine::new();
        e.add_component("s", Stopper);
        e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(1),
                remaining: 1000,
                fired_at: Vec::new(),
            },
        );
        assert_eq!(e.run(), RunResult::Stopped);
        assert!(e.events_processed() < 1000);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn posting_in_the_past_panics() {
        let mut e: Engine<Msg> = Engine::new();
        let id = e.add_component(
            "ticker",
            Ticker {
                period: Duration::from_ns(1),
                remaining: 1,
                fired_at: Vec::new(),
            },
        );
        e.run();
        e.post(Time::ZERO, id, id, Msg::Tick);
    }

    #[test]
    fn component_names_are_kept() {
        let mut e: Engine<Msg> = Engine::new();
        let id = e.add_component("alpha", Stopper);
        assert_eq!(e.component_name(id), "alpha");
        assert_eq!(e.component_count(), 1);
    }

    #[test]
    fn same_instant_events_deliver_in_schedule_order() {
        struct Recorder {
            seen: Vec<u64>,
        }
        impl Component<Msg> for Recorder {
            fn handle(&mut self, ev: Event<Msg>, _ctx: &mut Ctx<'_, Msg>) {
                if let Msg::Value(v) = ev.payload {
                    self.seen.push(v);
                }
            }
        }
        let mut e = Engine::new();
        let id = e.add_component("r", Recorder { seen: Vec::new() });
        for v in 0..10 {
            e.post(Time::from_ps(42), id, id, Msg::Value(v));
        }
        e.run();
        let r = e.component::<Recorder>(id).unwrap();
        assert_eq!(r.seen, (0..10).collect::<Vec<_>>());
    }
}
