//! Engine-side instrumentation hooks.
//!
//! The kernel stays free of any policy about *what* to record: it only
//! offers an object-safe [`EngineProbe`] trait that an observer crate can
//! implement, plus ladder-tier transition counters maintained by
//! [`crate::EventQueue`]. An [`crate::Engine`] without a probe attached
//! pays exactly one `Option` null-check per delivered event (verified by
//! the workspace's `probe_overhead` benchmark); the counters themselves
//! are plain integer increments on the queue's *cold* paths (bucket
//! promotion, rebase, far-drain), never per push or pop.

use crate::engine::CompId;
use crate::time::Time;

/// Monotone counters for ladder-tier transitions inside
/// [`crate::EventQueue`] (see the queue module docs for the tier model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LadderStats {
    /// Buckets promoted wholesale into the current-window heap.
    pub promotions: u64,
    /// Epoch rebases sourced from the far heap.
    pub rebases: u64,
    /// Plain-heap fallback drains of a small far set.
    pub far_drains: u64,
}

impl LadderStats {
    /// Total tier transitions of any kind.
    pub fn total(&self) -> u64 {
        self.promotions + self.rebases + self.far_drains
    }
}

/// Hooks invoked by the engine's delivery loop when a probe is attached.
///
/// Implementations must not assume anything about call frequency beyond:
/// `delivered` fires once per delivered event, *before* the component
/// handler runs; `ladder` fires only when the queue's [`LadderStats`]
/// changed since the previous delivery (so quiet queues cost nothing).
///
/// A probe observes the simulation; it has no channel back into it, so
/// attaching one cannot perturb virtual-time behaviour.
pub trait EngineProbe {
    /// An event is about to be delivered to `dst` at virtual time `now`.
    /// `pending` is the number of events still queued after the pop.
    fn delivered(&mut self, now: Time, src: CompId, dst: CompId, pending: usize);

    /// The queue's ladder counters moved since the last delivery.
    fn ladder(&mut self, now: Time, stats: LadderStats);
}
