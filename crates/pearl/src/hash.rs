//! A fast, non-cryptographic hasher for simulation-internal maps.
//!
//! The std `HashMap` defaults to SipHash-1-3, which is DoS-resistant but
//! costs tens of cycles per small key. Simulation state keyed by dense ids
//! and message ids (`NodeId`, `MsgId`) never hashes attacker-controlled
//! data, so the hot path uses this multiply-rotate hasher instead — the
//! same design class as FxHash: one rotate, one xor, one multiply per
//! word.
//!
//! Determinism note: unlike SipHash, the hash is *stable across runs and
//! processes* (no random seed). None of the maps built on this are
//! iterated into user-visible output, but stability means even accidental
//! iteration cannot introduce run-to-run divergence.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier with good bit dispersion (the golden-ratio constant
/// familiar from Fibonacci hashing, forced odd).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// A word-at-a-time multiplicative hasher. Not DoS-resistant; use only
/// for keys the simulation itself generates.
#[derive(Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low-entropy keys (small sequential ids)
        // still spread across the table's high bits.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(K);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with the fast hasher.
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_small_keys() {
        let mut m: FastHashMap<u32, u64> = FastHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, u64::from(i) * 3);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(u64::from(i) * 3)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_distinguishes_composite_keys() {
        let mut s: FastHashSet<(u32, u64)> = FastHashSet::default();
        for a in 0..50u32 {
            for b in 0..50u64 {
                assert!(s.insert((a, b)));
            }
        }
        assert_eq!(s.len(), 2500);
        assert!(s.contains(&(49, 49)));
        assert!(!s.contains(&(50, 0)));
    }

    #[test]
    fn hash_is_stable_across_hasher_instances() {
        let h = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn sequential_ids_spread_across_buckets() {
        // The avalanche must keep dense ids from colliding in low bits:
        // count distinct values of the bottom 7 bits over 128 sequential
        // keys — a degenerate hasher would map them all to a few buckets.
        let mut seen = HashSet::new();
        for i in 0..128u64 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            seen.insert(h.finish() & 0x7f);
        }
        assert!(seen.len() > 64, "only {} distinct buckets", seen.len());
    }
}
