//! Pearl-style synchronous messaging helpers.
//!
//! The kernel itself is purely asynchronous (timestamped one-way events).
//! Pearl models, however, frequently use *synchronous* (rendezvous)
//! communication: a sender blocks until the matching receiver arrives, and
//! vice versa. These helpers implement the bookkeeping for that pattern on
//! top of the event kernel; the architecture models use them to implement
//! blocking `send`/`recv` message passing and request/reply transactions.

use crate::hash::FastHashMap;
use std::collections::VecDeque;
use std::hash::Hash;

/// Generates unique correlation tokens for request/reply transactions.
#[derive(Debug, Default, Clone)]
pub struct TokenGen {
    next: u64,
}

impl TokenGen {
    /// A fresh generator starting at token 0.
    pub fn new() -> Self {
        TokenGen::default()
    }

    /// Produce the next unique token.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let t = self.next;
        self.next += 1;
        t
    }
}

/// A two-sided matcher for rendezvous communication.
///
/// One side posts *arrivals* (e.g. messages that reached a node), the other
/// posts *waiters* (e.g. `recv` operations blocked on a source). Whichever
/// side shows up first is queued; when the opposite side appears it is
/// matched FIFO. The key `K` identifies the rendezvous channel (for
/// message-passing: `(source, tag)` or just `source`).
#[derive(Debug)]
pub struct MatchBox<K, A, W> {
    arrivals: FastHashMap<K, VecDeque<A>>,
    waiters: FastHashMap<K, VecDeque<W>>,
}

impl<K: Eq + Hash + Clone, A, W> Default for MatchBox<K, A, W> {
    fn default() -> Self {
        MatchBox::new()
    }
}

impl<K: Eq + Hash + Clone, A, W> MatchBox<K, A, W> {
    /// An empty matcher.
    pub fn new() -> Self {
        MatchBox {
            arrivals: FastHashMap::default(),
            waiters: FastHashMap::default(),
        }
    }

    /// Post an arrival on channel `k`. If a waiter is queued, it is removed
    /// and returned (the rendezvous completes); otherwise the arrival is
    /// queued and `None` is returned.
    pub fn arrive(&mut self, k: K, a: A) -> Option<W> {
        if let Some(q) = self.waiters.get_mut(&k) {
            if let Some(w) = q.pop_front() {
                if q.is_empty() {
                    self.waiters.remove(&k);
                }
                return Some(w);
            }
        }
        self.arrivals.entry(k).or_default().push_back(a);
        None
    }

    /// Post a waiter on channel `k`. If an arrival is queued, it is removed
    /// and returned; otherwise the waiter is queued and `None` is returned.
    pub fn wait(&mut self, k: K, w: W) -> Option<A> {
        if let Some(q) = self.arrivals.get_mut(&k) {
            if let Some(a) = q.pop_front() {
                if q.is_empty() {
                    self.arrivals.remove(&k);
                }
                return Some(a);
            }
        }
        self.waiters.entry(k).or_default().push_back(w);
        None
    }

    /// Remove and return the oldest queued arrival on channel `k` without
    /// posting a waiter (a non-blocking poll).
    pub fn take_arrival(&mut self, k: &K) -> Option<A> {
        let q = self.arrivals.get_mut(k)?;
        let a = q.pop_front();
        if q.is_empty() {
            self.arrivals.remove(k);
        }
        a
    }

    /// True when at least one waiter is queued on channel `k`.
    pub fn has_waiter(&self, k: &K) -> bool {
        self.waiters.get(k).is_some_and(|q| !q.is_empty())
    }

    /// Number of queued (unmatched) arrivals across all channels.
    pub fn pending_arrivals(&self) -> usize {
        self.arrivals.values().map(VecDeque::len).sum()
    }

    /// Number of queued (unmatched) waiters across all channels.
    pub fn pending_waiters(&self) -> usize {
        self.waiters.values().map(VecDeque::len).sum()
    }

    /// True when nothing is queued on either side.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty() && self.waiters.is_empty()
    }

    /// Iterate over every channel with queued (unmatched) arrivals, each
    /// with its FIFO queue front-to-back. Iteration order is the hash
    /// map's — callers needing determinism (checkpointing) must sort.
    pub fn arrivals(&self) -> impl Iterator<Item = (&K, impl Iterator<Item = &A>)> {
        self.arrivals.iter().map(|(k, q)| (k, q.iter()))
    }

    /// Iterate over every channel with queued (unmatched) waiters, each
    /// with its FIFO queue front-to-back (same ordering caveat as
    /// [`MatchBox::arrivals`]).
    pub fn waiters(&self) -> impl Iterator<Item = (&K, impl Iterator<Item = &W>)> {
        self.waiters.iter().map(|(k, q)| (k, q.iter()))
    }
}

/// Outstanding request/reply transactions keyed by correlation token.
///
/// A component that issues a request stores its continuation state here and
/// retrieves it when the reply event carries the token back.
#[derive(Debug)]
pub struct Pending<V> {
    tokens: TokenGen,
    inflight: FastHashMap<u64, V>,
}

impl<V> Default for Pending<V> {
    fn default() -> Self {
        Pending::new()
    }
}

impl<V> Pending<V> {
    /// An empty transaction table.
    pub fn new() -> Self {
        Pending {
            tokens: TokenGen::new(),
            inflight: FastHashMap::default(),
        }
    }

    /// Record a new outstanding transaction; returns its token.
    pub fn issue(&mut self, state: V) -> u64 {
        let t = self.tokens.next();
        self.inflight.insert(t, state);
        t
    }

    /// Complete the transaction `token`, returning its stored state.
    ///
    /// Returns `None` if the token is unknown — a duplicate reply, or a
    /// reply arriving after the requester timed out and gave up. Both are
    /// legal under lossy transports (a retry can race its own late ack),
    /// so the caller decides whether an unknown token is a protocol error
    /// or simply ignorable; a table helper must not crash the simulation.
    #[must_use = "an unknown token may be a protocol error the model should handle"]
    pub fn complete(&mut self, token: u64) -> Option<V> {
        self.inflight.remove(&token)
    }

    /// Peek at an outstanding transaction's state.
    pub fn get(&self, token: u64) -> Option<&V> {
        self.inflight.get(&token)
    }

    /// Number of outstanding transactions.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// True when no transactions are outstanding.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_unique_and_increasing() {
        let mut g = TokenGen::new();
        assert_eq!(g.next(), 0);
        assert_eq!(g.next(), 1);
        assert_eq!(g.next(), 2);
    }

    #[test]
    fn arrival_first_then_waiter() {
        let mut m: MatchBox<u32, &str, &str> = MatchBox::new();
        assert_eq!(m.arrive(7, "msg"), None);
        assert_eq!(m.pending_arrivals(), 1);
        assert_eq!(m.wait(7, "recv"), Some("msg"));
        assert!(m.is_empty());
    }

    #[test]
    fn waiter_first_then_arrival() {
        let mut m: MatchBox<u32, &str, &str> = MatchBox::new();
        assert_eq!(m.wait(3, "recv"), None);
        assert_eq!(m.pending_waiters(), 1);
        assert_eq!(m.arrive(3, "msg"), Some("recv"));
        assert!(m.is_empty());
    }

    #[test]
    fn matching_is_fifo_per_channel() {
        let mut m: MatchBox<u32, u32, u32> = MatchBox::new();
        m.arrive(1, 10);
        m.arrive(1, 11);
        m.arrive(2, 20);
        assert_eq!(m.wait(1, 0), Some(10));
        assert_eq!(m.wait(1, 0), Some(11));
        assert_eq!(m.wait(2, 0), Some(20));
        assert_eq!(m.wait(1, 99), None);
        assert_eq!(m.pending_waiters(), 1);
    }

    #[test]
    fn channels_are_independent() {
        let mut m: MatchBox<(u32, u32), &str, &str> = MatchBox::new();
        m.arrive((0, 1), "a");
        assert_eq!(m.wait((1, 0), "w"), None);
        assert_eq!(m.pending_arrivals(), 1);
        assert_eq!(m.pending_waiters(), 1);
    }

    #[test]
    fn take_arrival_polls_without_blocking() {
        let mut m: MatchBox<u32, &str, &str> = MatchBox::new();
        assert_eq!(m.take_arrival(&1), None);
        assert!(m.is_empty(), "polling must not register a waiter");
        m.arrive(1, "a");
        m.arrive(1, "b");
        assert_eq!(m.take_arrival(&1), Some("a"));
        assert_eq!(m.take_arrival(&1), Some("b"));
        assert_eq!(m.take_arrival(&1), None);
    }

    #[test]
    fn has_waiter_tracks_queued_waiters() {
        let mut m: MatchBox<u32, &str, &str> = MatchBox::new();
        assert!(!m.has_waiter(&1));
        m.wait(1, "w");
        assert!(m.has_waiter(&1));
        m.arrive(1, "a");
        assert!(!m.has_waiter(&1));
    }

    #[test]
    fn pending_issue_complete_roundtrip() {
        let mut p: Pending<String> = Pending::new();
        let t1 = p.issue("first".into());
        let t2 = p.issue("second".into());
        assert_ne!(t1, t2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(t1).map(String::as_str), Some("first"));
        assert_eq!(p.complete(t2).as_deref(), Some("second"));
        assert_eq!(p.complete(t1).as_deref(), Some("first"));
        assert!(p.is_empty());
    }

    /// A duplicate or post-timeout reply used to panic the whole
    /// simulation; it must instead surface as `None` so the model can
    /// treat it as a protocol error (or ignore a late re-ack).
    #[test]
    fn completing_unknown_token_returns_none() {
        let mut p: Pending<&str> = Pending::new();
        assert_eq!(p.complete(42), None, "never-issued token");
        let t = p.issue("state");
        assert_eq!(p.complete(t), Some("state"));
        assert_eq!(p.complete(t), None, "duplicate reply for the same token");
        assert!(p.is_empty());
    }
}
