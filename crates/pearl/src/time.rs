//! Virtual time for the simulation kernel.
//!
//! Time is measured in integer **picoseconds**. Architecture models usually
//! reason in clock cycles; [`Frequency`] converts between the two. Integer
//! picoseconds give an exact representation for every clock in the range of
//! interest (1 cycle at 1 GHz = 1000 ps, at 30 MHz = 33 333 ps) and a
//! simulated horizon of ~5 months before `u64` overflow, far beyond any
//! architecture-simulation run.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant in virtual time (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(u64);

/// A span of virtual time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(u64);

/// A clock frequency, used to convert cycle counts to durations and back.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Frequency {
    hz: u64,
}

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_S: u64 = 1_000_000_000_000;

impl Time {
    /// The start of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as an "infinity" sentinel).
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Construct from nanoseconds since simulation start.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * PS_PER_NS)
    }

    /// Construct from microseconds since simulation start.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * PS_PER_US)
    }

    /// Construct from milliseconds since simulation start.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * PS_PER_MS)
    }

    /// Raw picosecond value.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Elapsed duration since `earlier`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("Time::since: argument is later than self"),
        )
    }

    /// Saturating version of [`Time::since`]: zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Time as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Duration {
        Duration(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Duration {
        Duration(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Duration {
        Duration(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Duration {
        Duration(ms * PS_PER_MS)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * PS_PER_S)
    }

    /// Raw picosecond value.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Duration as fractional nanoseconds (for reporting only).
    #[inline]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Frequency {
    /// Construct from hertz. Panics on zero.
    #[inline]
    pub const fn from_hz(hz: u64) -> Frequency {
        assert!(hz > 0, "Frequency must be non-zero");
        Frequency { hz }
    }

    /// Construct from megahertz.
    #[inline]
    pub const fn from_mhz(mhz: u64) -> Frequency {
        Frequency::from_hz(mhz * 1_000_000)
    }

    /// Construct from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: u64) -> Frequency {
        Frequency::from_hz(ghz * 1_000_000_000)
    }

    /// Frequency in hertz.
    #[inline]
    pub const fn as_hz(self) -> u64 {
        self.hz
    }

    /// Frequency in megahertz (integer division; reporting only).
    #[inline]
    pub const fn as_mhz(self) -> u64 {
        self.hz / 1_000_000
    }

    /// The period of one clock cycle, rounded to the nearest picosecond.
    ///
    /// All Mermaid machine models use clocks of at most a few GHz, where the
    /// rounding error is below 0.05% per cycle.
    #[inline]
    pub const fn cycle(self) -> Duration {
        Duration((PS_PER_S + self.hz / 2) / self.hz)
    }

    /// The duration of `n` clock cycles.
    ///
    /// Computed as `n * period` with the period pre-rounded, so that cycle
    /// arithmetic inside one clock domain is exact and associative:
    /// `cycles(a) + cycles(b) == cycles(a + b)`.
    #[inline]
    pub const fn cycles(self, n: u64) -> Duration {
        Duration(n * self.cycle().as_ps())
    }

    /// How many *whole* cycles of this clock fit in `d`.
    #[inline]
    pub const fn cycles_in(self, d: Duration) -> u64 {
        d.as_ps() / self.cycle().as_ps()
    }

    /// How many cycles (fractional) of this clock span `d`; reporting only.
    #[inline]
    pub fn cycles_in_f64(self, d: Duration) -> f64 {
        d.as_ps() as f64 / self.cycle().as_ps() as f64
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("Duration subtraction underflow"),
        )
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<Duration> for u64 {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: Duration) -> Duration {
        Duration(self * rhs.0)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ps(self.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

impl fmt::Debug for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz.is_multiple_of(1_000_000) {
            write!(f, "{}MHz", self.hz / 1_000_000)
        } else {
            write!(f, "{}Hz", self.hz)
        }
    }
}

/// Render a picosecond count with a human-friendly unit.
fn format_ps(ps: u64) -> String {
    if ps == 0 {
        "0ps".to_string()
    } else if ps.is_multiple_of(PS_PER_S) {
        format!("{}s", ps / PS_PER_S)
    } else if ps.is_multiple_of(PS_PER_MS) {
        format!("{}ms", ps / PS_PER_MS)
    } else if ps.is_multiple_of(PS_PER_US) {
        format!("{}us", ps / PS_PER_US)
    } else if ps.is_multiple_of(PS_PER_NS) {
        format!("{}ns", ps / PS_PER_NS)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::from_ps(100);
        let d = Duration::from_ps(40);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t + Duration::ZERO, t);
    }

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(Duration::from_ns(1).as_ps(), 1_000);
        assert_eq!(Duration::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Duration::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Duration::from_secs(1).as_ps(), 1_000_000_000_000);
    }

    #[test]
    fn frequency_cycle_periods() {
        assert_eq!(Frequency::from_mhz(1000).cycle(), Duration::from_ps(1000));
        assert_eq!(Frequency::from_mhz(100).cycle(), Duration::from_ns(10));
        // 30 MHz T805: 33333.3..ps rounds to 33333ps.
        assert_eq!(Frequency::from_mhz(30).cycle(), Duration::from_ps(33333));
    }

    #[test]
    fn cycles_are_associative_within_a_clock() {
        let f = Frequency::from_mhz(143);
        assert_eq!(f.cycles(3) + f.cycles(7), f.cycles(10));
        assert_eq!(f.cycles_in(f.cycles(1234)), 1234);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = Time::from_ps(5);
        let b = Time::from_ps(10);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_ps(5));
    }

    #[test]
    #[should_panic(expected = "later than self")]
    fn since_panics_on_negative() {
        let _ = Time::from_ps(1).since(Time::from_ps(2));
    }

    #[test]
    fn duration_division_and_remainder() {
        let d = Duration::from_ps(105);
        let q = Duration::from_ps(10);
        assert_eq!(d / q, 10);
        assert_eq!(d % q, Duration::from_ps(5));
        assert_eq!(d / 5, Duration::from_ps(21));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Duration::from_ps(5).to_string(), "5ps");
        assert_eq!(Duration::from_ns(5).to_string(), "5ns");
        assert_eq!(Duration::from_secs(2).to_string(), "2s");
        assert_eq!(Time::ZERO.to_string(), "0ps");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (1..=4).map(Duration::from_ns).sum();
        assert_eq!(total, Duration::from_ns(10));
    }
}
