//! # Pearl — a discrete-event simulation kernel
//!
//! The Mermaid architecture models in the original workbench were written in
//! *Pearl*, an object-oriented simulation language designed for modelling
//! computer architectures (H.L. Muller, *Simulating computer architectures*,
//! PhD thesis, University of Amsterdam, 1993). This crate is the Rust
//! substrate playing the same role: simulation models are collections of
//! *components* (Pearl objects) that exchange timestamped *messages* in
//! virtual time, under a deterministic discrete-event scheduler.
//!
//! The kernel is deliberately small and fully deterministic:
//!
//! * [`Time`] / [`Duration`] — virtual time in integer picoseconds, with
//!   [`Frequency`]-based cycle conversions (architecture models think in
//!   cycles of some clock; the kernel thinks in picoseconds so components
//!   with different clocks compose).
//! * [`Engine`] — the event loop. Events scheduled for the same instant are
//!   delivered in a deterministic order derived from simulation state alone
//!   (schedule instant, scheduling component, its push count — see
//!   [`EventKey`]), so simulations are reproducible bit-for-bit, and a
//!   sharded run ([`shard`]) replays the exact single-threaded order.
//! * [`Component`] — the object trait. A component receives events addressed
//!   to it and may schedule further events through [`Ctx`].
//! * [`sync`] — helpers for Pearl-style synchronous (rendezvous) messaging
//!   on top of the asynchronous kernel.
//!
//! ```
//! use pearl::{Component, Ctx, Engine, Event, Duration};
//!
//! struct Ping { peer: pearl::CompId, remaining: u32 }
//!
//! impl Component<u32> for Ping {
//!     fn handle(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
//!         if self.remaining > 0 {
//!             self.remaining -= 1;
//!             ctx.send_after(Duration::from_ps(10), self.peer, ev.payload + 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let a = engine.add_component("a", Ping { peer: 1, remaining: 2 });
//! let b = engine.add_component("b", Ping { peer: 0, remaining: 2 });
//! engine.post(pearl::Time::ZERO, a, b, 0u32);
//! engine.run();
//! assert_eq!(engine.events_processed(), 5);
//! ```

pub mod engine;
pub mod hash;
pub mod probe;
pub mod queue;
pub mod shard;
pub mod sync;
pub mod time;

pub use engine::{BoxWorld, CompId, Component, Ctx, Engine, Event, PendingEvent, RunResult, World};
pub use hash::{FastHashMap, FastHashSet};
pub use probe::{EngineProbe, LadderStats};
pub use queue::{EventKey, EventQueue};
pub use shard::{WindowBarrier, IDLE as IDLE_PS};
pub use time::{Duration, Frequency, Time};
