//! Conservative window synchronization for sharded simulation.
//!
//! A sharded run partitions the component graph across worker threads, each
//! owning a private [`Engine`](crate::Engine). Threads advance in lock-step
//! *windows*: every round, each shard publishes the timestamp of its next
//! pending event, the shards agree on the global minimum `m`, and every shard
//! then executes all events strictly before `m + L`, where `L` is the
//! *lookahead* — a lower bound on the latency of any cross-shard interaction.
//! Because an event executing at `t < m + L` can only schedule cross-shard
//! work at `t' >= t + L >= m + L`, no shard can receive a message timestamped
//! inside the window it is currently executing, so every shard sees exactly
//! the events a single-threaded run would deliver, in the same order (given
//! deterministic [`EventKey`](crate::EventKey) tie-breaking).
//!
//! [`WindowBarrier`] is the agreement primitive: a pair of phase barriers plus
//! a lock-free min-reduction slot per shard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use crate::time::Time;

/// Sentinel published by a shard with no pending events (and no other
/// future cross-shard obligations). Public so callers of
/// [`WindowBarrier::publish_mins_timed`] can interpret raw slot values.
pub const IDLE: u64 = u64::MAX;

/// Barrier used by sharded runs to agree on the next window start.
///
/// Each round has two phases:
///
/// 1. [`exchange`](WindowBarrier::exchange) — all shards rendezvous after
///    flushing their cross-shard outboxes, so every in-flight message is
///    visible in the destination shard's inbox before anyone computes its
///    local minimum.
/// 2. [`agree_min`](WindowBarrier::agree_min) — each shard publishes the
///    timestamp of its earliest pending event (or "idle") and receives the
///    global minimum across all shards. `None` means every shard is idle and
///    the simulation has terminated.
///
/// Memory ordering: the per-shard slots are written and read with `Relaxed`
/// ordering. This is sound because each min-exchange round is bracketed by
/// `Barrier::wait` calls, which establish happens-before edges between every
/// writer and every reader: a shard reads slot values only after the interior
/// barrier, which all writers have passed; and a shard overwrites its slot in
/// round *k+1* only after the round-closing rendezvous inside
/// [`publish_mins_timed`](WindowBarrier::publish_mins_timed), which the
/// round-*k* readers must also have passed.
///
/// [`exchange`]: WindowBarrier::exchange
pub struct WindowBarrier {
    shards: usize,
    mins: Vec<AtomicU64>,
    publish: Barrier,
    resolve: Barrier,
}

impl WindowBarrier {
    /// Create a barrier for `shards` participating worker threads.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "WindowBarrier needs at least one shard");
        Self {
            shards,
            mins: (0..shards).map(|_| AtomicU64::new(IDLE)).collect(),
            publish: Barrier::new(shards),
            resolve: Barrier::new(shards),
        }
    }

    /// Number of participating shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Phase-1 rendezvous: blocks until all shards have arrived.
    ///
    /// Call after pushing this round's cross-shard messages into their
    /// destination channels; on return, every message sent before any peer's
    /// `exchange` call is available to its destination shard.
    pub fn exchange(&self) {
        self.publish.wait();
    }

    /// Phase-2 min-reduction: publish this shard's earliest pending event
    /// time and return the global minimum across all shards.
    ///
    /// `local` is `None` when the shard has no pending events. Returns `None`
    /// only when *every* shard is idle, i.e. the simulation has terminated.
    pub fn agree_min(&self, shard: usize, local: Option<Time>) -> Option<Time> {
        self.agree_min_timed(shard, local).0
    }

    /// [`agree_min`](WindowBarrier::agree_min) that also reports how long
    /// this shard blocked waiting for its peers, in host nanoseconds.
    ///
    /// The wait time is host wall-clock — it varies run to run and between
    /// machines, so it must never feed back into simulated state; it exists
    /// purely for self-profiling (how much of a shard's life is barrier
    /// overhead versus useful event execution).
    pub fn agree_min_timed(&self, shard: usize, local: Option<Time>) -> (Option<Time>, u64) {
        let mut all = Vec::with_capacity(self.shards);
        let waited_ns = self.publish_mins_timed(shard, local.map_or(IDLE, |t| t.as_ps()), &mut all);
        let min = all.iter().copied().min().unwrap_or(IDLE);
        if min == IDLE {
            (None, waited_ns)
        } else {
            (Some(Time::from_ps(min)), waited_ns)
        }
    }

    /// Full min-exchange: publish this shard's earliest-obligation bound
    /// (in raw picoseconds, [`IDLE`] when it has none) and fill `out` with
    /// *every* shard's published value, indexed by shard id. Returns how
    /// long this shard blocked waiting for its peers, in host nanoseconds.
    ///
    /// This is the primitive behind per-shard-*pair* window bounds: a
    /// caller that knows a lower bound `L[j][i]` on the latency of any
    /// cross-shard effect from shard `j` to shard `i` can widen its window
    /// to `min over j != i of (out[j] + L[j][i])` instead of the global
    /// minimum plus the global lookahead — see the sharded runner in the
    /// network crate (DESIGN.md §17).
    ///
    /// The published value is a *promise*, not just a queue peek: a shard
    /// must publish a value `p` such that every event it will ever hand to
    /// shard `j` from now on arrives no earlier than `p + L[self][j]`.
    /// Publishing the earliest pending event time satisfies this; a shard
    /// that has run ahead speculatively must instead keep publishing the
    /// floor it would publish conservatively (its queue head when the
    /// speculation launched) — the sped-ahead queue head is not a floor,
    /// since later arrivals can legally land below it.
    ///
    /// The same barrier memory-ordering argument as [`agree_min`]
    /// (see the type-level docs) covers the whole-slice read: every slot
    /// write happens-before the `resolve` rendezvous, which happens-before
    /// every slot read.
    ///
    /// [`agree_min`]: WindowBarrier::agree_min
    pub fn publish_mins_timed(&self, shard: usize, local_ps: u64, out: &mut Vec<u64>) -> u64 {
        self.mins[shard].store(local_ps, Ordering::Relaxed);
        let waited = std::time::Instant::now();
        self.resolve.wait();
        out.clear();
        out.extend(self.mins.iter().map(|m| m.load(Ordering::Relaxed)));
        // Close the round before returning: without this rendezvous a fast
        // shard could re-enter and overwrite its slot for round k+1 while a
        // slow peer is still reading round k's values, handing the slow
        // shard an inconsistent (future) minimum. `agree_min` historically
        // relied on callers interposing `exchange()` between rounds;
        // publish_mins_timed is called back-to-back, so it closes the round
        // itself.
        self.publish.wait();
        waited.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn single_shard_agrees_with_itself() {
        let b = WindowBarrier::new(1);
        assert_eq!(
            b.agree_min(0, Some(Time::from_ps(42))),
            Some(Time::from_ps(42))
        );
        assert_eq!(b.agree_min(0, None), None);
        assert_eq!(b.shards(), 1);
    }

    #[test]
    fn min_reduction_across_threads() {
        let b = WindowBarrier::new(4);
        let locals = [Some(700u64), Some(300), None, Some(500)];
        let (tx, rx) = mpsc::channel();
        thread::scope(|s| {
            for (i, l) in locals.iter().enumerate() {
                let b = &b;
                let tx = tx.clone();
                s.spawn(move || {
                    b.exchange();
                    let got = b.agree_min(i, l.map(Time::from_ps));
                    tx.send(got).unwrap();
                });
            }
        });
        drop(tx);
        for got in rx {
            assert_eq!(got, Some(Time::from_ps(300)));
        }
    }

    #[test]
    fn timed_variant_agrees_and_reports_a_wait() {
        let b = WindowBarrier::new(2);
        thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let b = &b;
                    s.spawn(move || b.agree_min_timed(i, Some(Time::from_ps(100 + i as u64))))
                })
                .collect();
            for h in handles {
                let (min, _waited_ns) = h.join().unwrap();
                // Wait time is host wall-clock and may legitimately be 0ns
                // on the last arrival; only the agreed minimum is checkable.
                assert_eq!(min, Some(Time::from_ps(100)));
            }
        });
    }

    #[test]
    fn publish_mins_returns_every_shards_value() {
        let b = WindowBarrier::new(3);
        let locals = [400u64, 100, IDLE];
        thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let b = &b;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        b.publish_mins_timed(i, locals[i], &mut out);
                        out
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), vec![400, 100, IDLE]);
            }
        });
    }

    #[test]
    fn publish_mins_rounds_interleave_with_agree_min() {
        // The two entry points share slots and barriers; mixing them
        // across rounds must keep every shard's view consistent.
        let b = WindowBarrier::new(2);
        thread::scope(|s| {
            let handles: Vec<_> = (0..2u64)
                .map(|i| {
                    let b = &b;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        b.publish_mins_timed(i as usize, 10 + i, &mut out);
                        assert_eq!(out, vec![10, 11]);
                        let got = b.agree_min(i as usize, Some(Time::from_ps(20 + i)));
                        assert_eq!(got, Some(Time::from_ps(20)));
                        b.publish_mins_timed(i as usize, 30 + i, &mut out);
                        assert_eq!(out, vec![30, 31]);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn all_idle_terminates() {
        let b = WindowBarrier::new(3);
        thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let b = &b;
                    s.spawn(move || b.agree_min(i, None))
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), None);
            }
        });
    }

    #[test]
    fn repeated_rounds_reuse_slots() {
        let b = WindowBarrier::new(2);
        thread::scope(|s| {
            let h0 = {
                let b = &b;
                s.spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..10u64 {
                        b.exchange();
                        out.push(b.agree_min(0, Some(Time::from_ps(round * 10 + 5))));
                    }
                    out
                })
            };
            let h1 = {
                let b = &b;
                s.spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..10u64 {
                        b.exchange();
                        out.push(b.agree_min(1, Some(Time::from_ps(round * 10 + 7))));
                    }
                    out
                })
            };
            let a = h0.join().unwrap();
            let c = h1.join().unwrap();
            for (round, (x, y)) in a.iter().zip(c.iter()).enumerate() {
                let want = Some(Time::from_ps(round as u64 * 10 + 5));
                assert_eq!(*x, want);
                assert_eq!(*y, want);
            }
        });
    }
}
