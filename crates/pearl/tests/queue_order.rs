//! Property coverage for the two-tier event queue: its pop sequence must
//! be indistinguishable from the plain stable binary heap it replaced,
//! under arbitrary interleavings of pushes (at every tier distance) and
//! pops.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pearl::{EventQueue, Time};
use proptest::prelude::*;

/// One step of a queue workout.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push at an absolute time (picked from several magnitude bands so
    /// the current window, the buckets, and the far heap all see traffic).
    Push(u64),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Dense near-term times: lots of ties, current-window hits.
        (0u64..50).prop_map(Op::Push),
        // Bucket-scale spread.
        (0u64..1_000_000).prop_map(Op::Push),
        // Far-future outliers that force rebases.
        (0u64..1u64 << 50).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

/// The replaced scheduler, as the oracle: a max-heap of inverted
/// `(time, seq)` keys pops in exactly the stable order the event core
/// guarantees.
#[derive(Default)]
struct StableHeap {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    next_seq: u64,
}

impl StableHeap {
    fn push(&mut self, t: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((t, seq)));
        seq
    }

    fn pop(&mut self) -> Option<(Time, u64)> {
        self.heap
            .pop()
            .map(|Reverse((t, seq))| (Time::from_ps(t), seq))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every pop agrees with the stable-heap oracle, at every point of an
    /// arbitrary interleaved push/pop sequence, and the drained tails
    /// agree too.
    #[test]
    fn pops_match_stable_heap_oracle(ops in prop::collection::vec(op_strategy(), 0..400)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut oracle = StableHeap::default();
        for op in ops {
            match op {
                Op::Push(t) => {
                    let seq = oracle.push(t);
                    // The payload is the oracle's own sequence number, so a
                    // tie broken out of order is caught by value, not just
                    // by time.
                    q.push(Time::from_ps(t), seq);
                }
                Op::Pop => {
                    prop_assert_eq!(q.pop(), oracle.pop());
                }
            }
            prop_assert_eq!(q.len() as u64, oracle.heap.len() as u64);
        }
        loop {
            let expect = oracle.pop();
            let got = q.pop();
            let done = expect.is_none();
            prop_assert_eq!(got, expect);
            if done {
                break;
            }
        }
        prop_assert!(q.is_empty());
    }

    /// Same-time pushes pop strictly FIFO regardless of how many rebases
    /// and window advances happen in between.
    #[test]
    fn ties_stay_fifo_across_tiers(
        times in prop::collection::vec(0u64..1_000, 1..200),
        dup in 2usize..5,
    ) {
        let mut q: EventQueue<(u64, usize)> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            for d in 0..dup {
                q.push(Time::from_ps(t), (i as u64, d));
            }
        }
        let mut last: Option<(u64, u64, usize)> = None;
        while let Some((t, (i, d))) = q.pop() {
            let key = (t.as_ps(), i, d);
            if let Some(prev) = last {
                prop_assert!(
                    (key.0, key.1 * dup as u64 + key.2 as u64)
                        > (prev.0, prev.1 * dup as u64 + prev.2 as u64),
                    "tie order broken: {:?} after {:?}",
                    key,
                    prev
                );
            }
            last = Some(key);
        }
        prop_assert!(q.is_empty());
    }
}
