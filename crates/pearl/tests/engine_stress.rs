//! Stress and determinism tests of the discrete-event kernel.

use pearl::{CompId, Component, Ctx, Duration, Engine, Event, Time};

/// A node in a random message web: forwards each token `hops` more times
/// to a pseudo-randomly chosen peer with a pseudo-random delay.
struct Web {
    peers: usize,
    state: u64,
    received: u64,
    log: Vec<(u64, CompId)>,
}

#[derive(Clone, Debug)]
struct Token {
    hops: u32,
    id: u64,
}

impl Web {
    fn next_rand(&mut self) -> u64 {
        // xorshift64
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }
}

impl Component<Token> for Web {
    fn handle(&mut self, ev: Event<Token>, ctx: &mut Ctx<'_, Token>) {
        self.received += 1;
        self.log.push((ev.payload.id, ev.src));
        if ev.payload.hops > 0 {
            let r = self.next_rand();
            let dst = (r % self.peers as u64) as CompId;
            let delay = Duration::from_ps(1 + r % 1000);
            ctx.send_after(
                delay,
                dst,
                Token {
                    hops: ev.payload.hops - 1,
                    id: ev.payload.id,
                },
            );
        }
    }
}

fn run_web(comps: usize, tokens: u64, hops: u32) -> (Time, u64, Vec<Vec<(u64, CompId)>>) {
    let mut e = Engine::new();
    for i in 0..comps {
        e.add_component(
            format!("web{i}"),
            Web {
                peers: comps,
                state: 0x1234_5678_9abc_def0 ^ (i as u64) << 32 | 1,
                received: 0,
                log: Vec::new(),
            },
        );
    }
    for id in 0..tokens {
        e.post(
            Time::ZERO,
            (id as usize) % comps,
            (id as usize) % comps,
            Token { hops, id },
        );
    }
    e.run();
    let logs = (0..comps)
        .map(|i| e.component::<Web>(i).unwrap().log.clone())
        .collect();
    (e.now(), e.events_processed(), logs)
}

#[test]
fn large_event_webs_conserve_messages() {
    let comps = 50;
    let tokens = 200;
    let hops = 40;
    let (_, events, _) = run_web(comps, tokens, hops);
    // Every token is delivered exactly hops+1 times.
    assert_eq!(events, tokens * (hops as u64 + 1));
}

#[test]
fn simulation_is_bit_for_bit_deterministic() {
    let a = run_web(20, 50, 30);
    let b = run_web(20, 50, 30);
    assert_eq!(a.0, b.0, "final virtual time");
    assert_eq!(a.1, b.1, "event count");
    assert_eq!(a.2, b.2, "per-component delivery logs");
}

#[test]
fn hundred_thousand_events_run_quickly() {
    let start = std::time::Instant::now();
    let (_, events, _) = run_web(100, 500, 200);
    assert_eq!(events, 500 * 201);
    // Generous bound: the kernel must push > 100k events/s even in debug.
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "kernel too slow: {events} events in {:?}",
        start.elapsed()
    );
}

/// A component that schedules zero-delay events to itself, bounded.
struct ZeroDelay {
    remaining: u32,
}
impl Component<Token> for ZeroDelay {
    fn handle(&mut self, _ev: Event<Token>, ctx: &mut Ctx<'_, Token>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_now(ctx.self_id(), Token { hops: 0, id: 0 });
        }
    }
}

#[test]
fn zero_delay_self_messages_make_progress_at_constant_time() {
    let mut e = Engine::new();
    let id = e.add_component("z", ZeroDelay { remaining: 10_000 });
    e.post(Time::ZERO, id, id, Token { hops: 0, id: 0 });
    e.run();
    assert_eq!(e.now(), Time::ZERO, "zero delays must not advance time");
    assert_eq!(e.events_processed(), 10_001);
}
