//! Compact binary trace codec.
//!
//! Traces can be long (every loop iteration is traced individually), so the
//! on-disk format matters. The codec uses a one-byte opcode followed by
//! LEB128 varints for addresses, sizes, and durations — sequential address
//! streams then cost 2–4 bytes per operation.
//!
//! Layout:
//! ```text
//! trace  := magic(4) version(1) node(varint) count(varint) op*
//! op     := opcode(1) operands(varint*)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::operation::{Address, ArithOp, DataType, NodeId, Operation};
use crate::trace::{Trace, TraceSet};

/// File magic: "MMD1" (Mermaid trace, format 1).
pub const MAGIC: [u8; 4] = *b"MMD1";
/// Current format version.
pub const VERSION: u8 = 1;

/// Errors produced when decoding a binary trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the trace magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Input ended in the middle of a structure.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown data-type code.
    BadType(u8),
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// An operand did not fit its field (e.g. message size > u32).
    FieldOverflow,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad trace magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "truncated trace"),
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode {b:#x}"),
            DecodeError::BadType(b) => write!(f, "unknown data-type code {b:#x}"),
            DecodeError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            DecodeError::FieldOverflow => write!(f, "operand exceeds field width"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode space. The data type is folded into the opcode for the typed
// operations (opcode = base + type index), which keeps every computational
// operation at 1 byte + operands.
const TYPES: usize = 6;
const OP_LOAD: u8 = 0x00; // ..0x05
const OP_STORE: u8 = 0x06; // ..0x0b
const OP_LOADC: u8 = 0x0c; // ..0x11
const OP_ADD: u8 = 0x12; // ..0x17
const OP_SUB: u8 = 0x18; // ..0x1d
const OP_MUL: u8 = 0x1e; // ..0x23
const OP_DIV: u8 = 0x24; // ..0x29
const OP_IFETCH: u8 = 0x2a;
const OP_BRANCH: u8 = 0x2b;
const OP_CALL: u8 = 0x2c;
const OP_RET: u8 = 0x2d;
const OP_SEND: u8 = 0x2e;
const OP_RECV: u8 = 0x2f;
const OP_ASEND: u8 = 0x30;
const OP_ARECV: u8 = 0x31;
const OP_COMPUTE: u8 = 0x32;
const OP_GET: u8 = 0x33;
const OP_PUT: u8 = 0x34;

fn type_index(ty: DataType) -> u8 {
    match ty {
        DataType::I8 => 0,
        DataType::I16 => 1,
        DataType::I32 => 2,
        DataType::I64 => 3,
        DataType::F32 => 4,
        DataType::F64 => 5,
    }
}

fn type_from_index(i: u8) -> Result<DataType, DecodeError> {
    Ok(match i {
        0 => DataType::I8,
        1 => DataType::I16,
        2 => DataType::I32,
        3 => DataType::I64,
        4 => DataType::F32,
        5 => DataType::F64,
        _ => return Err(DecodeError::BadType(i)),
    })
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut impl Buf) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DecodeError::Truncated);
        }
        let byte = buf.get_u8();
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(DecodeError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Append the encoding of one operation to `buf`.
pub fn encode_op(buf: &mut BytesMut, op: Operation) {
    match op {
        Operation::Load { ty, addr } => {
            buf.put_u8(OP_LOAD + type_index(ty));
            put_varint(buf, addr);
        }
        Operation::Store { ty, addr } => {
            buf.put_u8(OP_STORE + type_index(ty));
            put_varint(buf, addr);
        }
        Operation::LoadConst { ty } => buf.put_u8(OP_LOADC + type_index(ty)),
        Operation::Arith { op: a, ty } => {
            let base = match a {
                ArithOp::Add => OP_ADD,
                ArithOp::Sub => OP_SUB,
                ArithOp::Mul => OP_MUL,
                ArithOp::Div => OP_DIV,
            };
            buf.put_u8(base + type_index(ty));
        }
        Operation::IFetch { addr } => {
            buf.put_u8(OP_IFETCH);
            put_varint(buf, addr);
        }
        Operation::Branch { addr } => {
            buf.put_u8(OP_BRANCH);
            put_varint(buf, addr);
        }
        Operation::Call { addr } => {
            buf.put_u8(OP_CALL);
            put_varint(buf, addr);
        }
        Operation::Ret { addr } => {
            buf.put_u8(OP_RET);
            put_varint(buf, addr);
        }
        Operation::Send { bytes, dst } => {
            buf.put_u8(OP_SEND);
            put_varint(buf, bytes as u64);
            put_varint(buf, dst as u64);
        }
        Operation::Recv { src } => {
            buf.put_u8(OP_RECV);
            put_varint(buf, src as u64);
        }
        Operation::ASend { bytes, dst } => {
            buf.put_u8(OP_ASEND);
            put_varint(buf, bytes as u64);
            put_varint(buf, dst as u64);
        }
        Operation::ARecv { src } => {
            buf.put_u8(OP_ARECV);
            put_varint(buf, src as u64);
        }
        Operation::Compute { ps } => {
            buf.put_u8(OP_COMPUTE);
            put_varint(buf, ps);
        }
        Operation::Get { bytes, from } => {
            buf.put_u8(OP_GET);
            put_varint(buf, bytes as u64);
            put_varint(buf, from as u64);
        }
        Operation::Put { bytes, to } => {
            buf.put_u8(OP_PUT);
            put_varint(buf, bytes as u64);
            put_varint(buf, to as u64);
        }
    }
}

fn narrow_u32(v: u64) -> Result<u32, DecodeError> {
    u32::try_from(v).map_err(|_| DecodeError::FieldOverflow)
}

/// Decode one operation from `buf`.
pub fn decode_op(buf: &mut impl Buf) -> Result<Operation, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError::Truncated);
    }
    let code = buf.get_u8();
    let typed = |base: u8| type_from_index(code - base);
    Ok(match code {
        c if c < OP_LOAD + TYPES as u8 => Operation::Load {
            ty: typed(OP_LOAD)?,
            addr: get_varint(buf)? as Address,
        },
        c if (OP_STORE..OP_STORE + TYPES as u8).contains(&c) => Operation::Store {
            ty: typed(OP_STORE)?,
            addr: get_varint(buf)? as Address,
        },
        c if (OP_LOADC..OP_LOADC + TYPES as u8).contains(&c) => Operation::LoadConst {
            ty: typed(OP_LOADC)?,
        },
        c if (OP_ADD..OP_ADD + TYPES as u8).contains(&c) => Operation::Arith {
            op: ArithOp::Add,
            ty: typed(OP_ADD)?,
        },
        c if (OP_SUB..OP_SUB + TYPES as u8).contains(&c) => Operation::Arith {
            op: ArithOp::Sub,
            ty: typed(OP_SUB)?,
        },
        c if (OP_MUL..OP_MUL + TYPES as u8).contains(&c) => Operation::Arith {
            op: ArithOp::Mul,
            ty: typed(OP_MUL)?,
        },
        c if (OP_DIV..OP_DIV + TYPES as u8).contains(&c) => Operation::Arith {
            op: ArithOp::Div,
            ty: typed(OP_DIV)?,
        },
        OP_IFETCH => Operation::IFetch {
            addr: get_varint(buf)?,
        },
        OP_BRANCH => Operation::Branch {
            addr: get_varint(buf)?,
        },
        OP_CALL => Operation::Call {
            addr: get_varint(buf)?,
        },
        OP_RET => Operation::Ret {
            addr: get_varint(buf)?,
        },
        OP_SEND => Operation::Send {
            bytes: narrow_u32(get_varint(buf)?)?,
            dst: narrow_u32(get_varint(buf)?)? as NodeId,
        },
        OP_RECV => Operation::Recv {
            src: narrow_u32(get_varint(buf)?)? as NodeId,
        },
        OP_ASEND => Operation::ASend {
            bytes: narrow_u32(get_varint(buf)?)?,
            dst: narrow_u32(get_varint(buf)?)? as NodeId,
        },
        OP_ARECV => Operation::ARecv {
            src: narrow_u32(get_varint(buf)?)? as NodeId,
        },
        OP_COMPUTE => Operation::Compute {
            ps: get_varint(buf)?,
        },
        OP_GET => Operation::Get {
            bytes: narrow_u32(get_varint(buf)?)?,
            from: narrow_u32(get_varint(buf)?)? as NodeId,
        },
        OP_PUT => Operation::Put {
            bytes: narrow_u32(get_varint(buf)?)?,
            to: narrow_u32(get_varint(buf)?)? as NodeId,
        },
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

/// Encode a whole per-node trace (with header).
pub fn encode_trace(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.len() * 3);
    buf.put_slice(&MAGIC);
    buf.put_u8(VERSION);
    put_varint(&mut buf, trace.node as u64);
    put_varint(&mut buf, trace.len() as u64);
    for &op in trace.iter() {
        encode_op(&mut buf, op);
    }
    buf.freeze()
}

/// Decode a whole per-node trace (with header).
pub fn decode_trace(mut buf: impl Buf) -> Result<Trace, DecodeError> {
    if buf.remaining() < MAGIC.len() + 1 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let node = narrow_u32(get_varint(&mut buf)?)? as NodeId;
    let count = get_varint(&mut buf)? as usize;
    let mut ops = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        ops.push(decode_op(&mut buf)?);
    }
    Ok(Trace::from_ops(node, ops))
}

/// Encode all traces of a multicomputer workload, one header per node.
pub fn encode_trace_set(set: &TraceSet) -> Vec<Bytes> {
    set.iter().map(encode_trace).collect()
}

/// Decode a trace set from per-node buffers.
pub fn decode_trace_set(bufs: Vec<Bytes>) -> Result<TraceSet, DecodeError> {
    let traces = bufs
        .into_iter()
        .map(decode_trace)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TraceSet::from_traces(traces))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_operation_roundtrips() {
        for op in crate::operation::tests::sample_ops() {
            let mut buf = BytesMut::new();
            encode_op(&mut buf, op);
            let mut bytes = buf.freeze();
            let back = decode_op(&mut bytes).unwrap();
            assert_eq!(back, op);
            assert!(!bytes.has_remaining(), "{op} left trailing bytes");
        }
    }

    #[test]
    fn trace_roundtrips_with_header() {
        let t = Trace::from_ops(7, crate::operation::tests::sample_ops());
        let enc = encode_trace(&t);
        let back = decode_trace(enc).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn encoding_is_compact_for_typical_ops() {
        // A load at a small address costs 1 opcode + ≤2 varint bytes.
        let mut buf = BytesMut::new();
        encode_op(
            &mut buf,
            Operation::Load {
                ty: DataType::I32,
                addr: 0x1f0,
            },
        );
        assert!(buf.len() <= 3, "load encoded in {} bytes", buf.len());
        // Arithmetic is a single byte.
        let mut buf = BytesMut::new();
        encode_op(
            &mut buf,
            Operation::Arith {
                op: ArithOp::Add,
                ty: DataType::I32,
            },
        );
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = Bytes::from_static(b"NOPE\x01\x00\x00");
        assert_eq!(decode_trace(bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u8(99);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 0);
        assert_eq!(decode_trace(buf.freeze()), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn truncation_is_detected() {
        let t = Trace::from_ops(0, crate::operation::tests::sample_ops());
        let enc = encode_trace(&t);
        let cut = enc.slice(0..enc.len() - 1);
        assert_eq!(decode_trace(cut), Err(DecodeError::Truncated));
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let mut b = Bytes::from_static(&[0xff]);
        assert_eq!(decode_op(&mut b), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn trace_set_roundtrips() {
        let mut set = TraceSet::new(3);
        for n in 0..3u32 {
            for op in crate::operation::tests::sample_ops() {
                set.trace_mut(n).push(op);
            }
        }
        let enc = encode_trace_set(&set);
        let back = decode_trace_set(enc).unwrap();
        assert_eq!(back, set);
    }
}
