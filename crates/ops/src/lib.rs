//! # mermaid-ops — trace operations and trace containers
//!
//! Mermaid simulations are driven by traces of *operations* rather than real
//! machine instructions (paper, Section 3.3 and Table 1). An operation
//! represents processor activity, memory I/O, or message passing:
//!
//! * **Computational operations** are abstract machine instructions of a
//!   load-store architecture, in three categories: data transfer between
//!   registers and the memory hierarchy (`load`, `store`, `load constant`),
//!   register-only arithmetic (`add`, `sub`, `mul`, `div` over a data type),
//!   and instruction fetching (`ifetch`, `branch`, `call`, `ret`). Because
//!   memory *values* are not modelled, the trace generator resolves all
//!   control flow: every invocation of a loop body appears in the trace.
//! * **Communication operations** drive the task-level communication model:
//!   synchronous `send`/`recv`, asynchronous `asend`/`arecv`, and
//!   `compute(duration)` representing a block of computation collapsed to a
//!   single task.
//!
//! This crate defines the [`Operation`] enum, trace containers
//! ([`Trace`], [`TraceSet`]), trace statistics, and three interchangeable
//! codecs (binary, line-text, JSON).

pub mod codec;
pub mod file;
pub mod operation;
pub mod stats;
pub mod table1;
pub mod text;
pub mod trace;

pub use operation::{Address, ArithOp, DataType, NodeId, OpCategory, Operation};
pub use stats::TraceStats;
pub use trace::{Trace, TraceSet};
