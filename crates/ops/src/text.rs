//! Line-oriented text trace format, for inspection and hand-written tests.
//!
//! One operation per line, matching the `Display` output of [`Operation`]:
//!
//! ```text
//! load i32 0x1000
//! add i32
//! send 256 3
//! compute 1000000
//! ```
//!
//! Blank lines and `#` comments are ignored.

use crate::operation::{Address, ArithOp, DataType, NodeId, Operation};
use crate::trace::Trace;

/// Error from parsing a text trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn parse_type(s: &str) -> Result<DataType, String> {
    DataType::ALL
        .into_iter()
        .find(|t| t.mnemonic() == s)
        .ok_or_else(|| format!("unknown data type `{s}`"))
}

fn parse_addr(s: &str) -> Result<Address, String> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        Address::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| format!("bad address `{s}`"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what} `{s}`"))
}

/// Parse a single operation line (without comments).
pub fn parse_op(line: &str) -> Result<Operation, String> {
    let mut it = line.split_whitespace();
    let mnemonic = it.next().ok_or("empty operation")?;
    let mut next =
        |what: &str| -> Result<&str, String> { it.next().ok_or_else(|| format!("missing {what}")) };
    let op = match mnemonic {
        "load" => Operation::Load {
            ty: parse_type(next("type")?)?,
            addr: parse_addr(next("address")?)?,
        },
        "store" => Operation::Store {
            ty: parse_type(next("type")?)?,
            addr: parse_addr(next("address")?)?,
        },
        "loadc" => Operation::LoadConst {
            ty: parse_type(next("type")?)?,
        },
        "add" | "sub" | "mul" | "div" => {
            let a = match mnemonic {
                "add" => ArithOp::Add,
                "sub" => ArithOp::Sub,
                "mul" => ArithOp::Mul,
                _ => ArithOp::Div,
            };
            Operation::Arith {
                op: a,
                ty: parse_type(next("type")?)?,
            }
        }
        "ifetch" => Operation::IFetch {
            addr: parse_addr(next("address")?)?,
        },
        "branch" => Operation::Branch {
            addr: parse_addr(next("address")?)?,
        },
        "call" => Operation::Call {
            addr: parse_addr(next("address")?)?,
        },
        "ret" => Operation::Ret {
            addr: parse_addr(next("address")?)?,
        },
        "send" => Operation::Send {
            bytes: parse_num(next("message size")?, "message size")?,
            dst: parse_num::<NodeId>(next("destination")?, "destination")?,
        },
        "recv" => Operation::Recv {
            src: parse_num::<NodeId>(next("source")?, "source")?,
        },
        "asend" => Operation::ASend {
            bytes: parse_num(next("message size")?, "message size")?,
            dst: parse_num::<NodeId>(next("destination")?, "destination")?,
        },
        "arecv" => Operation::ARecv {
            src: parse_num::<NodeId>(next("source")?, "source")?,
        },
        "compute" => Operation::Compute {
            ps: parse_num(next("duration")?, "duration")?,
        },
        "get" => Operation::Get {
            bytes: parse_num(next("size")?, "size")?,
            from: parse_num::<NodeId>(next("source")?, "source")?,
        },
        "put" => Operation::Put {
            bytes: parse_num(next("size")?, "size")?,
            to: parse_num::<NodeId>(next("destination")?, "destination")?,
        },
        other => return Err(format!("unknown operation `{other}`")),
    };
    if let Some(extra) = it.next() {
        return Err(format!("trailing token `{extra}`"));
    }
    Ok(op)
}

/// Parse a text trace for `node`.
pub fn parse_trace(node: NodeId, text: &str) -> Result<Trace, ParseError> {
    let mut trace = Trace::new(node);
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let op = parse_op(line).map_err(|message| ParseError {
            line: i + 1,
            message,
        })?;
        trace.push(op);
    }
    Ok(trace)
}

/// Render a trace in the text format (inverse of [`parse_trace`]).
pub fn format_trace(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 16);
    out.push_str(&format!(
        "# node {} — {} operations\n",
        trace.node,
        trace.len()
    ));
    for op in trace.iter() {
        out.push_str(&op.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_operation_roundtrips_through_text() {
        for op in crate::operation::tests::sample_ops() {
            let line = op.to_string();
            let back = parse_op(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, op, "{line}");
        }
    }

    #[test]
    fn trace_roundtrips_with_comments() {
        let t = Trace::from_ops(2, crate::operation::tests::sample_ops());
        let text = format_trace(&t);
        let back = parse_trace(2, &text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "\n# header\nload i32 0x10 # inline comment\n\nadd i32\n";
        let t = parse_trace(0, text).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn hex_and_decimal_addresses() {
        assert_eq!(
            parse_op("load i8 256").unwrap(),
            parse_op("load i8 0x100").unwrap()
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_trace(0, "add i32\nbogus op\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn missing_and_trailing_operands_are_rejected() {
        assert!(parse_op("load i32").is_err());
        assert!(parse_op("add").is_err());
        assert!(parse_op("add i32 extra").is_err());
        assert!(parse_op("send 12").is_err());
        assert!(parse_op("load x32 0x0").is_err());
    }
}
