//! The operation set of Table 1.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte address in the simulated (per-node) address space.
pub type Address = u64;

/// Identifies a node of the multicomputer (0-based).
pub type NodeId = u32;

/// The data type an operation manipulates — the `type` / `mem-type`
/// parameter of Table 1. The set mirrors a load-store architecture's
/// register classes; widths drive memory-access sizes and arithmetic
/// latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 8-bit integer (byte).
    I8,
    /// 16-bit integer (halfword).
    I16,
    /// 32-bit integer (word).
    I32,
    /// 64-bit integer (doubleword).
    I64,
    /// 32-bit IEEE float (single).
    F32,
    /// 64-bit IEEE float (double).
    F64,
}

impl DataType {
    /// Access size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            DataType::I8 => 1,
            DataType::I16 => 2,
            DataType::I32 => 4,
            DataType::I64 | DataType::F64 => 8,
            DataType::F32 => 4,
        }
    }

    /// True for the floating-point types.
    #[inline]
    pub const fn is_float(self) -> bool {
        matches!(self, DataType::F32 | DataType::F64)
    }

    /// All data types, in width order.
    pub const ALL: [DataType; 6] = [
        DataType::I8,
        DataType::I16,
        DataType::I32,
        DataType::I64,
        DataType::F32,
        DataType::F64,
    ];

    /// Short mnemonic used by the text codec.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            DataType::I8 => "i8",
            DataType::I16 => "i16",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Register-only arithmetic functions (Table 1, second category).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    /// Addition (also stands in for subtraction-like ALU ops of equal cost).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl ArithOp {
    /// All arithmetic operations.
    pub const ALL: [ArithOp; 4] = [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div];

    /// Short mnemonic used by the text codec.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            ArithOp::Add => "add",
            ArithOp::Sub => "sub",
            ArithOp::Mul => "mul",
            ArithOp::Div => "div",
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One trace event — Table 1 of the paper.
///
/// The first eight variants are the *computational operations* consumed by
/// the single-node computational model; the last five are the
/// *communication operations* consumed by the multi-node communication
/// model. `Compute` durations are in picoseconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// `load(mem-type, address)` — read memory into a register.
    Load { ty: DataType, addr: Address },
    /// `store(mem-type, address)` — write a register to memory.
    Store { ty: DataType, addr: Address },
    /// `load([f]constant)` — load an immediate into a register.
    LoadConst { ty: DataType },
    /// `add/sub/mul/div(type)` — register-only arithmetic.
    Arith { op: ArithOp, ty: DataType },
    /// `ifetch(address)` — fetch the instruction at `address`.
    IFetch { addr: Address },
    /// `branch(address)` — transfer control to `address`.
    Branch { addr: Address },
    /// `call(address)` — function call to `address`.
    Call { addr: Address },
    /// `ret(address)` — return to `address`.
    Ret { addr: Address },
    /// `send(message-size, destination)` — synchronous (blocking) send.
    Send { bytes: u32, dst: NodeId },
    /// `recv(source)` — synchronous (blocking) receive.
    Recv { src: NodeId },
    /// `asend(message-size, destination)` — asynchronous send.
    ASend { bytes: u32, dst: NodeId },
    /// `arecv(source)` — asynchronous receive (posts the receive; completion
    /// is checked at the next synchronising operation).
    ARecv { src: NodeId },
    /// `compute(duration)` — a computational task of `duration` picoseconds,
    /// used by the task-level communication model.
    Compute { ps: u64 },
    /// `get(size, source)` — one-sided blocking remote read: fetch `bytes`
    /// from `from`'s memory. The remote node services the request without a
    /// trace operation of its own. Extension beyond the paper's Table 1:
    /// the substrate for the virtual-shared-memory layer its Section 5.1
    /// names as future work.
    Get { bytes: u32, from: NodeId },
    /// `put(size, destination)` — one-sided non-blocking remote write of
    /// `bytes` into `to`'s memory; consumed automatically at the target.
    Put { bytes: u32, to: NodeId },
}

/// The category an operation belongs to; used for statistics and for the
/// split between the computational and communication models (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpCategory {
    /// Register ↔ memory-hierarchy transfer (Table 1, category 1).
    MemoryTransfer,
    /// Register-only arithmetic (category 2).
    Arithmetic,
    /// Instruction fetching and control transfer (category 3).
    InstructionFetch,
    /// Message-passing communication (`send`/`recv`/`asend`/`arecv`).
    Communication,
    /// Task-level computation (`compute`).
    Task,
}

impl OpCategory {
    /// All categories in a fixed order (used for stats tables).
    pub const ALL: [OpCategory; 5] = [
        OpCategory::MemoryTransfer,
        OpCategory::Arithmetic,
        OpCategory::InstructionFetch,
        OpCategory::Communication,
        OpCategory::Task,
    ];

    /// Human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            OpCategory::MemoryTransfer => "memory transfer",
            OpCategory::Arithmetic => "arithmetic",
            OpCategory::InstructionFetch => "instruction fetch",
            OpCategory::Communication => "communication",
            OpCategory::Task => "task",
        }
    }
}

impl Operation {
    /// The category of this operation.
    #[inline]
    pub const fn category(self) -> OpCategory {
        match self {
            Operation::Load { .. } | Operation::Store { .. } | Operation::LoadConst { .. } => {
                OpCategory::MemoryTransfer
            }
            Operation::Arith { .. } => OpCategory::Arithmetic,
            Operation::IFetch { .. }
            | Operation::Branch { .. }
            | Operation::Call { .. }
            | Operation::Ret { .. } => OpCategory::InstructionFetch,
            Operation::Send { .. }
            | Operation::Recv { .. }
            | Operation::ASend { .. }
            | Operation::ARecv { .. }
            | Operation::Get { .. }
            | Operation::Put { .. } => OpCategory::Communication,
            Operation::Compute { .. } => OpCategory::Task,
        }
    }

    /// True for computational operations (consumed by the single-node
    /// computational model).
    #[inline]
    pub const fn is_computational(self) -> bool {
        !matches!(
            self.category(),
            OpCategory::Communication | OpCategory::Task
        )
    }

    /// True for *global events*: operations whose timing can be influenced
    /// by (or can influence) other processors. These are the points at which
    /// the physical-time-interleaved trace generator must suspend a thread
    /// (paper, Sections 2 and 3.1).
    #[inline]
    pub const fn is_global_event(self) -> bool {
        matches!(self.category(), OpCategory::Communication)
    }

    /// True for the blocking (synchronous) communication operations.
    #[inline]
    pub const fn is_blocking_comm(self) -> bool {
        matches!(
            self,
            Operation::Send { .. } | Operation::Recv { .. } | Operation::Get { .. }
        )
    }

    /// The memory address touched, if this operation accesses memory or
    /// fetches an instruction.
    #[inline]
    pub const fn address(self) -> Option<Address> {
        match self {
            Operation::Load { addr, .. }
            | Operation::Store { addr, .. }
            | Operation::IFetch { addr }
            | Operation::Branch { addr }
            | Operation::Call { addr }
            | Operation::Ret { addr } => Some(addr),
            _ => None,
        }
    }

    /// Message payload size in bytes for the send operations.
    #[inline]
    pub const fn message_bytes(self) -> Option<u32> {
        match self {
            Operation::Send { bytes, .. }
            | Operation::ASend { bytes, .. }
            | Operation::Get { bytes, .. }
            | Operation::Put { bytes, .. } => Some(bytes),
            _ => None,
        }
    }

    /// The peer node for communication operations (destination for sends,
    /// source for receives).
    #[inline]
    pub const fn peer(self) -> Option<NodeId> {
        match self {
            Operation::Send { dst, .. }
            | Operation::ASend { dst, .. }
            | Operation::Put { to: dst, .. } => Some(dst),
            Operation::Recv { src }
            | Operation::ARecv { src }
            | Operation::Get { from: src, .. } => Some(src),
            _ => None,
        }
    }

    /// Table 1 mnemonic for this operation.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Operation::Load { .. } => "load",
            Operation::Store { .. } => "store",
            Operation::LoadConst { .. } => "loadc",
            Operation::Arith { op, .. } => op.mnemonic(),
            Operation::IFetch { .. } => "ifetch",
            Operation::Branch { .. } => "branch",
            Operation::Call { .. } => "call",
            Operation::Ret { .. } => "ret",
            Operation::Send { .. } => "send",
            Operation::Recv { .. } => "recv",
            Operation::ASend { .. } => "asend",
            Operation::ARecv { .. } => "arecv",
            Operation::Compute { .. } => "compute",
            Operation::Get { .. } => "get",
            Operation::Put { .. } => "put",
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Operation::Load { ty, addr } => write!(f, "load {ty} {addr:#x}"),
            Operation::Store { ty, addr } => write!(f, "store {ty} {addr:#x}"),
            Operation::LoadConst { ty } => write!(f, "loadc {ty}"),
            Operation::Arith { op, ty } => write!(f, "{op} {ty}"),
            Operation::IFetch { addr } => write!(f, "ifetch {addr:#x}"),
            Operation::Branch { addr } => write!(f, "branch {addr:#x}"),
            Operation::Call { addr } => write!(f, "call {addr:#x}"),
            Operation::Ret { addr } => write!(f, "ret {addr:#x}"),
            Operation::Send { bytes, dst } => write!(f, "send {bytes} {dst}"),
            Operation::Recv { src } => write!(f, "recv {src}"),
            Operation::ASend { bytes, dst } => write!(f, "asend {bytes} {dst}"),
            Operation::ARecv { src } => write!(f, "arecv {src}"),
            Operation::Compute { ps } => write!(f, "compute {ps}"),
            Operation::Get { bytes, from } => write!(f, "get {bytes} {from}"),
            Operation::Put { bytes, to } => write!(f, "put {bytes} {to}"),
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    #[test]
    fn categories_partition_the_operation_set() {
        let samples = sample_ops();
        for op in &samples {
            let c = op.category();
            assert_eq!(
                op.is_computational(),
                !matches!(c, OpCategory::Communication | OpCategory::Task),
                "{op}"
            );
            assert_eq!(op.is_global_event(), c == OpCategory::Communication, "{op}");
        }
    }

    #[test]
    fn addresses_only_on_memory_and_fetch_ops() {
        assert_eq!(
            Operation::Load {
                ty: DataType::I32,
                addr: 0x100
            }
            .address(),
            Some(0x100)
        );
        assert_eq!(Operation::IFetch { addr: 4 }.address(), Some(4));
        assert_eq!(Operation::LoadConst { ty: DataType::F64 }.address(), None);
        assert_eq!(Operation::Compute { ps: 10 }.address(), None);
        assert_eq!(Operation::Send { bytes: 8, dst: 1 }.address(), None);
    }

    #[test]
    fn peers_and_sizes() {
        assert_eq!(Operation::Send { bytes: 64, dst: 3 }.peer(), Some(3));
        assert_eq!(Operation::Recv { src: 2 }.peer(), Some(2));
        assert_eq!(
            Operation::ASend { bytes: 1, dst: 0 }.message_bytes(),
            Some(1)
        );
        assert_eq!(Operation::Recv { src: 2 }.message_bytes(), None);
        assert_eq!(
            Operation::Arith {
                op: ArithOp::Mul,
                ty: DataType::F64
            }
            .peer(),
            None
        );
    }

    #[test]
    fn blocking_vs_async_comm() {
        assert!(Operation::Send { bytes: 4, dst: 1 }.is_blocking_comm());
        assert!(Operation::Recv { src: 1 }.is_blocking_comm());
        assert!(!Operation::ASend { bytes: 4, dst: 1 }.is_blocking_comm());
        assert!(!Operation::ARecv { src: 1 }.is_blocking_comm());
    }

    #[test]
    fn data_type_widths() {
        assert_eq!(DataType::I8.bytes(), 1);
        assert_eq!(DataType::I16.bytes(), 2);
        assert_eq!(DataType::I32.bytes(), 4);
        assert_eq!(DataType::I64.bytes(), 8);
        assert_eq!(DataType::F32.bytes(), 4);
        assert_eq!(DataType::F64.bytes(), 8);
        assert!(DataType::F32.is_float());
        assert!(!DataType::I64.is_float());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(
            Operation::Load {
                ty: DataType::I32,
                addr: 0x1000
            }
            .to_string(),
            "load i32 0x1000"
        );
        assert_eq!(Operation::Compute { ps: 42 }.to_string(), "compute 42");
        assert_eq!(
            Operation::Arith {
                op: ArithOp::Div,
                ty: DataType::F64
            }
            .to_string(),
            "div f64"
        );
    }

    /// One of every operation variant, used by several test modules.
    pub(crate) fn sample_ops() -> Vec<Operation> {
        let mut v = Vec::new();
        for ty in DataType::ALL {
            v.push(Operation::Load { ty, addr: 0x1000 });
            v.push(Operation::Store { ty, addr: 0x2008 });
            v.push(Operation::LoadConst { ty });
            for op in ArithOp::ALL {
                v.push(Operation::Arith { op, ty });
            }
        }
        v.push(Operation::IFetch { addr: 0x40 });
        v.push(Operation::Branch { addr: 0x80 });
        v.push(Operation::Call { addr: 0xc0 });
        v.push(Operation::Ret { addr: 0x44 });
        v.push(Operation::Send { bytes: 256, dst: 5 });
        v.push(Operation::Recv { src: 5 });
        v.push(Operation::ASend {
            bytes: 1024,
            dst: 0,
        });
        v.push(Operation::ARecv { src: 0 });
        v.push(Operation::Compute { ps: 1_000_000 });
        v.push(Operation::Get {
            bytes: 4096,
            from: 3,
        });
        v.push(Operation::Put { bytes: 128, to: 2 });
        v
    }
}
