//! Trace statistics: the operation mix and communication volume of a trace.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::operation::{OpCategory, Operation};

/// Aggregate statistics over a stream of operations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total operations seen.
    pub total: u64,
    /// `load` count.
    pub loads: u64,
    /// `store` count.
    pub stores: u64,
    /// `load constant` count.
    pub load_consts: u64,
    /// Integer arithmetic count.
    pub int_arith: u64,
    /// Floating-point arithmetic count.
    pub float_arith: u64,
    /// `ifetch` count.
    pub ifetches: u64,
    /// Control transfers (`branch` + `call` + `ret`).
    pub control: u64,
    /// Synchronous sends.
    pub sends: u64,
    /// Synchronous receives.
    pub recvs: u64,
    /// Asynchronous sends.
    pub asends: u64,
    /// Asynchronous receives.
    pub arecvs: u64,
    /// `compute` tasks.
    pub computes: u64,
    /// One-sided remote reads.
    pub gets: u64,
    /// One-sided remote writes.
    pub puts: u64,
    /// Bytes fetched by `get` operations.
    pub bytes_fetched: u64,
    /// Total bytes carried by send operations.
    pub bytes_sent: u64,
    /// Total picoseconds of task-level computation.
    pub compute_ps: u64,
}

impl TraceStats {
    /// Gather statistics from an operation stream.
    pub fn from_ops(ops: impl IntoIterator<Item = Operation>) -> Self {
        let mut s = TraceStats::default();
        for op in ops {
            s.record(op);
        }
        s
    }

    /// Record one operation.
    #[inline]
    pub fn record(&mut self, op: Operation) {
        self.total += 1;
        match op {
            Operation::Load { .. } => self.loads += 1,
            Operation::Store { .. } => self.stores += 1,
            Operation::LoadConst { .. } => self.load_consts += 1,
            Operation::Arith { ty, .. } => {
                if ty.is_float() {
                    self.float_arith += 1;
                } else {
                    self.int_arith += 1;
                }
            }
            Operation::IFetch { .. } => self.ifetches += 1,
            Operation::Branch { .. } | Operation::Call { .. } | Operation::Ret { .. } => {
                self.control += 1;
            }
            Operation::Send { bytes, .. } => {
                self.sends += 1;
                self.bytes_sent = self.bytes_sent.saturating_add(bytes as u64);
            }
            Operation::ASend { bytes, .. } => {
                self.asends += 1;
                self.bytes_sent = self.bytes_sent.saturating_add(bytes as u64);
            }
            Operation::Recv { .. } => self.recvs += 1,
            Operation::ARecv { .. } => self.arecvs += 1,
            Operation::Compute { ps } => {
                self.computes += 1;
                // Saturate: statistics must stay well-defined even for
                // adversarial durations.
                self.compute_ps = self.compute_ps.saturating_add(ps);
            }
            Operation::Get { bytes, .. } => {
                self.gets += 1;
                self.bytes_fetched = self.bytes_fetched.saturating_add(bytes as u64);
            }
            Operation::Put { bytes, .. } => {
                self.puts += 1;
                self.bytes_sent = self.bytes_sent.saturating_add(bytes as u64);
            }
        }
    }

    /// Merge another statistics block into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        self.total += other.total;
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_consts += other.load_consts;
        self.int_arith += other.int_arith;
        self.float_arith += other.float_arith;
        self.ifetches += other.ifetches;
        self.control += other.control;
        self.sends += other.sends;
        self.recvs += other.recvs;
        self.asends += other.asends;
        self.arecvs += other.arecvs;
        self.computes += other.computes;
        self.gets += other.gets;
        self.puts += other.puts;
        self.bytes_fetched = self.bytes_fetched.saturating_add(other.bytes_fetched);
        self.bytes_sent = self.bytes_sent.saturating_add(other.bytes_sent);
        self.compute_ps = self.compute_ps.saturating_add(other.compute_ps);
    }

    /// Count in a given category.
    pub fn category(&self, cat: OpCategory) -> u64 {
        match cat {
            OpCategory::MemoryTransfer => self.loads + self.stores + self.load_consts,
            OpCategory::Arithmetic => self.int_arith + self.float_arith,
            OpCategory::InstructionFetch => self.ifetches + self.control,
            OpCategory::Communication => {
                self.sends + self.recvs + self.asends + self.arecvs + self.gets + self.puts
            }
            OpCategory::Task => self.computes,
        }
    }

    /// Fraction of operations in a category (0 when the trace is empty).
    pub fn fraction(&self, cat: OpCategory) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.category(cat) as f64 / self.total as f64
        }
    }

    /// Number of communication operations.
    pub fn comm_ops(&self) -> u64 {
        self.category(OpCategory::Communication)
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "operations: {}", self.total)?;
        for cat in OpCategory::ALL {
            writeln!(
                f,
                "  {:<18} {:>10}  ({:5.1}%)",
                cat.label(),
                self.category(cat),
                100.0 * self.fraction(cat)
            )?;
        }
        writeln!(f, "  bytes sent         {:>10}", self.bytes_sent)?;
        write!(f, "  task compute (ps)  {:>10}", self.compute_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::{ArithOp, DataType};

    #[test]
    fn mix_is_counted_per_variant() {
        let ops = vec![
            Operation::Load {
                ty: DataType::I32,
                addr: 0,
            },
            Operation::Store {
                ty: DataType::I32,
                addr: 0,
            },
            Operation::LoadConst { ty: DataType::F32 },
            Operation::Arith {
                op: ArithOp::Add,
                ty: DataType::I32,
            },
            Operation::Arith {
                op: ArithOp::Mul,
                ty: DataType::F64,
            },
            Operation::IFetch { addr: 0 },
            Operation::Branch { addr: 0 },
            Operation::Call { addr: 0 },
            Operation::Ret { addr: 0 },
            Operation::Send { bytes: 100, dst: 1 },
            Operation::Recv { src: 1 },
            Operation::ASend { bytes: 28, dst: 2 },
            Operation::ARecv { src: 2 },
            Operation::Compute { ps: 77 },
        ];
        let s = TraceStats::from_ops(ops);
        assert_eq!(s.total, 14);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.load_consts, 1);
        assert_eq!(s.int_arith, 1);
        assert_eq!(s.float_arith, 1);
        assert_eq!(s.ifetches, 1);
        assert_eq!(s.control, 3);
        assert_eq!(s.sends, 1);
        assert_eq!(s.recvs, 1);
        assert_eq!(s.asends, 1);
        assert_eq!(s.arecvs, 1);
        assert_eq!(s.computes, 1);
        assert_eq!(s.bytes_sent, 128);
        assert_eq!(s.compute_ps, 77);
    }

    #[test]
    fn categories_sum_to_total() {
        let ops = crate::operation::tests::sample_ops();
        let s = TraceStats::from_ops(ops);
        let by_cat: u64 = OpCategory::ALL.iter().map(|&c| s.category(c)).sum();
        assert_eq!(by_cat, s.total);
    }

    #[test]
    fn fractions_sum_to_one() {
        let ops = crate::operation::tests::sample_ops();
        let s = TraceStats::from_ops(ops);
        let sum: f64 = OpCategory::ALL.iter().map(|&c| s.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_fractions() {
        let s = TraceStats::default();
        assert_eq!(s.fraction(OpCategory::Arithmetic), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let a = TraceStats::from_ops([Operation::Send { bytes: 10, dst: 1 }]);
        let b = TraceStats::from_ops([Operation::Send { bytes: 20, dst: 2 }]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.total, 2);
        assert_eq!(m.sends, 2);
        assert_eq!(m.bytes_sent, 30);
    }

    #[test]
    fn display_renders_all_categories() {
        let s = TraceStats::from_ops(crate::operation::tests::sample_ops());
        let text = s.to_string();
        for cat in OpCategory::ALL {
            assert!(text.contains(cat.label()), "missing {}", cat.label());
        }
    }
}
