//! Trace containers: a per-node operation stream and a multiprocessor set.

use serde::{Deserialize, Serialize};

use crate::operation::{NodeId, Operation};
use crate::stats::TraceStats;

/// The operation trace of one processor (node) of the multicomputer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Which node this trace drives.
    pub node: NodeId,
    /// The operations, in program order.
    pub ops: Vec<Operation>,
}

impl Trace {
    /// An empty trace for `node`.
    pub fn new(node: NodeId) -> Self {
        Trace {
            node,
            ops: Vec::new(),
        }
    }

    /// A trace for `node` with the given operations.
    pub fn from_ops(node: NodeId, ops: Vec<Operation>) -> Self {
        Trace { node, ops }
    }

    /// Append one operation.
    #[inline]
    pub fn push(&mut self, op: Operation) {
        self.ops.push(op);
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace holds no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate over the operations in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }

    /// The operations as a shared immutable slice: one allocation that any
    /// number of consumers (e.g. the abstract processors of a simulation)
    /// can hold without further copies or borrowing the trace.
    pub fn shared_ops(&self) -> std::sync::Arc<[Operation]> {
        std::sync::Arc::from(self.ops.as_slice())
    }

    /// Compute the statistics (operation mix) of this trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_ops(self.ops.iter().copied())
    }

    /// Split this instruction-level trace at its *global events*: returns
    /// runs of computational operations separated by the communication
    /// operations. This is the structure the hybrid model exploits — each
    /// computational run becomes one task once the computational model has
    /// measured its simulated duration (paper, Section 3.2).
    pub fn split_at_global_events(&self) -> Vec<TraceSegment<'_>> {
        let mut segments = Vec::new();
        let mut run_start = 0usize;
        for (i, op) in self.ops.iter().enumerate() {
            if op.is_global_event() {
                segments.push(TraceSegment {
                    computation: &self.ops[run_start..i],
                    comm: Some(*op),
                });
                run_start = i + 1;
            }
        }
        if run_start < self.ops.len() {
            segments.push(TraceSegment {
                computation: &self.ops[run_start..],
                comm: None,
            });
        }
        segments
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

/// A run of computational operations, terminated by the following global
/// (communication) event, or by end-of-trace (`comm == None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSegment<'a> {
    /// The computational operations preceding the event.
    pub computation: &'a [Operation],
    /// The terminating communication operation, if any.
    pub comm: Option<Operation>,
}

/// The traces of all nodes of a multicomputer, indexed by node id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

impl TraceSet {
    /// An empty set of `nodes` traces (node ids `0..nodes`).
    pub fn new(nodes: usize) -> Self {
        TraceSet {
            traces: (0..nodes).map(|n| Trace::new(n as NodeId)).collect(),
        }
    }

    /// Build from per-node traces. Panics unless trace `i` is for node `i`.
    pub fn from_traces(traces: Vec<Trace>) -> Self {
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(
                t.node as usize, i,
                "trace {i} claims node {}, expected {i}",
                t.node
            );
        }
        TraceSet { traces }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.traces.len()
    }

    /// The trace of `node`.
    pub fn trace(&self, node: NodeId) -> &Trace {
        &self.traces[node as usize]
    }

    /// Mutable access to the trace of `node`.
    pub fn trace_mut(&mut self, node: NodeId) -> &mut Trace {
        &mut self.traces[node as usize]
    }

    /// Iterate over all traces in node order.
    pub fn iter(&self) -> std::slice::Iter<'_, Trace> {
        self.traces.iter()
    }

    /// Total operations across all nodes.
    pub fn total_ops(&self) -> usize {
        self.traces.iter().map(Trace::len).sum()
    }

    /// Aggregate statistics over all nodes.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_ops(self.traces.iter().flat_map(|t| t.ops.iter().copied()))
    }

    /// Check cross-node communication consistency: every synchronous or
    /// asynchronous send to `d` has a matching receive on `d` from the
    /// sender, and vice versa. Returns the list of violations (empty when
    /// the trace set is well formed).
    pub fn comm_imbalances(&self) -> Vec<CommImbalance> {
        use std::collections::HashMap;
        // (src, dst) -> (sends, recvs)
        let mut chans: HashMap<(NodeId, NodeId), (usize, usize)> = HashMap::new();
        for t in &self.traces {
            for op in &t.ops {
                match *op {
                    Operation::Send { dst, .. } | Operation::ASend { dst, .. } => {
                        chans.entry((t.node, dst)).or_default().0 += 1;
                    }
                    Operation::Recv { src } | Operation::ARecv { src } => {
                        chans.entry((src, t.node)).or_default().1 += 1;
                    }
                    _ => {}
                }
            }
        }
        let mut out: Vec<CommImbalance> = chans
            .into_iter()
            .filter(|&(_, (s, r))| s != r)
            .map(|((src, dst), (sends, recvs))| CommImbalance {
                src,
                dst,
                sends,
                recvs,
            })
            .collect();
        out.sort_by_key(|i| (i.src, i.dst));
        out
    }
}

/// A mismatch between sends and receives on one directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommImbalance {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Send operations observed on `src` targeting `dst`.
    pub sends: usize,
    /// Receive operations observed on `dst` naming `src`.
    pub recvs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::{ArithOp, DataType};

    fn comp(n: usize) -> Vec<Operation> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Operation::Arith {
                        op: ArithOp::Add,
                        ty: DataType::I32,
                    }
                } else {
                    Operation::Load {
                        ty: DataType::I32,
                        addr: 0x1000 + 4 * i as u64,
                    }
                }
            })
            .collect()
    }

    #[test]
    fn push_and_iterate() {
        let mut t = Trace::new(0);
        assert!(t.is_empty());
        for op in comp(5) {
            t.push(op);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.iter().count(), 5);
    }

    #[test]
    fn split_at_global_events_structures_the_trace() {
        let mut t = Trace::new(0);
        for op in comp(3) {
            t.push(op);
        }
        t.push(Operation::Send { bytes: 8, dst: 1 });
        for op in comp(2) {
            t.push(op);
        }
        t.push(Operation::Recv { src: 1 });
        t.push(Operation::Ret { addr: 0 });

        let segs = t.split_at_global_events();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].computation.len(), 3);
        assert_eq!(segs[0].comm, Some(Operation::Send { bytes: 8, dst: 1 }));
        assert_eq!(segs[1].computation.len(), 2);
        assert_eq!(segs[1].comm, Some(Operation::Recv { src: 1 }));
        assert_eq!(segs[2].computation.len(), 1);
        assert_eq!(segs[2].comm, None);
    }

    #[test]
    fn split_handles_leading_and_consecutive_events() {
        let mut t = Trace::new(0);
        t.push(Operation::Recv { src: 1 });
        t.push(Operation::Send { bytes: 4, dst: 1 });
        let segs = t.split_at_global_events();
        assert_eq!(segs.len(), 2);
        assert!(segs[0].computation.is_empty());
        assert!(segs[1].computation.is_empty());
    }

    #[test]
    fn empty_trace_has_no_segments() {
        assert!(Trace::new(3).split_at_global_events().is_empty());
    }

    #[test]
    fn trace_set_indexing() {
        let mut ts = TraceSet::new(4);
        assert_eq!(ts.nodes(), 4);
        ts.trace_mut(2).push(Operation::Compute { ps: 5 });
        assert_eq!(ts.trace(2).len(), 1);
        assert_eq!(ts.total_ops(), 1);
        assert_eq!(ts.iter().count(), 4);
    }

    #[test]
    #[should_panic(expected = "claims node")]
    fn from_traces_rejects_misordered_nodes() {
        TraceSet::from_traces(vec![Trace::new(1)]);
    }

    #[test]
    fn balanced_communication_has_no_imbalances() {
        let mut ts = TraceSet::new(2);
        ts.trace_mut(0).push(Operation::Send { bytes: 8, dst: 1 });
        ts.trace_mut(1).push(Operation::Recv { src: 0 });
        ts.trace_mut(1).push(Operation::ASend { bytes: 4, dst: 0 });
        ts.trace_mut(0).push(Operation::ARecv { src: 1 });
        assert!(ts.comm_imbalances().is_empty());
    }

    #[test]
    fn imbalanced_communication_is_reported() {
        let mut ts = TraceSet::new(3);
        ts.trace_mut(0).push(Operation::Send { bytes: 8, dst: 1 });
        ts.trace_mut(0).push(Operation::Send { bytes: 8, dst: 1 });
        ts.trace_mut(1).push(Operation::Recv { src: 0 });
        ts.trace_mut(2).push(Operation::Recv { src: 0 });
        let imb = ts.comm_imbalances();
        assert_eq!(imb.len(), 2);
        assert_eq!(
            imb[0],
            CommImbalance {
                src: 0,
                dst: 1,
                sends: 2,
                recvs: 1
            }
        );
        assert_eq!(
            imb[1],
            CommImbalance {
                src: 0,
                dst: 2,
                sends: 0,
                recvs: 1
            }
        );
    }
}
