//! Trace files: persist traces and trace sets on disk.
//!
//! Application descriptions "only have to be made once, after which they
//! can be used to evaluate a wide range of architectures" (paper,
//! Section 3) — which implies traces live on disk between workbench
//! sessions. One file per node (`node-<id>.mmd`, binary codec) under a
//! directory, plus the text format for human inspection.

use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::Path;

use crate::codec::{self, DecodeError};
use crate::trace::{Trace, TraceSet};

/// Errors from trace-file I/O.
#[derive(Debug)]
pub enum FileError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file contents failed to decode.
    Decode(DecodeError),
    /// The directory holds no trace files.
    Empty,
    /// Node files are not a dense `0..n` set.
    MissingNode(u32),
}

impl std::fmt::Display for FileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileError::Io(e) => write!(f, "I/O error: {e}"),
            FileError::Decode(e) => write!(f, "decode error: {e}"),
            FileError::Empty => write!(f, "no trace files found"),
            FileError::MissingNode(n) => write!(f, "missing trace file for node {n}"),
        }
    }
}

impl std::error::Error for FileError {}

impl From<io::Error> for FileError {
    fn from(e: io::Error) -> Self {
        FileError::Io(e)
    }
}

impl From<DecodeError> for FileError {
    fn from(e: DecodeError) -> Self {
        FileError::Decode(e)
    }
}

/// File name of one node's trace within a trace-set directory.
pub fn node_file_name(node: u32) -> String {
    format!("node-{node:05}.mmd")
}

/// Write one trace (binary codec) to `path`.
pub fn save_trace(trace: &Trace, path: &Path) -> Result<(), FileError> {
    let bytes = codec::encode_trace(trace);
    let mut f = fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Read one trace (binary codec) from `path`.
pub fn load_trace(path: &Path) -> Result<Trace, FileError> {
    let mut buf = Vec::new();
    fs::File::open(path)?.read_to_end(&mut buf)?;
    Ok(codec::decode_trace(bytes::Bytes::from(buf))?)
}

/// Write a trace set as one file per node under `dir` (created if absent).
pub fn save_trace_set(set: &TraceSet, dir: &Path) -> Result<(), FileError> {
    fs::create_dir_all(dir)?;
    for trace in set.iter() {
        save_trace(trace, &dir.join(node_file_name(trace.node)))?;
    }
    Ok(())
}

/// Load a trace set from `dir`: expects the dense node files written by
/// [`save_trace_set`].
pub fn load_trace_set(dir: &Path) -> Result<TraceSet, FileError> {
    let mut count = 0u32;
    while dir.join(node_file_name(count)).exists() {
        count += 1;
    }
    if count == 0 {
        return Err(FileError::Empty);
    }
    let mut traces = Vec::with_capacity(count as usize);
    for node in 0..count {
        let path = dir.join(node_file_name(node));
        if !path.exists() {
            return Err(FileError::MissingNode(node));
        }
        let t = load_trace(&path)?;
        if t.node != node {
            return Err(FileError::MissingNode(node));
        }
        traces.push(t);
    }
    Ok(TraceSet::from_traces(traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Operation;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mermaid-ops-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_set(nodes: u32) -> TraceSet {
        let mut ts = TraceSet::new(nodes as usize);
        for n in 0..nodes {
            for op in crate::operation::tests::sample_ops() {
                ts.trace_mut(n).push(op);
            }
            ts.trace_mut(n)
                .push(Operation::Compute { ps: n as u64 + 1 });
        }
        ts
    }

    #[test]
    fn single_trace_roundtrips_through_a_file() {
        let dir = tmpdir("single");
        let t = sample_set(1).trace(0).clone();
        let path = dir.join("t.mmd");
        save_trace(&t, &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back, t);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn trace_set_roundtrips_through_a_directory() {
        let dir = tmpdir("set");
        let ts = sample_set(5);
        save_trace_set(&ts, &dir).unwrap();
        let back = load_trace_set(&dir).unwrap();
        assert_eq!(back, ts);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = tmpdir("empty");
        assert!(matches!(load_trace_set(&dir), Err(FileError::Empty)));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_a_decode_error() {
        let dir = tmpdir("corrupt");
        fs::write(dir.join(node_file_name(0)), b"garbage").unwrap();
        assert!(matches!(
            load_trace_set(&dir),
            Err(FileError::Decode(_)) | Err(FileError::Io(_))
        ));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn node_file_names_are_stable_and_sortable() {
        assert_eq!(node_file_name(0), "node-00000.mmd");
        assert_eq!(node_file_name(12345), "node-12345.mmd");
    }
}
