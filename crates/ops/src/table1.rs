//! Regenerates **Table 1** of the paper: the computational and
//! communication operation sets with their descriptions.

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Operation signature as printed in the paper.
    pub signature: &'static str,
    /// The paper's description column.
    pub description: &'static str,
    /// Whether the row belongs to the computational or communication set.
    pub section: Table1Section,
}

/// Which half of Table 1 a row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table1Section {
    /// Computational operations (abstract machine instructions).
    Computational,
    /// Communication operations (message passing + task-level compute).
    Communication,
}

/// The rows of Table 1, in paper order.
pub const TABLE1: &[Table1Row] = &[
    Table1Row {
        signature: "load(mem-type, address) / store(mem-type, address)",
        description: "Accessing memory",
        section: Table1Section::Computational,
    },
    Table1Row {
        signature: "load([f]constant)",
        description: "Loading an immediate constant",
        section: Table1Section::Computational,
    },
    Table1Row {
        signature: "add(type) sub(type) mul(type) div(type)",
        description: "Performing arithmetic",
        section: Table1Section::Computational,
    },
    Table1Row {
        signature: "ifetch(address) branch(address)",
        description: "Instruction fetching",
        section: Table1Section::Computational,
    },
    Table1Row {
        signature: "call(address) ret(address)",
        description: "Function call / return",
        section: Table1Section::Computational,
    },
    Table1Row {
        signature: "send(message-size, destination) recv(source)",
        description: "Synchronous communication",
        section: Table1Section::Communication,
    },
    Table1Row {
        signature: "asend(message-size, destination) arecv(source)",
        description: "Asynchronous communication",
        section: Table1Section::Communication,
    },
    Table1Row {
        signature: "compute(duration)",
        description: "Computation",
        section: Table1Section::Communication,
    },
];

/// Render Table 1 as ASCII (the shape the paper prints).
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("Table 1. Trace events or operations\n\n");
    for section in [Table1Section::Computational, Table1Section::Communication] {
        out.push_str(match section {
            Table1Section::Computational => "Computational operations:\n",
            Table1Section::Communication => "Communication operations:\n",
        });
        for row in TABLE1.iter().filter(|r| r.section == section) {
            out.push_str(&format!("  {:<52} {}\n", row.signature, row.description));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::{ArithOp, DataType, Operation};

    #[test]
    fn table1_lists_both_sections() {
        let comp = TABLE1
            .iter()
            .filter(|r| r.section == Table1Section::Computational)
            .count();
        let comm = TABLE1
            .iter()
            .filter(|r| r.section == Table1Section::Communication)
            .count();
        assert_eq!(comp, 5);
        assert_eq!(comm, 3);
    }

    /// Every mnemonic printed in Table 1 is constructible as an
    /// [`Operation`] — the enum covers the paper's operation set exactly.
    #[test]
    fn every_table1_mnemonic_is_an_operation() {
        let ops = [
            Operation::Load {
                ty: DataType::I32,
                addr: 0,
            },
            Operation::Store {
                ty: DataType::I32,
                addr: 0,
            },
            Operation::LoadConst { ty: DataType::F64 },
            Operation::Arith {
                op: ArithOp::Add,
                ty: DataType::I32,
            },
            Operation::Arith {
                op: ArithOp::Sub,
                ty: DataType::I32,
            },
            Operation::Arith {
                op: ArithOp::Mul,
                ty: DataType::I32,
            },
            Operation::Arith {
                op: ArithOp::Div,
                ty: DataType::I32,
            },
            Operation::IFetch { addr: 0 },
            Operation::Branch { addr: 0 },
            Operation::Call { addr: 0 },
            Operation::Ret { addr: 0 },
            Operation::Send { bytes: 1, dst: 0 },
            Operation::Recv { src: 0 },
            Operation::ASend { bytes: 1, dst: 0 },
            Operation::ARecv { src: 0 },
            Operation::Compute { ps: 1 },
        ];
        let mnemonics: Vec<&str> = ops.iter().map(|o| o.mnemonic()).collect();
        let all_sigs: String = TABLE1
            .iter()
            .map(|r| r.signature)
            .collect::<Vec<_>>()
            .join(" ");
        for m in [
            "load", "store", "add", "sub", "mul", "div", "ifetch", "branch", "call", "ret", "send",
            "recv", "asend", "arecv", "compute",
        ] {
            assert!(mnemonics.contains(&m), "enum missing {m}");
            assert!(all_sigs.contains(m), "table missing {m}");
        }
    }

    #[test]
    fn render_returns_the_table() {
        let text = render();
        assert!(text.contains("Table 1"));
        assert!(text.contains("Synchronous communication"));
        assert!(text.contains("ifetch(address)"));
        // Every row's signature appears in the rendered text; rendering is
        // pure (the caller decides where the string goes).
        for row in TABLE1 {
            assert!(text.contains(row.signature), "missing {}", row.signature);
        }
        assert_eq!(render(), text);
    }
}
