//! Protocol-overhead probe for the sharded runner (BENCH_pr10 harness).
//!
//! Runs the comm-heavy 8×8 torus all-to-all workload (the exact
//! `sharded_comm` bench configuration) serially and on 2/4 shards,
//! printing one JSON object per line with the wall time and the shard
//! self-profile's protocol counters (barrier rounds, cross-shard channel
//! sends, window widths). `BENCH_pr10.json` records a before/after pair
//! of these lines; re-run with
//! `cargo run --release -p mermaid-bench --example shard_protocol_stats`.

use mermaid::prelude::*;

fn comm_heavy(nodes: u32) -> TraceSet {
    let app = StochasticApp {
        phases: 12,
        pattern: CommPattern::AllToAll,
        msg_bytes: SizeDist::Fixed(4096),
        task_ps: SizeDist::Fixed(200_000),
        ..StochasticApp::scientific(nodes)
    };
    StochasticGenerator::new(app, 7).generate_task_level()
}

fn main() {
    let topo = Topology::Torus2D { w: 8, h: 8 };
    let cfg = NetworkConfig::test(topo);
    let traces = comm_heavy(topo.nodes());
    let samples = 5usize;

    let serial = TaskLevelSim::new(cfg).run(&traces);
    assert!(serial.comm.all_done);
    let time = |shards: usize| {
        let mut best = u128::MAX;
        for _ in 0..samples {
            let ts = traces.clone();
            let t0 = std::time::Instant::now();
            let r = TaskLevelSim::new(cfg).with_shards(shards).run(&ts);
            best = best.min(t0.elapsed().as_nanos());
            assert_eq!(r.predicted_time, serial.predicted_time);
        }
        best
    };

    let serial_ns = time(1);
    println!("{{\"config\":\"torus8x8_all2all_12ph\",\"serial_min_ns\":{serial_ns}}}");
    for shards in [2usize, 4] {
        let r = TaskLevelSim::new(cfg).with_shards(shards).run(&traces);
        assert_eq!(r.predicted_time, serial.predicted_time);
        let p = r.shard_profile.expect("sharded run self-profiles");
        let windows: u64 = p.shards.iter().map(|s| s.windows).sum();
        let cross: u64 = p.shards.iter().map(|s| s.cross_sent).sum();
        // Channel operations: one per batch post-PR10, one per message
        // before (the before/after "cross-shard sends" comparison).
        let batches = p.total_flush_batches();
        let commits = p.total_spec_commits();
        let rollbacks = p.total_spec_rollbacks();
        let ns = time(shards);
        println!(
            "{{\"shards\":{shards},\"min_ns\":{ns},\"ratio_vs_serial\":{:.3},\
             \"barrier_rounds_total\":{windows},\"cross_shard_msgs\":{cross},\
             \"cross_shard_sends\":{batches},\"spec_commits\":{commits},\
             \"spec_rollbacks\":{rollbacks}}}",
            serial_ns as f64 / ns as f64
        );
    }
}
