//! **Figure F4** — the workload-modelling framework (paper Fig. 4).
//!
//! Fig. 4 spans a 2×2 space: workloads are *reality-based* (instrumented
//! programs) or *stochastic*, and computation is modelled at the
//! *instruction level* (single-node model) or the *task level* (multi-node
//! model). The paper's implementation covered only the reality-based ×
//! instruction-level quadrant (the shaded area); this reproduction
//! implements all four. This bench exercises each quadrant end to end and
//! times its generation+simulation pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use mermaid::prelude::*;
use mermaid_bench::t805_16;
use mermaid_stats::table::Align;
use mermaid_stats::Table;
use mermaid_tracegen::annotate::TargetLayout;
use mermaid_tracegen::programs::jacobi1d;
use mermaid_tracegen::InterleavedTraceGen;
use std::time::Instant;

/// A named workload path: label plus a runnable pipeline.
type Quadrant = (&'static str, Box<dyn Fn() -> pearl::Time>);

fn quadrants() -> [Quadrant; 4] {
    let machine = t805_16();
    let m1 = machine.clone();
    let m2 = machine.clone();
    let m3 = machine.clone();
    let m4 = machine;
    [
        (
            "reality-based × instruction-level (paper's shaded path)",
            Box::new(move || {
                let traces = InterleavedTraceGen::spawn(16, TargetLayout::default(), move |ctx| {
                    jacobi1d(ctx, 16, 32, 4)
                })
                .collect_all();
                HybridSim::new(m1.clone()).run(&traces).predicted_time
            }),
        ),
        (
            "reality-based × task-level (measured tasks replayed)",
            Box::new(move || {
                let traces = InterleavedTraceGen::spawn(16, TargetLayout::default(), move |ctx| {
                    jacobi1d(ctx, 16, 32, 4)
                })
                .collect_all();
                let hybrid = HybridSim::new(m2.clone()).run(&traces);
                TaskLevelSim::new(m2.network)
                    .run(&hybrid.task_traces)
                    .predicted_time
            }),
        ),
        (
            "stochastic × instruction-level",
            Box::new(move || {
                let app = StochasticApp {
                    phases: 4,
                    ops_per_phase: SizeDist::Fixed(3_000),
                    ..StochasticApp::scientific(16)
                };
                let traces = StochasticGenerator::new(app, 3).generate();
                HybridSim::new(m3.clone()).run(&traces).predicted_time
            }),
        ),
        (
            "stochastic × task-level",
            Box::new(move || {
                let app = StochasticApp {
                    phases: 4,
                    ..StochasticApp::scientific(16)
                };
                let traces = StochasticGenerator::new(app, 3).generate_task_level();
                TaskLevelSim::new(m4.network).run(&traces).predicted_time
            }),
        ),
    ]
}

fn print_f4_rows() {
    let mut t = Table::new(["workload path (Fig. 4 quadrant)", "predicted", "host ms"])
        .with_aligns(vec![Align::Left, Align::Right, Align::Right])
        .with_title("F4: all four workload-modelling paths, 16-node T805 mesh");
    for (name, run) in quadrants() {
        let t0 = Instant::now();
        let predicted = run();
        t.row([
            name.to_string(),
            format!("{predicted}"),
            format!("{:.2}", t0.elapsed().as_secs_f64() * 1e3),
        ]);
    }
    eprintln!("\n=== F4: workload modelling framework (paper supported only the first path) ===");
    eprintln!("{}", t.render());
}

fn bench(c: &mut Criterion) {
    print_f4_rows();

    let mut g = c.benchmark_group("f4_paths");
    g.sample_size(10);
    for (name, run) in quadrants() {
        let short = name.split(' ').next().unwrap().to_string()
            + "_"
            + if name.contains("instruction") {
                "instr"
            } else {
                "task"
            };
        g.bench_function(short, move |b| b.iter(&run));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
