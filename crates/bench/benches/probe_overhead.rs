//! **Probe overhead** — the instrumentation layer's two costs.
//!
//! 1. Disabled (`ProbeHandle::disabled()`): every emission site is one
//!    branch on a `None`; the event-construction closure never runs. The
//!    `off` group must match the uninstrumented medians of E2 — this is
//!    the zero-cost-when-disabled guarantee the probe design rests on.
//! 2. Enabled with the full sink stack (metrics + Chrome trace + JSONL +
//!    self-profiler): the `on` group measures the worst-case observation
//!    tax, and the self-profiler's log₂ histogram of per-event host
//!    latency is printed so the tax can be attributed.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mermaid::prelude::*;
use mermaid_bench::{e2_app, t805_16};

fn print_host_latency_histogram() {
    // One fully-instrumented run; render the profiler's per-event host
    // latency histogram as ASCII bars.
    let traces = StochasticGenerator::new(e2_app(16, 500_000, 8_192, 50), 7).generate_task_level();
    let probe = ProbeHandle::new(
        ProbeStack::new()
            .with_metrics()
            .with_chrome()
            .with_jsonl()
            .with_profiler(mermaid::host_frequency().as_hz() as f64),
    );
    let r = TaskLevelSim::new(t805_16().network)
        .with_probe(probe.clone())
        .run(&traces);
    assert!(r.comm.all_done);
    let profile = probe.host_profile().expect("profiler attached");
    eprintln!("\n=== probe self-profile (full sink stack, balanced E2 workload) ===");
    eprintln!("{}", profile.render());
    eprintln!("per-event host latency histogram (ns, log2 buckets):");
    let total = profile.event_host_ns.count().max(1);
    for (lo, count) in profile.event_host_ns.iter_nonempty() {
        let share = count as f64 / total as f64;
        let bar = "#".repeat((share * 60.0).ceil() as usize);
        eprintln!("  >= {lo:>8} ns  {count:>9}  {bar}");
    }
}

fn bench(c: &mut Criterion) {
    print_host_latency_histogram();

    let traces = StochasticGenerator::new(e2_app(16, 500_000, 8_192, 50), 7).generate_task_level();

    let mut g = c.benchmark_group("probe_overhead");
    g.sample_size(20);
    g.bench_function("off", |b| {
        b.iter_batched(
            || traces.clone(),
            |ts| TaskLevelSim::new(t805_16().network).run(&ts),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("attribution", |b| {
        b.iter_batched(
            || traces.clone(),
            |ts| {
                let probe = ProbeHandle::new(ProbeStack::new().with_attribution());
                TaskLevelSim::new(t805_16().network)
                    .with_probe(probe)
                    .run(&ts)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("on", |b| {
        b.iter_batched(
            || traces.clone(),
            |ts| {
                let probe = ProbeHandle::new(
                    ProbeStack::new()
                        .with_metrics()
                        .with_chrome()
                        .with_jsonl()
                        .with_profiler(mermaid::host_frequency().as_hz() as f64),
                );
                TaskLevelSim::new(t805_16().network)
                    .with_probe(probe)
                    .run(&ts)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
