//! **PR 8** — serial wall clock of the communication hot path.
//!
//! The ECS/arena refactor (DESIGN.md §15) flattens routers/processors into
//! struct-of-arrays slabs with static dispatch, makes event payloads `Copy`,
//! and removes per-message allocation and hashing from the router/processor
//! hot path. This bench pins the serial number the refactor is judged by:
//! the same comm-heavy 8×8 torus workload as `sharded_comm`, timed without
//! sharding so the delta is pure event-loop cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mermaid::prelude::*;

/// A communication-dominated workload: all-to-all traffic on a torus,
/// enough phases to keep every router busy (same as `sharded_comm`).
fn comm_heavy(nodes: u32, phases: u32) -> TraceSet {
    let app = StochasticApp {
        phases,
        pattern: CommPattern::AllToAll,
        msg_bytes: SizeDist::Fixed(4096),
        task_ps: SizeDist::Fixed(200_000),
        ..StochasticApp::scientific(nodes)
    };
    StochasticGenerator::new(app, 7).generate_task_level()
}

fn bench(c: &mut Criterion) {
    // `MERMAID_BENCH_QUICK=1` (used by scripts/check.sh) shrinks the run
    // to a CI-sized smoke: same code path, a fraction of the wall clock.
    let quick = std::env::var_os("MERMAID_BENCH_QUICK").is_some();
    let (topo, phases, samples) = if quick {
        (Topology::Torus2D { w: 4, h: 4 }, 3, 3)
    } else {
        (Topology::Torus2D { w: 8, h: 8 }, 12, 10)
    };
    let cfg = NetworkConfig::test(topo);
    let traces = comm_heavy(topo.nodes(), phases);

    let serial = TaskLevelSim::new(cfg).run(&traces);
    assert!(serial.comm.all_done);

    let mut g = c.benchmark_group("pr8_arena");
    g.sample_size(samples);
    let name = if quick {
        "torus4x4_all2all/serial-quick"
    } else {
        "torus8x8_all2all/serial"
    };
    g.bench_function(name, |b| {
        b.iter_batched(
            || traces.clone(),
            |ts| TaskLevelSim::new(cfg).run(&ts),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
