//! **Experiment E3** — simulator memory usage (paper Section 6).
//!
//! "Since Mermaid does not interpret machine instructions, it is not
//! necessary to store large quantities of state information during
//! simulation runs. For example, the contents of the memory does not have
//! to be modelled and simulated caches only need to hold addresses (tags),
//! not data. As a consequence, the simulation of parallel platforms is
//! only constrained by the memory consumption of the (threaded)
//! trace-generating applications."
//!
//! We sweep the node count and report the model footprint per node (flat)
//! and in total (linear), and contrast it with what a data-carrying
//! simulator would additionally hold. The bench times model construction
//! to show it stays cheap at scale.

use criterion::{criterion_group, criterion_main, Criterion};
use mermaid::prelude::*;
use mermaid::ModelFootprint;
use mermaid_stats::table::Align;
use mermaid_stats::Table;

fn print_e3_rows() {
    let mut t = Table::new([
        "nodes",
        "model B/node",
        "model total",
        "simulated cache B/node",
        "data-carrying total",
    ])
    .with_aligns(vec![Align::Right; 5])
    .with_title("E3: tags-only model footprint vs node count (PowerPC 601 nodes, 2 cache levels)");
    for nodes in [4u32, 16, 64, 256, 1024] {
        // A ring of the right size keeps topology cost out of the picture.
        let machine = MachineConfig::powerpc601_cluster(Topology::Ring(nodes), 1);
        let f = ModelFootprint::of(&machine);
        t.row([
            nodes.to_string(),
            f.bytes_per_node.to_string(),
            format!("{:.2} MiB", f.total_bytes as f64 / (1024.0 * 1024.0)),
            f.simulated_cache_bytes_per_node.to_string(),
            format!(
                "{:.2} MiB",
                (f.total_bytes as u64 + f.simulated_cache_bytes_per_node * nodes as u64) as f64
                    / (1024.0 * 1024.0)
            ),
        ]);
    }
    eprintln!("\n=== E3: memory usage (paper: tags only, growth linear in nodes, data-free) ===");
    eprintln!("{}", t.render());
}

fn bench(c: &mut Criterion) {
    print_e3_rows();

    let mut g = c.benchmark_group("e3_memory");
    g.sample_size(10);
    for nodes in [16u32, 64, 256] {
        g.bench_function(format!("build_models_{nodes}_nodes"), |b| {
            b.iter(|| {
                // Build every node's computational model (the dominant
                // state) as a full detailed simulation would.
                let machine = MachineConfig::powerpc601_cluster(Topology::Ring(nodes), 1);
                let sims: Vec<_> = (0..nodes)
                    .map(|_| mermaid_cpu::SingleNodeSim::new(machine.cpu, machine.node_mem.clone()))
                    .collect();
                sims.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
