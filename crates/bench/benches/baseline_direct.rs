//! **Experiment E4** — comparison against the direct-execution technique
//! (paper Section 2 / Section 6).
//!
//! Direct-execution simulators (Tango, Proteus, WWT) "typically obtain a
//! slowdown of between 2 and a few hundred" — much faster than Mermaid's
//! detailed mode — but "the performance evaluation of instruction or
//! private data caches can only be marginally performed" because local
//! instructions are statically costed at compile time.
//!
//! Both halves are measured here on the same traces:
//! 1. **Speed**: the direct baseline runs much faster than the hybrid mode
//!    (it skips the cache/bus/DRAM model entirely).
//! 2. **Blindness**: sweep the application's working set across the cache
//!    size — the hybrid prediction responds, the baseline's cannot.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mermaid::prelude::*;
use mermaid::DirectExecSim;
use mermaid_bench::{e1_app, t805_16};
use mermaid_stats::table::Align;
use mermaid_stats::Table;

fn print_e4_rows() {
    // Blindness sweep: working set from cache-resident to cache-hostile.
    let mut t = Table::new([
        "working set",
        "hybrid predicts",
        "direct predicts",
        "direct error%",
    ])
    .with_aligns(vec![Align::Right; 4])
    .with_title("E4: cache blindness of direct execution (t805×16, same traces)");
    for ws in [2 * 1024u64, 8 * 1024, 64 * 1024, 512 * 1024] {
        let app = StochasticApp {
            working_set: ws,
            ..e1_app(16, CommPattern::NearestNeighborRing, 10_000)
        };
        let traces = StochasticGenerator::new(app, 13).generate();
        let hybrid = HybridSim::new(t805_16()).run(&traces);
        let direct = DirectExecSim::new(t805_16()).run(&traces);
        let err = 100.0
            * (direct.predicted_time.as_ps() as f64 - hybrid.predicted_time.as_ps() as f64)
            / hybrid.predicted_time.as_ps() as f64;
        t.row([
            format!("{} KiB", ws / 1024),
            format!("{}", hybrid.predicted_time),
            format!("{}", direct.predicted_time),
            format!("{err:+.1}"),
        ]);
    }
    eprintln!("\n=== E4: direct-execution baseline (paper: fast but cache-blind) ===");
    eprintln!("{}", t.render());
    eprintln!("expected shape: |error| grows as the working set leaves the 4 KiB on-chip RAM.");
}

fn bench(c: &mut Criterion) {
    print_e4_rows();

    let traces = StochasticGenerator::new(e1_app(16, CommPattern::NearestNeighborRing, 5_000), 13)
        .generate();
    let mut g = c.benchmark_group("e4_baseline");
    g.sample_size(10);
    g.bench_function("hybrid_detailed", |b| {
        b.iter_batched(
            || traces.clone(),
            |ts| HybridSim::new(t805_16()).run(&ts),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("direct_execution", |b| {
        b.iter_batched(
            || traces.clone(),
            |ts| DirectExecSim::new(t805_16()).run(&ts),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
