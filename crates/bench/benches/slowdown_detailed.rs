//! **Experiment E1** — detailed-mode slowdown per simulated processor
//! (paper Section 6).
//!
//! The paper measures a T805 multicomputer and a PowerPC 601 single node
//! (two cache levels) under a mix of application loads on a 143 MHz
//! UltraSPARC host, reporting a typical slowdown of **750–4 000 per
//! processor** (≈30 000–200 000 simulated cycles per host second).
//!
//! This bench regenerates those rows on the build host. Absolute values
//! are far lower (compiled Rust vs interpreted-ish Pearl, three decades of
//! host progress); the shape to verify is: detailed-mode slowdown is large
//! compared with the task-level mode (E2), and communication-light loads
//! simulate faster per target cycle than cache-stressing ones.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mermaid::prelude::*;
use mermaid::{report, SlowdownMeter};
use mermaid_bench::{e1_app, t805_16};

/// Print the paper-style table once, before the timing runs.
fn print_e1_rows() {
    let mut rows = Vec::new();
    for (label, pattern) in [
        ("t805×16, nn-ring phases", CommPattern::NearestNeighborRing),
        ("t805×16, all-to-all phases", CommPattern::AllToAll),
        ("t805×16, master-worker phases", CommPattern::MasterWorker),
    ] {
        let traces = StochasticGenerator::new(e1_app(16, pattern, 20_000), 5).generate();
        let machine = t805_16();
        let meter = SlowdownMeter::start(16, machine.cpu.clock);
        let r = HybridSim::new(machine).run(&traces);
        assert!(r.comm.all_done);
        rows.push((label.to_string(), meter.finish(r.predicted_time)));
    }
    {
        let app = StochasticApp {
            nodes: 1,
            phases: 1,
            ops_per_phase: SizeDist::Fixed(400_000),
            pattern: CommPattern::None,
            ..StochasticApp::scientific(1)
        };
        let traces = StochasticGenerator::new(app, 6).generate();
        let machine = MachineConfig::powerpc601_node(1);
        let mut sim = mermaid_cpu::SingleNodeSim::new(machine.cpu, machine.node_mem.clone());
        let meter = SlowdownMeter::start(1, machine.cpu.clock);
        let refs: Vec<&Trace> = traces.iter().collect();
        let res = sim.run(&refs);
        rows.push((
            "ppc601×1, two cache levels".to_string(),
            meter.finish(res.finish),
        ));
    }
    eprintln!("\n=== E1: detailed-mode slowdown (paper: 750–4000×/proc on 143 MHz host) ===");
    eprintln!("{}", report::slowdown_table(&rows).render());
}

fn bench(c: &mut Criterion) {
    print_e1_rows();

    let mut g = c.benchmark_group("e1_detailed");
    g.sample_size(10);

    let traces =
        StochasticGenerator::new(e1_app(16, CommPattern::NearestNeighborRing, 5_000), 5).generate();
    g.bench_function("hybrid_t805_16node", |b| {
        b.iter_batched(
            || traces.clone(),
            |ts| HybridSim::new(t805_16()).run(&ts),
            BatchSize::LargeInput,
        )
    });

    let app = StochasticApp {
        nodes: 1,
        phases: 1,
        ops_per_phase: SizeDist::Fixed(100_000),
        pattern: CommPattern::None,
        ..StochasticApp::scientific(1)
    };
    let single = StochasticGenerator::new(app, 6).generate();
    g.bench_function("computational_ppc601_100k_ops", |b| {
        b.iter(|| {
            let machine = MachineConfig::powerpc601_node(1);
            let mut sim = mermaid_cpu::SingleNodeSim::new(machine.cpu, machine.node_mem.clone());
            let refs: Vec<&Trace> = single.iter().collect();
            sim.run(&refs)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
