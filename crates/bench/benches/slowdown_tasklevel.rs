//! **Experiment E2** — task-level slowdown per simulated processor
//! (paper Section 6).
//!
//! "If fast prototyping of a multicomputer is the primary goal, then the
//! communication model can be used directly. The slowdown of this type of
//! simulation depends heavily on the amount of computation and
//! communication present within the application. […] Our measurements
//! indicate a typical slowdown of between 0.5 and 4 per processor."
//!
//! We sweep the computation:communication ratio from compute-dominated to
//! communication-dominated and report the per-processor slowdown of each
//! point. The paper's shape: slowdown rises as the communication share
//! grows (computation is nearly free at task level), and the whole range
//! sits orders of magnitude below the detailed mode (E1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mermaid::prelude::*;
use mermaid::{report, SlowdownMeter};
use mermaid_bench::{e2_app, t805_16};

fn print_e2_rows() {
    let mut rows = Vec::new();
    // compute_ps per phase vs message bytes: from compute-heavy (ratio
    // strongly favouring computation) to comm-heavy.
    for (label, compute_ps, msg_bytes) in [
        ("task-level, 100:1 comp:comm", 50_000_000u64, 512u64),
        ("task-level, 10:1 comp:comm", 5_000_000, 2_048),
        ("task-level, 1:1 comp:comm", 500_000, 8_192),
        ("task-level, 1:10 comp:comm", 50_000, 32_768),
    ] {
        let traces = StochasticGenerator::new(e2_app(16, compute_ps, msg_bytes, 100), 7)
            .generate_task_level();
        let machine = t805_16();
        let meter = SlowdownMeter::start(16, machine.cpu.clock);
        let r = TaskLevelSim::new(machine.network).run(&traces);
        assert!(r.comm.all_done);
        rows.push((label.to_string(), meter.finish(r.predicted_time)));
    }
    eprintln!("\n=== E2: task-level slowdown (paper: 0.5–4×/proc, rising with comm share) ===");
    eprintln!("{}", report::slowdown_table(&rows).render());
    eprintln!("(entire-multicomputer simulation at minor slowdown — Section 6)");
}

fn bench(c: &mut Criterion) {
    print_e2_rows();

    let mut g = c.benchmark_group("e2_tasklevel");
    g.sample_size(20);
    for (name, compute_ps, msg_bytes) in [
        ("compute_heavy", 50_000_000u64, 512u64),
        ("balanced", 500_000, 8_192),
        ("comm_heavy", 50_000, 32_768),
    ] {
        let traces = StochasticGenerator::new(e2_app(16, compute_ps, msg_bytes, 50), 7)
            .generate_task_level();
        g.bench_function(name, |b| {
            b.iter_batched(
                || traces.clone(),
                |ts| TaskLevelSim::new(t805_16().network).run(&ts),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
