//! **PR 3** — serial vs sharded wall clock of the communication model.
//!
//! The sharded runner (DESIGN.md §11) splits the machine's nodes across
//! worker threads in conservative lookahead windows; results are
//! bit-identical to the serial run (asserted here before timing), so the
//! only question is wall clock. Window synchronisation costs a barrier
//! round per lookahead interval, so small or latency-dominated runs can
//! regress — the point of this bench is to record where the crossover
//! sits on a comm-heavy workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mermaid::prelude::*;

/// A communication-dominated workload: all-to-all traffic on an 8×8
/// torus, enough phases to keep every router busy.
fn comm_heavy(nodes: u32) -> TraceSet {
    let app = StochasticApp {
        phases: 12,
        pattern: CommPattern::AllToAll,
        msg_bytes: SizeDist::Fixed(4096),
        task_ps: SizeDist::Fixed(200_000),
        ..StochasticApp::scientific(nodes)
    };
    StochasticGenerator::new(app, 7).generate_task_level()
}

fn bench(c: &mut Criterion) {
    let topo = Topology::Torus2D { w: 8, h: 8 };
    let cfg = NetworkConfig::test(topo);
    let traces = comm_heavy(topo.nodes());

    // Guard the claim the timings rest on: sharded == serial, exactly.
    let serial = TaskLevelSim::new(cfg).run(&traces);
    assert!(serial.comm.all_done);
    for shards in [2usize, 4, 8] {
        let sharded = TaskLevelSim::new(cfg).with_shards(shards).run(&traces);
        assert_eq!(
            format!("{:?}", serial.comm),
            format!("{:?}", sharded.comm),
            "sharded({shards}) diverged from serial"
        );
    }

    let mut g = c.benchmark_group("pr3_sharded");
    g.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        g.bench_function(format!("torus8x8_all2all/shards{shards}"), |b| {
            b.iter_batched(
                || traces.clone(),
                |ts| TaskLevelSim::new(cfg).with_shards(shards).run(&ts),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
