//! **Ablations** — the design choices DESIGN.md §7 calls out.
//!
//! * A1: switching strategy (store-and-forward vs cut-through/wormhole)
//!   as a function of message size and distance.
//! * A2: packet size — the router's packetisation trade-off.
//! * A3: cache replacement policy (LRU vs FIFO vs random).
//! * A4: coherence protocol (MESI vs MSI) under read-write sharing.

use criterion::{criterion_group, criterion_main, Criterion};
use mermaid::prelude::*;
use mermaid_memory::{Access, CoherenceProtocol, MemSystemConfig, MemorySystem, Replacement};
use mermaid_network::{NetworkConfig, Switching};
use mermaid_stats::table::Align;
use mermaid_stats::Table;
use pearl::Time;

/// A1: one message across a ring, varying size and switching.
fn print_a1() {
    let mut t = Table::new(["message", "hops", "SAF latency", "VCT latency", "VCT gain"])
        .with_aligns(vec![Align::Right; 5])
        .with_title("A1: switching strategy vs message size (t805-class links, ring(16))");
    for (bytes, dst) in [(256u32, 8u32), (4096, 8), (65536, 8), (4096, 1), (4096, 4)] {
        let lat = |sw: Switching| {
            let mut net = NetworkConfig::t805(Topology::Ring(16));
            net.router.switching = sw;
            let mut ts = TraceSet::new(16);
            ts.trace_mut(0).push(Operation::ASend { bytes, dst });
            ts.trace_mut(dst).push(Operation::Recv { src: 0 });
            let r = TaskLevelSim::new(net).run(&ts);
            pearl::Duration::from_ps(r.comm.msg_latency.max().unwrap())
        };
        let saf = lat(Switching::StoreAndForward);
        let vct = lat(Switching::VirtualCutThrough);
        t.row([
            format!("{bytes} B"),
            dst.to_string(),
            format!("{saf}"),
            format!("{vct}"),
            format!("{:.2}×", saf.as_ps() as f64 / vct.as_ps() as f64),
        ]);
    }
    eprintln!("\n=== A1 (expected: VCT gain grows with distance, shrinks to ~1 at 1 hop) ===");
    eprintln!("{}", t.render());
}

/// A2: packet size under a bulk transfer.
fn print_a2() {
    let mut t = Table::new(["packet payload", "predicted", "packets forwarded"])
        .with_aligns(vec![Align::Right; 3])
        .with_title("A2: packetisation of a 256 KiB transfer over 4 hops (SAF)");
    for payload in [128u32, 512, 2048, 8192, 65536] {
        let mut net = NetworkConfig::t805(Topology::Ring(16));
        net.router.max_packet_payload = payload;
        let mut ts = TraceSet::new(16);
        ts.trace_mut(0).push(Operation::ASend {
            bytes: 256 * 1024,
            dst: 4,
        });
        ts.trace_mut(4).push(Operation::Recv { src: 0 });
        let r = TaskLevelSim::new(net).run(&ts);
        let forwarded: u64 = r.comm.nodes.iter().map(|n| n.router.forwarded).sum();
        t.row([
            format!("{payload} B"),
            format!("{}", r.predicted_time),
            forwarded.to_string(),
        ]);
    }
    eprintln!("=== A2 (expected: small packets pipeline hops but pay per-packet overhead) ===");
    eprintln!("{}", t.render());
}

/// A3: replacement policy on a looping working set slightly over capacity.
fn print_a3() {
    let mut t = Table::new(["replacement", "l1d hit%", "finish"])
        .with_aligns(vec![Align::Left, Align::Right, Align::Right])
        .with_title("A3: replacement policy, cyclic working set ≈ 1.25× cache capacity");
    for repl in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
        let mut cfg = MemSystemConfig::small(1);
        cfg.l1d.replacement = repl;
        let mut sys = MemorySystem::new(cfg);
        let mut now = Time::ZERO;
        // 5 KiB cyclic scan over a 4 KiB cache: LRU's pathological case.
        for round in 0..20 {
            for slot in 0..(5 * 1024 / 32) {
                let r = sys.access(0, Access::Read, slot * 32, 4, now);
                now += r.latency;
                let _ = round;
            }
        }
        let s = sys.stats();
        t.row([
            format!("{repl:?}"),
            format!("{:.1}", 100.0 * s.l1d[0].hit_rate()),
            format!("{now}"),
        ]);
    }
    eprintln!("=== A3 (expected: random beats LRU/FIFO on cyclic over-capacity scans) ===");
    eprintln!("{}", t.render());
}

/// A4: MESI's E state saves upgrade traffic on private read-then-write.
fn print_a4() {
    let mut t = Table::new(["protocol", "bus transactions", "finish"])
        .with_aligns(vec![Align::Left, Align::Right, Align::Right])
        .with_title("A4: coherence protocol, private read-then-write pattern (2 CPUs)");
    for proto in [CoherenceProtocol::Mesi, CoherenceProtocol::Msi] {
        let mut cfg = MemSystemConfig::small(2);
        cfg.protocol = proto;
        let mut sys = MemorySystem::new(cfg);
        let mut now = Time::ZERO;
        for i in 0..500u64 {
            let cpu = (i % 2) as usize;
            let addr = 0x10_0000 * (cpu as u64 + 1) + (i / 2) * 32;
            let r = sys.access(cpu, Access::Read, addr, 4, now);
            now += r.latency;
            let w = sys.access(cpu, Access::Write, addr, 4, now);
            now += w.latency;
        }
        let s = sys.stats();
        t.row([
            format!("{proto:?}"),
            s.bus_transactions.to_string(),
            format!("{now}"),
        ]);
    }
    eprintln!("=== A4 (expected: MSI pays an upgrade transaction per private write) ===");
    eprintln!("{}", t.render());
}

/// A5: adaptive vs deterministic routing under matrix-transpose traffic on
/// a mesh — the classic adversarial pattern for dimension-order routing
/// (X-first funnels the upper triangle's flows onto the same column links
/// while their row links idle; adaptive minimal routing uses both).
fn print_a5() {
    use mermaid_network::config::Routing;
    let mut t = Table::new(["routing", "predicted", "max link wait"])
        .with_aligns(vec![Align::Left, Align::Right, Align::Right])
        .with_title("A5: routing strategy, transpose traffic on mesh(4x4)");
    let w = 4u32;
    let topo = Topology::Mesh2D { w, h: w };
    let mut ts = TraceSet::new((w * w) as usize);
    for node in 0..w * w {
        let (x, y) = (node % w, node / w);
        let dst = x * w + y; // (x,y) → (y,x)
        if dst != node {
            ts.trace_mut(node).push(Operation::ASend {
                bytes: 128 * 1024,
                dst,
            });
            ts.trace_mut(node).push(Operation::Recv { src: dst });
        }
    }
    for routing in [Routing::DimensionOrder, Routing::AdaptiveMinimal] {
        let mut net = NetworkConfig::hw_routed(topo);
        // Small packets give the adaptive router spreading opportunities
        // (one decision per packet).
        net.router.max_packet_payload = 1024;
        net.router.routing = routing;
        let r = TaskLevelSim::new(net).run(&ts);
        let max_wait = r
            .comm
            .nodes
            .iter()
            .map(|n| n.router.link_wait)
            .max()
            .unwrap();
        t.row([
            format!("{routing:?}"),
            format!("{}", r.predicted_time),
            format!("{max_wait}"),
        ]);
    }
    eprintln!("=== A5 (expected: adaptive spreads the hot links, finishing sooner) ===");
    eprintln!("{}", t.render());
}

fn bench(c: &mut Criterion) {
    print_a1();
    print_a2();
    print_a3();
    print_a4();
    print_a5();

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for sw in [Switching::StoreAndForward, Switching::VirtualCutThrough] {
        let name = format!("a1_bulk_{sw:?}");
        g.bench_function(name, move |b| {
            b.iter(|| {
                let mut net = NetworkConfig::t805(Topology::Ring(16));
                net.router.switching = sw;
                let mut ts = TraceSet::new(16);
                for node in 0..16u32 {
                    ts.trace_mut(node).push(Operation::ASend {
                        bytes: 16 * 1024,
                        dst: (node + 4) % 16,
                    });
                    ts.trace_mut(node).push(Operation::Recv {
                        src: (node + 12) % 16,
                    });
                }
                TaskLevelSim::new(net).run(&ts)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
