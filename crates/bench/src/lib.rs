//! Shared workload builders for the benchmark harness (experiments
//! E1–E4, F4, and the ablations; see DESIGN.md §4 for the index).

use mermaid::prelude::*;

/// The standard detailed-mode workload of E1: a mix of application loads
/// on a 16-node machine (nearest-neighbour and all-to-all phases).
pub fn e1_app(nodes: u32, pattern: CommPattern, ops_per_phase: u64) -> StochasticApp {
    StochasticApp {
        phases: 4,
        ops_per_phase: SizeDist::Fixed(ops_per_phase),
        pattern,
        msg_bytes: SizeDist::Fixed(4096),
        ..StochasticApp::scientific(nodes)
    }
}

/// Task-level workload of E2 with a controllable computation:communication
/// balance: `compute_ps` per phase against `msg_bytes`-sized ring messages.
pub fn e2_app(nodes: u32, compute_ps: u64, msg_bytes: u64, phases: u32) -> StochasticApp {
    StochasticApp {
        phases,
        pattern: CommPattern::NearestNeighborRing,
        msg_bytes: SizeDist::Fixed(msg_bytes),
        task_ps: SizeDist::Fixed(compute_ps),
        ..StochasticApp::scientific(nodes)
    }
}

/// A 16-node T805 machine on a 4×4 mesh — the multicomputer of Section 6.
pub fn t805_16() -> MachineConfig {
    MachineConfig::t805_multicomputer(Topology::Mesh2D { w: 4, h: 4 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders_produce_runnable_traces() {
        let ts = StochasticGenerator::new(e1_app(16, CommPattern::NearestNeighborRing, 500), 1)
            .generate();
        assert!(ts.comm_imbalances().is_empty());
        let r = HybridSim::new(t805_16()).run(&ts);
        assert!(r.comm.all_done);

        let task =
            StochasticGenerator::new(e2_app(16, 1_000_000, 1024, 5), 2).generate_task_level();
        let r = TaskLevelSim::new(t805_16().network).run(&task);
        assert!(r.comm.all_done);
    }
}
