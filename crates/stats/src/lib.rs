//! # mermaid-stats — analysis and visualisation tools
//!
//! The Mermaid environment provides "a suite of tools … to visualize and
//! analyze the simulation output", both at run time and post-mortem
//! (paper, Section 3 and Fig. 1). This crate is that suite:
//!
//! * [`Counter`]s and counter registries for event counts,
//! * [`Histogram`]s (linear and log₂-bucketed) with percentile queries,
//! * [`TimeSeries`] sampling for run-time observation,
//! * [`Utilization`] tracking for busy/idle components (links, buses, CPUs),
//! * ASCII rendering ([`table::Table`], [`chart`]) and CSV export for
//!   post-mortem analysis.
//!
//! Everything is plain data — the simulators fill these in; examples and the
//! bench harness render them.

pub mod chart;
pub mod counter;
pub mod csv;
pub mod delivery;
pub mod gnuplot;
pub mod histogram;
pub mod rank;
pub mod summary;
pub mod table;
pub mod timeline;
pub mod timeseries;
pub mod utilization;

pub use counter::{Counter, Counters};
pub use delivery::DeliveryStats;
pub use histogram::Histogram;
pub use summary::Summary;
pub use table::Table;
pub use timeseries::TimeSeries;
pub use utilization::Utilization;
