//! ASCII charts for run-time and post-mortem visualisation.

use crate::histogram::Histogram;
use crate::timeseries::TimeSeries;

/// Render a horizontal bar chart of `(label, value)` pairs, `width` columns
/// wide at the longest bar.
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    assert!(width >= 1);
    let max = items.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let bar = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{:<label_w$} |{:<width$}| {:.3}\n",
            label,
            "#".repeat(bar),
            value,
        ));
    }
    out
}

/// Render a histogram as a bar chart of its non-empty buckets.
pub fn histogram_chart(h: &Histogram, width: usize) -> String {
    let items: Vec<(String, f64)> = h
        .iter_nonempty()
        .map(|(lo, c)| (format!("≥{lo}"), c as f64))
        .collect();
    bar_chart(&items, width)
}

/// Render a time series as a sparkline of `width` characters.
pub fn sparkline(series: &TimeSeries, width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let s = series.downsample(width.max(2));
    let Some((lo, hi)) = s.value_range() else {
        return String::new();
    };
    let span = if hi > lo { hi - lo } else { 1.0 };
    s.samples()
        .iter()
        .map(|&(_, v)| {
            let idx = (((v - lo) / span) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// Render labelled per-bucket value rows as an ASCII heatmap: one line
/// per row, one glyph per bucket, intensity scaled to the global maximum
/// (so rows are visually comparable). Zero cells render as spaces.
pub fn heatmap(rows: &[(String, Vec<u64>)]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = rows
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .max()
        .unwrap_or(0);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, values) in rows {
        out.push_str(&format!("{label:<label_w$} |"));
        for &v in values {
            if v == 0 || max == 0 {
                out.push(' ');
            } else {
                // Map (0, max] onto the 8 glyphs; any non-zero cell is
                // at least the faintest level.
                let idx = ((v as u128 * LEVELS.len() as u128).div_ceil(max as u128)) as usize;
                out.push(LEVELS[idx.saturating_sub(1).min(LEVELS.len() - 1)]);
            }
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_scales_globally_and_blanks_zeroes() {
        let rows = vec![
            ("a".to_string(), vec![0, 4, 8]),
            ("bb".to_string(), vec![1, 0, 0]),
        ];
        let s = heatmap(&rows);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "a  | ▄█|");
        assert_eq!(lines[1], "bb |▁  |");
    }

    #[test]
    fn heatmap_of_empty_rows_is_empty() {
        assert_eq!(heatmap(&[]), "");
        let rows = vec![("x".to_string(), vec![0, 0])];
        assert_eq!(heatmap(&rows), "x |  |\n");
    }

    #[test]
    fn bars_scale_to_the_maximum() {
        let items = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let s = bar_chart(&items, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("#####"));
        assert!(!lines[0].contains("######"));
        assert!(lines[1].contains("##########"));
    }

    #[test]
    fn zero_values_draw_empty_bars() {
        let items = vec![("z".to_string(), 0.0)];
        let s = bar_chart(&items, 5);
        assert!(s.contains("|     |"));
    }

    #[test]
    fn histogram_chart_shows_buckets() {
        let mut h = Histogram::log2();
        h.record(3);
        h.record(100);
        let s = histogram_chart(&h, 8);
        assert!(s.contains("≥2"));
        assert!(s.contains("≥64"));
    }

    #[test]
    fn sparkline_spans_levels() {
        let mut ts = TimeSeries::new("s");
        for i in 0..8u64 {
            ts.push(i, i as f64);
        }
        let sl = sparkline(&ts, 8);
        assert_eq!(sl.chars().count(), 8);
        assert!(sl.starts_with('▁'));
        assert!(sl.ends_with('█'));
    }

    #[test]
    fn sparkline_of_empty_series_is_empty() {
        let ts = TimeSeries::new("s");
        assert_eq!(sparkline(&ts, 10), "");
    }

    #[test]
    fn sparkline_of_constant_series_is_flat() {
        let mut ts = TimeSeries::new("s");
        ts.push(0, 5.0);
        ts.push(1, 5.0);
        let sl = sparkline(&ts, 4);
        assert!(sl.chars().all(|c| c == '▁'));
    }
}
