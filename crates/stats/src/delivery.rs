//! Delivered-vs-dropped accounting for fault-injected runs.
//!
//! When the communication model runs with fault injection enabled, each
//! abstract processor tracks its reliable sends (acked vs given-up) and
//! each router counts the packets it dropped. This accumulator rolls
//! those per-component numbers into one run-level delivery picture — the
//! "did the machine degrade, and by how much" headline of a robustness
//! experiment. Plain data with a merge, like the rest of this crate.

use serde::{Deserialize, Serialize};

use crate::Histogram;

/// Run-level delivery accounting under fault injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryStats {
    /// Reliably-tracked messages issued (fault mode only; 0 otherwise).
    pub tracked: u64,
    /// Tracked messages that were acknowledged end-to-end.
    pub acked: u64,
    /// Tracked messages abandoned after exhausting their retry budget.
    pub failed: u64,
    /// Retransmissions performed across all senders.
    pub retries: u64,
    /// Blocking receives that hit the degraded-mode watchdog deadline.
    pub recv_timeouts: u64,
    /// Packets dropped in the network (link/router down, loss, corruption).
    pub dropped_packets: u64,
    /// Attempt index at which each tracked message completed or was
    /// abandoned (`0` = delivered first try; log₂ buckets).
    pub attempts: Histogram,
}

impl Default for DeliveryStats {
    fn default() -> Self {
        DeliveryStats {
            tracked: 0,
            acked: 0,
            failed: 0,
            retries: 0,
            recv_timeouts: 0,
            dropped_packets: 0,
            attempts: Histogram::log2(),
        }
    }
}

impl DeliveryStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of tracked messages that made it through (`None` when
    /// nothing was tracked — e.g. a fault-free run).
    pub fn delivered_fraction(&self) -> Option<f64> {
        (self.tracked > 0).then(|| self.acked as f64 / self.tracked as f64)
    }

    /// Whether the run degraded at all: anything failed, timed out, or
    /// was dropped on the wire.
    pub fn degraded(&self) -> bool {
        self.failed > 0 || self.recv_timeouts > 0 || self.dropped_packets > 0
    }

    /// Conservation invariant of the reliability protocol: once a run has
    /// drained, every tracked message was either acked or given up on.
    pub fn conserved(&self) -> bool {
        self.tracked == self.acked + self.failed
    }

    /// Fold another accumulator in (e.g. one per node, or per shard).
    pub fn merge(&mut self, other: &DeliveryStats) {
        self.tracked += other.tracked;
        self.acked += other.acked;
        self.failed += other.failed;
        self.retries += other.retries;
        self.recv_timeouts += other.recv_timeouts;
        self.dropped_packets += other.dropped_packets;
        self.attempts.merge(&other.attempts);
    }

    /// One-line summary for reports and CLI output.
    pub fn headline(&self) -> String {
        format!(
            "{} packet(s) dropped, {} retransmission(s), {} message(s) failed, \
             {} recv timeout(s)",
            self.dropped_packets, self.retries, self.failed, self.recv_timeouts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeliveryStats {
        let mut d = DeliveryStats::new();
        d.tracked = 10;
        d.acked = 8;
        d.failed = 2;
        d.retries = 5;
        d.dropped_packets = 7;
        d.attempts.record_n(1, 8);
        d.attempts.record_n(3, 2);
        d
    }

    #[test]
    fn fractions_and_flags() {
        let d = sample();
        assert_eq!(d.delivered_fraction(), Some(0.8));
        assert!(d.degraded());
        assert!(d.conserved());

        let clean = DeliveryStats::new();
        assert_eq!(clean.delivered_fraction(), None);
        assert!(!clean.degraded());
        assert!(clean.conserved());
    }

    #[test]
    fn merge_adds_fields_and_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.tracked, 20);
        assert_eq!(a.acked, 16);
        assert_eq!(a.failed, 4);
        assert_eq!(a.retries, 10);
        assert_eq!(a.dropped_packets, 14);
        assert_eq!(a.attempts.count(), 20);
        assert!(a.conserved());
    }

    #[test]
    fn headline_mentions_every_counter() {
        let d = sample();
        let h = d.headline();
        assert!(h.contains("7 packet(s) dropped"), "{h}");
        assert!(h.contains("5 retransmission(s)"), "{h}");
        assert!(h.contains("2 message(s) failed"), "{h}");
        assert!(h.contains("0 recv timeout(s)"), "{h}");
    }
}
