//! Histograms for latency/size distributions.

use serde::{Deserialize, Serialize};

/// Bucketing strategy for a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Buckets {
    /// Fixed-width buckets `[lo, lo+w), [lo+w, lo+2w), …` with `count`
    /// buckets; samples outside the range land in saturated edge buckets.
    Linear { lo: u64, width: u64, count: usize },
    /// Power-of-two buckets: bucket `i` covers `[2^i, 2^(i+1))`, with bucket
    /// 0 covering `[0, 2)`. 64 buckets cover all of `u64`.
    Log2,
}

/// A histogram of `u64` samples with exact count/sum/min/max and
/// approximate percentiles (bucket resolution).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Buckets,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Create an empty histogram with the given bucketing.
    pub fn new(buckets: Buckets) -> Self {
        let n = match buckets {
            Buckets::Linear { count, .. } => {
                assert!(count > 0, "linear histogram needs at least one bucket");
                count
            }
            Buckets::Log2 => 64,
        };
        Histogram {
            buckets,
            counts: vec![0; n],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// A log₂-bucketed histogram (good default for latencies).
    pub fn log2() -> Self {
        Histogram::new(Buckets::Log2)
    }

    /// A linear histogram over `[lo, lo + width*count)`.
    pub fn linear(lo: u64, width: u64, count: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        Histogram::new(Buckets::Linear { lo, width, count })
    }

    fn bucket_index(&self, v: u64) -> usize {
        match self.buckets {
            Buckets::Linear { lo, width, count } => {
                let idx = v.saturating_sub(lo) / width;
                (idx as usize).min(count - 1)
            }
            Buckets::Log2 => {
                if v < 2 {
                    0
                } else {
                    (63 - v.leading_zeros()) as usize
                }
            }
        }
    }

    /// Lower bound of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> u64 {
        match self.buckets {
            Buckets::Linear { lo, width, .. } => lo + width * i as u64,
            Buckets::Log2 => {
                if i == 0 {
                    0
                } else {
                    1u64 << i
                }
            }
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let i = self.bucket_index(v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = self.bucket_index(v);
        self.counts[i] += n;
        self.count += n;
        self.sum += v * n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate percentile `p` in `[0, 100]`: the lower bound of the
    /// bucket containing the p-th sample. Exact for min/max via the tracked
    /// extrema. Out-of-range `p` clamps to the extrema; a NaN `p` is a
    /// caller bug and yields `None` (it would otherwise cast to rank 0 and
    /// silently masquerade as the minimum).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 || p.is_nan() {
            return None;
        }
        if p <= 0.0 {
            return Some(self.min);
        }
        if p >= 100.0 {
            return Some(self.max);
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bucket_lo(i).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Iterate non-empty buckets as `(bucket_lo, count)`.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_lo(i), c))
    }

    /// Flatten the full sample state into integers for the checkpoint
    /// format: `[count, sum, min, max, n_buckets, counts…]`. The bucketing
    /// strategy itself is not encoded — a restore site reconstructs the
    /// histogram with the same constructor and overlays these counters.
    pub fn snapshot_ints(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(5 + self.counts.len());
        out.extend([
            self.count,
            self.sum,
            self.min,
            self.max,
            self.counts.len() as u64,
        ]);
        out.extend_from_slice(&self.counts);
        out
    }

    /// Overlay counters captured by [`Histogram::snapshot_ints`] onto a
    /// histogram built with the same bucketing. Returns `false` (leaving
    /// `self` untouched) when the integer run does not fit this
    /// histogram's shape — a corrupt or mismatched checkpoint.
    #[must_use]
    pub fn restore_ints(&mut self, ints: &[u64]) -> bool {
        if ints.len() != 5 + self.counts.len() || ints[4] as usize != self.counts.len() {
            return false;
        }
        self.count = ints[0];
        self.sum = ints[1];
        self.min = ints[2];
        self.max = ints[3];
        self.counts.copy_from_slice(&ints[5..]);
        true
    }

    /// Merge another histogram with identical bucketing. Panics on mismatch.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.buckets, other.buckets, "histogram bucketing mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_boundaries() {
        let h = Histogram::log2();
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(1), 0);
        assert_eq!(h.bucket_index(2), 1);
        assert_eq!(h.bucket_index(3), 1);
        assert_eq!(h.bucket_index(4), 2);
        assert_eq!(h.bucket_index(1023), 9);
        assert_eq!(h.bucket_index(1024), 10);
        assert_eq!(h.bucket_index(u64::MAX), 63);
    }

    #[test]
    fn linear_buckets_saturate_at_edges() {
        let h = Histogram::linear(10, 5, 4); // [10,15) [15,20) [20,25) [25,..)
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(12), 0);
        assert_eq!(h.bucket_index(17), 1);
        assert_eq!(h.bucket_index(24), 2);
        assert_eq!(h.bucket_index(1000), 3);
    }

    #[test]
    fn summary_statistics_are_exact() {
        let mut h = Histogram::log2();
        for v in [5u64, 10, 15, 20] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 50);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(20));
        assert_eq!(h.mean(), Some(12.5));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = Histogram::log2();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    fn percentiles_hit_the_right_buckets() {
        let mut h = Histogram::linear(0, 10, 10);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(99));
        // The 50th sample of 0..100 is value 49, in the [40,50) bucket.
        assert_eq!(h.percentile(50.0), Some(40));
        assert_eq!(h.percentile(95.0), Some(90));
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty: every p — including the extremes and garbage — is None.
        let empty = Histogram::log2();
        for p in [f64::NAN, -1.0, 0.0, 50.0, 100.0, 101.0] {
            assert_eq!(empty.percentile(p), None);
        }

        let mut h = Histogram::linear(0, 10, 10);
        for v in [3u64, 42, 97] {
            h.record(v);
        }
        // The extremes are exact (tracked extrema, not bucket bounds).
        assert_eq!(h.percentile(0.0), Some(3));
        assert_eq!(h.percentile(100.0), Some(97));
        // Out-of-range p clamps to the extrema rather than panicking.
        assert_eq!(h.percentile(-5.0), Some(3));
        assert_eq!(h.percentile(250.0), Some(97));
        assert_eq!(h.percentile(f64::NEG_INFINITY), Some(3));
        assert_eq!(h.percentile(f64::INFINITY), Some(97));
        // NaN is a caller bug, reported as None — not silently the min.
        assert_eq!(h.percentile(f64::NAN), None);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::log2();
        let mut b = Histogram::log2();
        for _ in 0..7 {
            a.record(100);
        }
        b.record_n(100, 7);
        assert_eq!(a, b);
        b.record_n(5, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::log2();
        a.record(1);
        a.record(100);
        let mut b = Histogram::log2();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(1000));
    }

    #[test]
    #[should_panic(expected = "bucketing mismatch")]
    fn merge_rejects_different_bucketing() {
        let mut a = Histogram::log2();
        let b = Histogram::linear(0, 1, 2);
        a.merge(&b);
    }

    #[test]
    fn iter_nonempty_skips_zero_buckets() {
        let mut h = Histogram::log2();
        h.record(3);
        h.record(3);
        h.record(1000);
        let v: Vec<_> = h.iter_nonempty().collect();
        assert_eq!(v, vec![(2, 2), (512, 1)]);
    }
}
