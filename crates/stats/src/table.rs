//! ASCII table rendering for post-mortem reports — the paper's evaluation
//! tables are regenerated through this.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple ASCII table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers; all columns right-aligned
    /// except the first.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        let aligns = std::iter::once(Align::Left)
            .chain(std::iter::repeat(Align::Right))
            .take(headers.len())
            .collect();
        Table {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Set a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Override column alignments. Panics if the count mismatches.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns;
        self
    }

    /// Append a row. Panics if the cell count mismatches the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to an ASCII string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                match self.aligns[i] {
                    Align::Left => line.push_str(&format!("{:<width$}", cell, width = widths[i])),
                    Align::Right => line.push_str(&format!("{:>width$}", cell, width = widths[i])),
                }
            }
            while line.ends_with(' ') {
                line.pop();
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&crate::csv::csv_line(&self.headers));
        for row in &self.rows {
            out.push_str(&crate::csv::csv_line(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["machine", "slowdown"]).with_title("Slowdown");
        t.row(["t805", "750"]);
        t.row(["ppc601", "4000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Slowdown");
        assert!(lines[1].starts_with("machine"));
        assert!(lines[2].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("t805"));
        assert!(lines[3].ends_with("750"));
        assert!(lines[4].ends_with("4000"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn csv_output_matches_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        let s = t.render();
        assert!(s.contains('x'));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn custom_alignment() {
        let mut t = Table::new(["n", "label"]).with_aligns(vec![Align::Right, Align::Left]);
        t.row(["5", "abc"]);
        t.row(["500", "d"]);
        let s = t.render();
        assert!(s.lines().nth(2).unwrap().starts_with("  5"));
    }
}
