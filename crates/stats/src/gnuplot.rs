//! Gnuplot script generation for post-mortem visualisation.
//!
//! Emits a self-contained `.gp` script with inline data blocks, so a
//! simulation report can be turned into figures with a single
//! `gnuplot report.gp` — the workbench's post-mortem path.

use crate::timeseries::TimeSeries;

/// Options for a generated plot.
#[derive(Debug, Clone)]
pub struct PlotSpec {
    /// Plot title.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// Output PNG file name written by the script.
    pub output: String,
    /// Use a logarithmic y axis.
    pub logy: bool,
}

impl Default for PlotSpec {
    fn default() -> Self {
        PlotSpec {
            title: "Mermaid simulation".to_string(),
            xlabel: "virtual time (s)".to_string(),
            ylabel: "value".to_string(),
            output: "plot.png".to_string(),
            logy: false,
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Render several time series as one gnuplot script with inline data.
/// Times are plotted in seconds of virtual time.
pub fn series_script(spec: &PlotSpec, series: &[&TimeSeries]) -> String {
    let mut out = String::new();
    out.push_str("set terminal pngcairo size 900,540\n");
    out.push_str(&format!("set output '{}'\n", spec.output));
    out.push_str(&format!("set title '{}'\n", spec.title.replace('\'', "")));
    out.push_str(&format!("set xlabel '{}'\n", spec.xlabel.replace('\'', "")));
    out.push_str(&format!("set ylabel '{}'\n", spec.ylabel.replace('\'', "")));
    out.push_str("set key left top\nset grid\n");
    if spec.logy {
        out.push_str("set logscale y\n");
    }
    for s in series {
        out.push_str(&format!("${} << EOD\n", sanitize(&s.name)));
        for &(t, v) in s.samples() {
            out.push_str(&format!("{} {}\n", t as f64 / 1e12, v));
        }
        out.push_str("EOD\n");
    }
    let plots: Vec<String> = series
        .iter()
        .map(|s| {
            format!(
                "${} using 1:2 with steps lw 2 title '{}'",
                sanitize(&s.name),
                s.name.replace('\'', "")
            )
        })
        .collect();
    out.push_str(&format!("plot {}\n", plots.join(", \\\n     ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, pts: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for &(t, v) in pts {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn script_contains_data_and_plot_commands() {
        let a = series("msgs", &[(0, 0.0), (1_000_000_000_000, 5.0)]);
        let b = series("done nodes", &[(0, 0.0)]);
        let script = series_script(&PlotSpec::default(), &[&a, &b]);
        assert!(script.contains("set output 'plot.png'"));
        assert!(script.contains("$msgs << EOD"));
        assert!(script.contains("$done_nodes << EOD"));
        assert!(script.contains("1 5\n")); // 1e12 ps = 1 s
        assert!(script.contains("plot $msgs"));
        assert!(script.contains("title 'done nodes'"));
    }

    #[test]
    fn logscale_and_quoting() {
        let spec = PlotSpec {
            title: "it's log".to_string(),
            logy: true,
            ..PlotSpec::default()
        };
        let s = series("x", &[(0, 1.0)]);
        let script = series_script(&spec, &[&s]);
        assert!(script.contains("set logscale y"));
        assert!(!script.contains("it's"), "quotes must be stripped");
    }
}
