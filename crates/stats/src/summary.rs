//! Streaming summary statistics (Welford's algorithm) for repeated-run
//! measurements — host-time numbers like slowdown are noisy, so reports
//! over several runs should carry mean, spread, and a confidence interval.

use serde::{Deserialize, Serialize};

/// A streaming mean/variance accumulator (numerically stable).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build from an iterator of samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Summary::new();
        for x in samples {
            s.record(x);
        }
        s
    }

    /// Add one sample.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sample variance (Bessel-corrected; `None` for fewer than 2 samples).
    pub fn variance(&self) -> Option<f64> {
        (self.n >= 2).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> Option<f64> {
        self.stddev().map(|s| s / (self.n as f64).sqrt())
    }

    /// Approximate 95% confidence half-width of the mean (normal
    /// approximation, 1.96·SE — adequate for the ≥10-run reports the
    /// workbench produces).
    pub fn ci95_half_width(&self) -> Option<f64> {
        self.std_error().map(|se| 1.96 * se)
    }

    /// Render as `mean ± ci95 (n=N)`.
    pub fn display(&self, unit: &str) -> String {
        match (self.mean(), self.ci95_half_width()) {
            (Some(m), Some(ci)) => format!("{m:.3} ± {ci:.3} {unit} (n={})", self.n),
            (Some(m), None) => format!("{m:.3} {unit} (n=1)"),
            _ => "no samples".to_string(),
        }
    }

    /// Merge another accumulator (parallel-update formula).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_closed_form() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let e = Summary::new();
        assert_eq!(e.mean(), None);
        assert_eq!(e.variance(), None);
        assert_eq!(e.display("ms"), "no samples");
        let s = Summary::from_samples([3.5]);
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.variance(), None);
        assert!(s.display("ms").contains("n=1"));
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let few = Summary::from_samples((0..10).map(|i| (i % 3) as f64));
        let many = Summary::from_samples((0..1000).map(|i| (i % 3) as f64));
        assert!(many.ci95_half_width().unwrap() < few.ci95_half_width().unwrap());
    }

    #[test]
    fn merge_equals_single_pass() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::from_samples(all.iter().copied());
        let mut a = Summary::from_samples(all[..37].iter().copied());
        let b = Summary::from_samples(all[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        // Merging an empty set is a no-op.
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_samples_are_rejected() {
        Summary::new().record(f64::NAN);
    }
}
