//! Named event counters.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Ratio of this counter to another (0 when the denominator is zero).
    pub fn ratio(self, denom: Counter) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

/// A registry of named counters with stable (sorted) iteration order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counters {
    map: BTreeMap<String, Counter>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Increment counter `name` by one, creating it at zero if absent.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Add `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        self.map.entry(name.to_string()).or_default().add(n);
    }

    /// Value of counter `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or_default().get()
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no counter exists.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Merge another registry into this one (summing shared names).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.map {
            self.map.entry(k.clone()).or_default().add(v.get());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut a = Counter::new();
        a.add(3);
        let b = Counter::new();
        assert_eq!(a.ratio(b), 0.0);
        let mut b = Counter::new();
        b.add(6);
        assert!((a.ratio(b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn registry_creates_on_demand() {
        let mut cs = Counters::new();
        assert_eq!(cs.get("hits"), 0);
        cs.incr("hits");
        cs.add("hits", 2);
        cs.incr("misses");
        assert_eq!(cs.get("hits"), 3);
        assert_eq!(cs.get("misses"), 1);
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut cs = Counters::new();
        cs.incr("zebra");
        cs.incr("alpha");
        let names: Vec<&str> = cs.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zebra"]);
    }

    #[test]
    fn merge_sums_shared_names() {
        let mut a = Counters::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Counters::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn ratio_of_two_zero_counters_is_zero() {
        // 0/0 must be 0.0, not NaN — reports divide blindly.
        let z = Counter::new();
        let r = z.ratio(z);
        assert_eq!(r, 0.0);
        assert!(!r.is_nan());
    }

    #[test]
    fn merge_with_disjoint_key_sets_is_a_union() {
        let mut a = Counters::new();
        a.add("left", 7);
        let mut b = Counters::new();
        b.add("right", 9);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("left"), 7);
        assert_eq!(a.get("right"), 9);
        // The source registry is untouched.
        assert_eq!(b.len(), 1);
        assert_eq!(b.get("left"), 0);
    }

    #[test]
    fn merge_with_empty_registries_is_identity() {
        let mut a = Counters::new();
        a.add("x", 3);
        a.merge(&Counters::new());
        assert_eq!(a.len(), 1);
        assert_eq!(a.get("x"), 3);

        let mut empty = Counters::new();
        empty.merge(&a);
        assert_eq!(empty.get("x"), 3);
        assert_eq!(empty.len(), 1);
    }

    #[test]
    fn iteration_order_is_stable_after_merges() {
        // Keys arriving via merge in arbitrary order still iterate sorted,
        // and a second merge of the same data changes values, not order.
        let mut a = Counters::new();
        a.add("mid", 1);
        let mut b = Counters::new();
        b.add("zzz", 2);
        b.add("aaa", 3);
        a.merge(&b);
        let order1: Vec<String> = a.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(order1, vec!["aaa", "mid", "zzz"]);
        a.merge(&b);
        let order2: Vec<String> = a.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(order2, order1);
        assert_eq!(a.get("aaa"), 6);
        assert_eq!(a.get("zzz"), 4);
    }
}
