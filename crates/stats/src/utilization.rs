//! Busy/idle tracking for shared resources (buses, links, CPUs).

use serde::{Deserialize, Serialize};

/// Tracks how much of virtual time a resource spent busy.
///
/// The simulator reports busy intervals as `[start, end)` in picoseconds;
/// intervals must be reported in non-decreasing start order and may not
/// overlap (a resource is a single server — overlapping use is a model
/// bug, and is reported as a panic rather than silently merged).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Utilization {
    busy_ps: u64,
    last_end: u64,
    intervals: u64,
}

impl Utilization {
    /// A fresh tracker.
    pub fn new() -> Self {
        Utilization::default()
    }

    /// Record a busy interval `[start, end)`.
    pub fn record(&mut self, start_ps: u64, end_ps: u64) {
        assert!(end_ps >= start_ps, "negative busy interval");
        assert!(
            start_ps >= self.last_end,
            "overlapping busy intervals: {} < {}",
            start_ps,
            self.last_end
        );
        self.busy_ps += end_ps - start_ps;
        self.last_end = end_ps;
        self.intervals += 1;
    }

    /// Total busy time.
    pub fn busy_ps(&self) -> u64 {
        self.busy_ps
    }

    /// Number of busy intervals recorded.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// End of the latest busy interval (the earliest time a new request
    /// can be served) — this doubles as the resource's availability clock
    /// for simple arbitration.
    pub fn available_at(&self) -> u64 {
        self.last_end
    }

    /// Utilization over `[0, horizon_ps)` as a fraction in `[0, 1]`.
    pub fn fraction(&self, horizon_ps: u64) -> f64 {
        if horizon_ps == 0 {
            0.0
        } else {
            self.busy_ps as f64 / horizon_ps as f64
        }
    }

    /// Serve a request of length `dur_ps` arriving at `arrive_ps` under FCFS
    /// arbitration: the request starts when both it has arrived and the
    /// resource is free. Records the busy interval and returns
    /// `(start_ps, end_ps)`.
    pub fn serve_fcfs(&mut self, arrive_ps: u64, dur_ps: u64) -> (u64, u64) {
        let start = arrive_ps.max(self.last_end);
        let end = start + dur_ps;
        self.record(start, end);
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_busy_time() {
        let mut u = Utilization::new();
        u.record(0, 10);
        u.record(20, 25);
        assert_eq!(u.busy_ps(), 15);
        assert_eq!(u.intervals(), 2);
        assert_eq!(u.available_at(), 25);
        assert!((u.fraction(100) - 0.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_is_a_model_bug() {
        let mut u = Utilization::new();
        u.record(0, 10);
        u.record(5, 15);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn reversed_interval_is_rejected() {
        let mut u = Utilization::new();
        u.record(10, 5);
    }

    #[test]
    fn zero_horizon_fraction_is_zero() {
        assert_eq!(Utilization::new().fraction(0), 0.0);
    }

    #[test]
    fn fcfs_queues_behind_current_work() {
        let mut u = Utilization::new();
        // First request at t=10 for 5: served [10,15).
        assert_eq!(u.serve_fcfs(10, 5), (10, 15));
        // Second arrives at t=12 while busy: waits until 15.
        assert_eq!(u.serve_fcfs(12, 3), (15, 18));
        // Third arrives after the resource went idle.
        assert_eq!(u.serve_fcfs(100, 1), (100, 101));
        assert_eq!(u.busy_ps(), 9);
    }

    #[test]
    fn back_to_back_intervals_are_allowed() {
        let mut u = Utilization::new();
        u.record(0, 10);
        u.record(10, 20);
        assert_eq!(u.busy_ps(), 20);
    }

    #[test]
    fn empty_tracker_is_all_idle() {
        let u = Utilization::new();
        assert_eq!(u.busy_ps(), 0);
        assert_eq!(u.intervals(), 0);
        assert_eq!(u.available_at(), 0);
        assert_eq!(u.fraction(1_000), 0.0);
    }

    #[test]
    fn zero_length_intervals_count_but_add_nothing() {
        let mut u = Utilization::new();
        u.record(5, 5);
        assert_eq!(u.busy_ps(), 0);
        assert_eq!(u.intervals(), 1);
        assert_eq!(u.available_at(), 5);
        // A later interval starting exactly at the zero-length point is
        // still back-to-back, not overlapping.
        u.record(5, 8);
        assert_eq!(u.busy_ps(), 3);
    }

    #[test]
    fn fraction_can_exceed_one_when_horizon_undershoots() {
        // Callers own the horizon; a too-short one is reported honestly
        // rather than clamped.
        let mut u = Utilization::new();
        u.record(0, 100);
        assert!((u.fraction(50) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_fcfs_requests_do_not_advance_the_clock() {
        let mut u = Utilization::new();
        assert_eq!(u.serve_fcfs(10, 0), (10, 10));
        assert_eq!(u.serve_fcfs(10, 4), (10, 14));
        assert_eq!(u.busy_ps(), 4);
    }
}
