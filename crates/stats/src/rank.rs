//! Ranking helpers for hotspot analysis: deterministic top-K selection
//! and integer-exact vs-mean ratios.

/// The `k` largest entries by value, ties broken by key so the result is
/// a pure function of the input *multiset* (callers feed maps whose
/// iteration order may differ between runs).
pub fn top_k<K: Ord + Clone>(items: impl IntoIterator<Item = (K, u64)>, k: usize) -> Vec<(K, u64)> {
    let mut v: Vec<(K, u64)> = items.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

/// `value` relative to the mean of `n` entries summing to `total`, in
/// parts per million (`1_000_000` = exactly the mean). Integer arithmetic
/// throughout so serialised ratios are bit-stable; `0` when the mean is
/// zero.
pub fn vs_mean_ppm(value: u64, total: u64, n: u64) -> u64 {
    if total == 0 || n == 0 {
        return 0;
    }
    ((value as u128 * n as u128 * 1_000_000) / total as u128) as u64
}

/// `part` of `whole` in parts per million; `0` for an empty whole.
pub fn share_ppm(part: u64, whole: u64) -> u64 {
    if whole == 0 {
        return 0;
    }
    ((part as u128 * 1_000_000) / whole as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_value_then_key() {
        let items = vec![("b", 5u64), ("a", 5), ("c", 9), ("d", 1)];
        assert_eq!(top_k(items, 3), vec![("c", 9), ("a", 5), ("b", 5)]);
    }

    #[test]
    fn top_k_is_input_order_insensitive() {
        let fwd = vec![(1u32, 4u64), (2, 4), (3, 7)];
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(top_k(fwd, 2), top_k(rev, 2));
    }

    #[test]
    fn top_k_truncates_and_handles_small_inputs() {
        assert_eq!(top_k(vec![("x", 1u64)], 5), vec![("x", 1)]);
        assert_eq!(top_k(Vec::<(u32, u64)>::new(), 3), vec![]);
    }

    #[test]
    fn vs_mean_is_exact_ppm() {
        // 3 entries totalling 30 → mean 10; a value of 15 is 1.5x.
        assert_eq!(vs_mean_ppm(15, 30, 3), 1_500_000);
        assert_eq!(vs_mean_ppm(10, 30, 3), 1_000_000);
        assert_eq!(vs_mean_ppm(0, 30, 3), 0);
        assert_eq!(vs_mean_ppm(5, 0, 3), 0);
        assert_eq!(vs_mean_ppm(5, 30, 0), 0);
    }

    #[test]
    fn share_handles_edges() {
        assert_eq!(share_ppm(1, 4), 250_000);
        assert_eq!(share_ppm(0, 4), 0);
        assert_eq!(share_ppm(3, 0), 0);
        assert_eq!(share_ppm(u64::MAX, u64::MAX), 1_000_000);
    }
}
