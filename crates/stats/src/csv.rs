//! Minimal CSV export (RFC-4180 quoting) for series and tables.

use crate::timeseries::TimeSeries;

/// Quote a CSV field if it contains a comma, quote, or newline.
pub fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render one CSV line (with trailing newline).
pub fn csv_line<S: AsRef<str>>(fields: &[S]) -> String {
    let mut out = fields
        .iter()
        .map(|f| csv_field(f.as_ref()))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    out
}

/// Export several time series sharing a time axis to CSV.
///
/// The time axis is the union of all sample times; series values are
/// step-interpolated. Columns: `time_ps, <series names…>`. Missing values
/// (before a series' first sample) are empty fields.
pub fn series_to_csv(series: &[&TimeSeries]) -> String {
    let mut times: Vec<u64> = series
        .iter()
        .flat_map(|s| s.samples().iter().map(|&(t, _)| t))
        .collect();
    times.sort_unstable();
    times.dedup();

    let mut header: Vec<String> = vec!["time_ps".to_string()];
    header.extend(series.iter().map(|s| s.name.clone()));
    let mut out = csv_line(&header);

    for t in times {
        let mut row: Vec<String> = vec![t.to_string()];
        for s in series {
            row.push(s.value_at(t).map(|v| format!("{v}")).unwrap_or_default());
        }
        out.push_str(&csv_line(&row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(csv_field("abc"), "abc");
        assert_eq!(csv_field("1.5"), "1.5");
    }

    #[test]
    fn special_fields_are_quoted() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn line_joins_with_commas() {
        assert_eq!(csv_line(&["a", "b,c", "d"]), "a,\"b,c\",d\n");
    }

    #[test]
    fn multi_series_export_aligns_time_axis() {
        let mut a = TimeSeries::new("a");
        a.push(0, 1.0);
        a.push(20, 2.0);
        let mut b = TimeSeries::new("b");
        b.push(10, 5.0);
        let csv = series_to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ps,a,b");
        assert_eq!(lines[1], "0,1,"); // b has no value yet
        assert_eq!(lines[2], "10,1,5"); // a holds its last value
        assert_eq!(lines[3], "20,2,5");
    }
}
