//! Minimal CSV export (RFC-4180 quoting) for series and tables.

use crate::timeseries::TimeSeries;

/// Quote a CSV field if it contains a comma, quote, or line break.
///
/// RFC 4180 §2.6 requires quoting for CR as well as LF — a bare `\r`
/// terminates the record for strict parsers, so an unquoted field
/// containing one silently splits the row.
pub fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parse one RFC-4180 CSV record back into its fields — the inverse of
/// [`csv_line`] (pass the record *without* its trailing newline; quoted
/// fields may themselves contain `\r`, `\n`, commas, and `""` escapes).
pub fn parse_line(record: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = record.chars().peekable();
    loop {
        match chars.peek() {
            Some('"') => {
                // Quoted field: runs to the closing quote; `""` escapes one.
                chars.next();
                loop {
                    match chars.next() {
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                cur.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => cur.push(c),
                        None => return Err("unterminated quoted CSV field".to_string()),
                    }
                }
                match chars.next() {
                    Some(',') => fields.push(std::mem::take(&mut cur)),
                    None => {
                        fields.push(cur);
                        return Ok(fields);
                    }
                    Some(c) => return Err(format!("unexpected `{c}` after closing quote")),
                }
            }
            _ => {
                // Bare field: runs to the next comma or end of record.
                loop {
                    match chars.next() {
                        Some(',') => {
                            fields.push(std::mem::take(&mut cur));
                            break;
                        }
                        Some('"') => return Err("bare CSV field contains a quote".to_string()),
                        Some(c) => cur.push(c),
                        None => {
                            fields.push(cur);
                            return Ok(fields);
                        }
                    }
                }
            }
        }
    }
}

/// Render one CSV line (with trailing newline).
pub fn csv_line<S: AsRef<str>>(fields: &[S]) -> String {
    let mut out = fields
        .iter()
        .map(|f| csv_field(f.as_ref()))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    out
}

/// Export several time series sharing a time axis to CSV.
///
/// The time axis is the union of all sample times; series values are
/// step-interpolated. Columns: `time_ps, <series names…>`. Missing values
/// (before a series' first sample) are empty fields.
pub fn series_to_csv(series: &[&TimeSeries]) -> String {
    let mut times: Vec<u64> = series
        .iter()
        .flat_map(|s| s.samples().iter().map(|&(t, _)| t))
        .collect();
    times.sort_unstable();
    times.dedup();

    let mut header: Vec<String> = vec!["time_ps".to_string()];
    header.extend(series.iter().map(|s| s.name.clone()));
    let mut out = csv_line(&header);

    for t in times {
        let mut row: Vec<String> = vec![t.to_string()];
        for s in series {
            row.push(s.value_at(t).map(|v| format!("{v}")).unwrap_or_default());
        }
        out.push_str(&csv_line(&row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(csv_field("abc"), "abc");
        assert_eq!(csv_field("1.5"), "1.5");
    }

    #[test]
    fn special_fields_are_quoted() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn carriage_returns_are_quoted() {
        // A bare CR is a record terminator to strict RFC-4180 parsers, so
        // it must force quoting exactly like LF does.
        assert_eq!(csv_field("a\rb"), "\"a\rb\"");
        assert_eq!(csv_field("crlf\r\nend"), "\"crlf\r\nend\"");
        assert_eq!(csv_line(&["x", "a\rb"]), "x,\"a\rb\"\n");
    }

    #[test]
    fn parse_line_inverts_csv_line() {
        for fields in [
            vec!["a".to_string(), "b,c".to_string(), "say \"hi\"".to_string()],
            vec!["".to_string(), "".to_string()],
            vec!["cr\rlf\n\"q\"".to_string(), "plain".to_string()],
        ] {
            let line = csv_line(&fields);
            let parsed = parse_line(line.strip_suffix('\n').unwrap()).unwrap();
            assert_eq!(parsed, fields);
        }
    }

    #[test]
    fn parse_line_rejects_malformed_records() {
        assert!(parse_line("\"unterminated").is_err());
        assert!(parse_line("\"a\"b").is_err());
        assert!(parse_line("ba\"re").is_err());
    }

    #[test]
    fn line_joins_with_commas() {
        assert_eq!(csv_line(&["a", "b,c", "d"]), "a,\"b,c\",d\n");
    }

    #[test]
    fn multi_series_export_aligns_time_axis() {
        let mut a = TimeSeries::new("a");
        a.push(0, 1.0);
        a.push(20, 2.0);
        let mut b = TimeSeries::new("b");
        b.push(10, 5.0);
        let csv = series_to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ps,a,b");
        assert_eq!(lines[1], "0,1,"); // b has no value yet
        assert_eq!(lines[2], "10,1,5"); // a holds its last value
        assert_eq!(lines[3], "20,2,5");
    }
}
