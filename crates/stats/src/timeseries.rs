//! Sampled time series for run-time visualisation of simulation progress.

use serde::{Deserialize, Serialize};

/// A `(time, value)` series sampled during a simulation run. Time is in
/// picoseconds of virtual time (matching `pearl::Time`), values are `f64`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Series name (used as the CSV column header).
    pub name: String,
    samples: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// Append a sample. Time must be non-decreasing; out-of-order samples
    /// panic (simulators observe in virtual-time order by construction).
    pub fn push(&mut self, time_ps: u64, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(time_ps >= last, "time series sample out of order");
        }
        self.samples.push((time_ps, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples as `(time_ps, value)` pairs.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// Last sample value, if any.
    pub fn last(&self) -> Option<(u64, f64)> {
        self.samples.last().copied()
    }

    /// Minimum and maximum value over the series.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, v) in &self.samples {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Average rate of change between the first and last sample, per second
    /// of virtual time. `None` for fewer than two samples or zero elapsed
    /// time.
    pub fn mean_rate_per_sec(&self) -> Option<f64> {
        let (&(t0, v0), &(t1, v1)) = (self.samples.first()?, self.samples.last()?);
        if t1 == t0 {
            return None;
        }
        let dt_secs = (t1 - t0) as f64 / 1e12;
        Some((v1 - v0) / dt_secs)
    }

    /// Value at `time_ps` by step interpolation (the most recent sample at
    /// or before the query). `None` before the first sample.
    pub fn value_at(&self, time_ps: u64) -> Option<f64> {
        match self.samples.binary_search_by_key(&time_ps, |&(t, _)| t) {
            Ok(i) => {
                // Several samples may share a timestamp; take the last one.
                let mut i = i;
                while i + 1 < self.samples.len() && self.samples[i + 1].0 == time_ps {
                    i += 1;
                }
                Some(self.samples[i].1)
            }
            Err(0) => None,
            Err(i) => Some(self.samples[i - 1].1),
        }
    }

    /// Downsample to at most `max_points` by keeping every k-th sample
    /// (always keeps the last). Used before rendering large runs.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        assert!(max_points >= 2, "need at least two points");
        if self.samples.len() <= max_points {
            return self.clone();
        }
        let stride = self.samples.len().div_ceil(max_points);
        let mut out = TimeSeries::new(self.name.clone());
        for (i, &(t, v)) in self.samples.iter().enumerate() {
            if i % stride == 0 {
                out.samples.push((t, v));
            }
        }
        if out.samples.last() != self.samples.last() {
            out.samples.push(*self.samples.last().unwrap());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pts: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("s");
        for &(t, v) in pts {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn push_and_inspect() {
        let s = series(&[(0, 1.0), (10, 2.0), (20, 4.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some((20, 4.0)));
        assert_eq!(s.value_range(), Some((1.0, 4.0)));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_samples_panic() {
        let mut s = TimeSeries::new("s");
        s.push(10, 1.0);
        s.push(5, 2.0);
    }

    #[test]
    fn mean_rate_uses_virtual_seconds() {
        // 3 units over 2e12 ps = 2 virtual seconds -> 1.5 per second.
        let s = series(&[(0, 0.0), (2_000_000_000_000, 3.0)]);
        assert!((s.mean_rate_per_sec().unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(series(&[(5, 1.0)]).mean_rate_per_sec(), None);
        assert_eq!(series(&[(5, 1.0), (5, 2.0)]).mean_rate_per_sec(), None);
    }

    #[test]
    fn step_interpolation() {
        let s = series(&[(10, 1.0), (20, 2.0), (20, 3.0), (30, 4.0)]);
        assert_eq!(s.value_at(5), None);
        assert_eq!(s.value_at(10), Some(1.0));
        assert_eq!(s.value_at(15), Some(1.0));
        assert_eq!(s.value_at(20), Some(3.0)); // last sample at t=20
        assert_eq!(s.value_at(29), Some(3.0));
        assert_eq!(s.value_at(100), Some(4.0));
    }

    #[test]
    fn empty_series_answers_none_everywhere() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.last(), None);
        assert_eq!(s.value_range(), None);
        assert_eq!(s.value_at(0), None);
        assert_eq!(s.value_at(u64::MAX), None);
        assert_eq!(s.mean_rate_per_sec(), None);
        assert_eq!(s.downsample(2), s);
    }

    #[test]
    fn single_sample_series() {
        let s = series(&[(100, 7.0)]);
        assert_eq!(s.value_range(), Some((7.0, 7.0)));
        assert_eq!(s.value_at(99), None);
        assert_eq!(s.value_at(100), Some(7.0));
        assert_eq!(s.value_at(101), Some(7.0));
        assert_eq!(s.mean_rate_per_sec(), None);
        assert_eq!(s.downsample(2), s);
    }

    #[test]
    fn equal_timestamps_are_accepted_as_nondecreasing() {
        let mut s = TimeSeries::new("s");
        s.push(10, 1.0);
        s.push(10, 2.0);
        s.push(10, 3.0);
        assert_eq!(s.len(), 3);
        // Step interpolation resolves to the last sample at that instant.
        assert_eq!(s.value_at(10), Some(3.0));
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut s = TimeSeries::new("s");
        for i in 0..1000u64 {
            s.push(i, i as f64);
        }
        let d = s.downsample(10);
        assert!(d.len() <= 11);
        assert_eq!(d.samples().first(), Some(&(0, 0.0)));
        assert_eq!(d.samples().last(), Some(&(999, 999.0)));
        // Small series pass through unchanged.
        let small = series(&[(0, 1.0), (1, 2.0)]);
        assert_eq!(small.downsample(10), small);
    }
}
