//! Time-bucketed busy timelines: fold closed-open busy intervals into a
//! fixed number of equal buckets, and merge per-resource timelines into
//! aggregates. All arithmetic is exact `u64` picoseconds so timelines are
//! bit-stable regardless of the order the intervals were observed in.

/// Deterministic bucket width covering `[0, horizon_ps)` with `buckets`
/// buckets (the last bucket absorbs the rounding remainder). Never zero.
pub fn bucket_width(horizon_ps: u64, buckets: usize) -> u64 {
    assert!(buckets > 0, "need at least one bucket");
    (horizon_ps.div_ceil(buckets as u64)).max(1)
}

/// Fold `[start, end)` busy intervals into `buckets` buckets of
/// `bucket_ps` each, returning busy picoseconds per bucket. Time at or
/// beyond `buckets * bucket_ps` is clamped into the final bucket, and
/// empty/inverted intervals contribute nothing, so the fold is total.
/// The result is a pure function of the interval *multiset*.
pub fn bucketize(intervals: &[(u64, u64)], bucket_ps: u64, buckets: usize) -> Vec<u64> {
    assert!(bucket_ps > 0, "bucket width must be positive");
    assert!(buckets > 0, "need at least one bucket");
    let mut out = vec![0u64; buckets];
    let last = buckets as u64 - 1;
    for &(start, end) in intervals {
        if end <= start {
            continue;
        }
        let mut b = (start / bucket_ps).min(last);
        let mut at = start;
        while at < end {
            let bucket_end = if b == last {
                u64::MAX
            } else {
                (b + 1) * bucket_ps
            };
            let upto = end.min(bucket_end);
            out[b as usize] += upto - at;
            at = upto;
            b += 1;
        }
    }
    out
}

/// Element-wise sum of equal-length timelines (e.g. every outgoing link
/// of one router folded into a per-router activity timeline). Panics on
/// length mismatch; an empty input yields an empty timeline.
pub fn merge(timelines: &[&[u64]]) -> Vec<u64> {
    let Some(first) = timelines.first() else {
        return Vec::new();
    };
    let mut out = vec![0u64; first.len()];
    for t in timelines {
        assert_eq!(t.len(), out.len(), "timeline length mismatch");
        for (acc, v) in out.iter_mut().zip(t.iter()) {
            *acc += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_covers_horizon() {
        assert_eq!(bucket_width(100, 10), 10);
        assert_eq!(bucket_width(101, 10), 11);
        assert_eq!(bucket_width(0, 10), 1);
        assert_eq!(bucket_width(5, 10), 1);
    }

    #[test]
    fn bucketize_splits_across_boundaries() {
        // One interval [5, 25) over 10-wide buckets: 5 in b0, 10 in b1,
        // 5 in b2.
        assert_eq!(bucketize(&[(5, 25)], 10, 4), vec![5, 10, 5, 0]);
    }

    #[test]
    fn bucketize_interval_on_exact_boundary() {
        // [10, 20) lands entirely in bucket 1 — boundaries are closed-open.
        assert_eq!(bucketize(&[(10, 20)], 10, 3), vec![0, 10, 0]);
        // A zero-length interval at a boundary contributes nothing.
        assert_eq!(bucketize(&[(10, 10)], 10, 3), vec![0, 0, 0]);
    }

    #[test]
    fn bucketize_clamps_overflow_into_last_bucket() {
        assert_eq!(bucketize(&[(25, 40)], 10, 3), vec![0, 0, 15]);
        assert_eq!(bucketize(&[(5, 35)], 10, 2), vec![5, 25]);
    }

    #[test]
    fn bucketize_is_order_insensitive() {
        let a = bucketize(&[(0, 7), (12, 19)], 5, 4);
        let b = bucketize(&[(12, 19), (0, 7)], 5, 4);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<u64>(), 14);
    }

    #[test]
    fn merge_sums_elementwise() {
        assert_eq!(merge(&[&[1, 2, 3], &[10, 0, 1]]), vec![11, 2, 4]);
        assert_eq!(merge(&[]), Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn merge_rejects_ragged_input() {
        merge(&[&[1, 2], &[1]]);
    }
}
