//! A set-associative, tags-only cache with coherence states.
//!
//! One `Cache` instance models one level for one processor (or a shared
//! level). No data is stored — only tags and MESI state — which is what
//! lets Mermaid scale to many simulated nodes (paper, Section 6).

use crate::config::{CacheParams, Replacement};
use crate::Mesi;

/// Statistics of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probe hits (line present and valid).
    pub hits: u64,
    /// Probe misses.
    pub misses: u64,
    /// Lines evicted to make room for fills.
    pub evictions: u64,
    /// Dirty evictions (writebacks generated).
    pub writebacks: u64,
    /// Lines invalidated by snoops.
    pub snoop_invalidations: u64,
    /// Dirty lines flushed by snoops.
    pub snoop_flushes: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (zero when no accesses happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An evicted line, reported so the caller can model its writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The base address of the evicted line.
    pub line_addr: u64,
    /// The coherence state it was evicted in (`Modified` ⇒ writeback).
    pub state: Mesi,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: Mesi,
    /// LRU: last-touch stamp. FIFO: fill stamp.
    stamp: u64,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    state: Mesi::Invalid,
    stamp: 0,
};

/// A tags-only set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    sets: Vec<Line>, // sets * assoc, row-major by set
    set_count: u64,
    set_shift: u32,
    assoc: usize,
    tick: u64,
    rng: u64, // xorshift state for Replacement::Random
    stats: CacheStats,
}

impl Cache {
    /// Build an empty cache with the given parameters.
    pub fn new(params: CacheParams) -> Self {
        let set_count = params.sets();
        let assoc = params.assoc as usize;
        Cache {
            params,
            sets: vec![INVALID_LINE; (set_count as usize) * assoc],
            set_count,
            set_shift: params.line_bytes.trailing_zeros(),
            assoc,
            tick: 0,
            rng: 0x9e3779b97f4a7c15,
            stats: CacheStats::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Base address of the line containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !((self.params.line_bytes as u64) - 1)
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.set_shift;
        let set = (line & (self.set_count - 1)) as usize;
        let tag = line >> self.set_count.trailing_zeros();
        (set, tag)
    }

    #[inline]
    fn ways(&self, set: usize) -> &[Line] {
        &self.sets[set * self.assoc..(set + 1) * self.assoc]
    }

    #[inline]
    fn ways_mut(&mut self, set: usize) -> &mut [Line] {
        &mut self.sets[set * self.assoc..(set + 1) * self.assoc]
    }

    /// Look up `addr` without updating statistics or recency — a *snoop
    /// probe*. Returns the line's state (Invalid when absent).
    pub fn probe(&self, addr: u64) -> Mesi {
        let (set, tag) = self.set_and_tag(addr);
        self.ways(set)
            .iter()
            .find(|l| l.state.is_valid() && l.tag == tag)
            .map(|l| l.state)
            .unwrap_or(Mesi::Invalid)
    }

    /// CPU-side lookup: updates hit/miss statistics and (on hits) recency.
    /// Returns the state (Invalid on miss).
    pub fn lookup(&mut self, addr: u64) -> Mesi {
        self.tick += 1;
        let tick = self.tick;
        let lru = self.params.replacement == Replacement::Lru;
        let (set, tag) = self.set_and_tag(addr);
        let found = self
            .ways_mut(set)
            .iter_mut()
            .find(|l| l.state.is_valid() && l.tag == tag)
            .map(|l| {
                if lru {
                    l.stamp = tick;
                }
                l.state
            });
        match found {
            Some(st) => {
                self.stats.hits += 1;
                st
            }
            None => {
                self.stats.misses += 1;
                Mesi::Invalid
            }
        }
    }

    /// Change the state of a present line. Panics if absent (model bug).
    pub fn set_state(&mut self, addr: u64, state: Mesi) {
        let (set, tag) = self.set_and_tag(addr);
        let line = self
            .ways_mut(set)
            .iter_mut()
            .find(|l| l.state.is_valid() && l.tag == tag)
            .expect("set_state on absent line");
        line.state = state;
    }

    /// Insert the line containing `addr` with `state`, evicting if needed.
    /// Returns the victim when a valid line was displaced. Panics if the
    /// line is already present (callers must lookup first).
    pub fn fill(&mut self, addr: u64, state: Mesi) -> Option<Victim> {
        assert!(state.is_valid(), "cannot fill an invalid line");
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        debug_assert!(
            !self
                .ways(set)
                .iter()
                .any(|l| l.state.is_valid() && l.tag == tag),
            "fill of already-present line {addr:#x}"
        );
        // Prefer an invalid way.
        if let Some(l) = self.ways_mut(set).iter_mut().find(|l| !l.state.is_valid()) {
            *l = Line {
                tag,
                state,
                stamp: tick,
            };
            return None;
        }
        // Choose a victim.
        let way = match self.params.replacement {
            Replacement::Lru | Replacement::Fifo => {
                let ways = self.ways(set);
                (0..self.assoc).min_by_key(|&w| ways[w].stamp).unwrap()
            }
            Replacement::Random => {
                // xorshift64*
                self.rng ^= self.rng >> 12;
                self.rng ^= self.rng << 25;
                self.rng ^= self.rng >> 27;
                (self.rng.wrapping_mul(0x2545F4914F6CDD1D) % self.assoc as u64) as usize
            }
        };
        let set_shift = self.set_shift;
        let set_bits = self.set_count.trailing_zeros();
        let victim_line = self.ways(set)[way];
        let victim_addr = ((victim_line.tag << set_bits) | set as u64) << set_shift;
        self.ways_mut(set)[way] = Line {
            tag,
            state,
            stamp: tick,
        };
        self.stats.evictions += 1;
        if victim_line.state.is_dirty() {
            self.stats.writebacks += 1;
        }
        Some(Victim {
            line_addr: victim_addr,
            state: victim_line.state,
        })
    }

    /// Snoop-invalidate the line containing `addr`. Returns the prior state
    /// (Invalid when it was absent). A dirty prior state means the caller
    /// must account a flush.
    pub fn snoop_invalidate(&mut self, addr: u64) -> Mesi {
        let (set, tag) = self.set_and_tag(addr);
        let line = self
            .ways_mut(set)
            .iter_mut()
            .find(|l| l.state.is_valid() && l.tag == tag);
        match line {
            Some(l) => {
                let old = l.state;
                l.state = Mesi::Invalid;
                self.stats.snoop_invalidations += 1;
                if old.is_dirty() {
                    self.stats.snoop_flushes += 1;
                }
                old
            }
            None => Mesi::Invalid,
        }
    }

    /// Snoop-downgrade for a remote read: `M`/`E` lines become `S`. Returns
    /// the prior state (a dirty prior state means a flush was supplied).
    pub fn snoop_downgrade(&mut self, addr: u64) -> Mesi {
        let (set, tag) = self.set_and_tag(addr);
        let line = self
            .ways_mut(set)
            .iter_mut()
            .find(|l| l.state.is_valid() && l.tag == tag);
        match line {
            Some(l) => {
                let old = l.state;
                if matches!(old, Mesi::Modified | Mesi::Exclusive) {
                    l.state = Mesi::Shared;
                }
                if old.is_dirty() {
                    self.stats.snoop_flushes += 1;
                }
                old
            }
            None => Mesi::Invalid,
        }
    }

    /// Number of valid lines (for memory-footprint accounting and tests).
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().filter(|l| l.state.is_valid()).count()
    }

    /// Approximate simulator-side footprint of this cache model in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.sets.len() * std::mem::size_of::<Line>() + std::mem::size_of::<Self>()
    }

    /// Iterate valid lines as `(line_addr, state)` (diagnostics/tests).
    pub fn iter_valid(&self) -> impl Iterator<Item = (u64, Mesi)> + '_ {
        let set_bits = self.set_count.trailing_zeros();
        let shift = self.set_shift;
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, l)| l.state.is_valid())
            .map(move |(i, l)| {
                let set = (i / self.assoc) as u64;
                (((l.tag << set_bits) | set) << shift, l.state)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Replacement, WritePolicy};
    use pearl::Duration;

    fn params(size: u64, line: u32, assoc: u32, repl: Replacement) -> CacheParams {
        CacheParams {
            size_bytes: size,
            line_bytes: line,
            assoc,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: repl,
            hit_latency: Duration::from_ns(1),
        }
    }

    fn small_lru() -> Cache {
        // 4 sets × 2 ways × 32-byte lines = 256 B.
        Cache::new(params(256, 32, 2, Replacement::Lru))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_lru();
        assert_eq!(c.lookup(0x100), Mesi::Invalid);
        assert!(c.fill(0x100, Mesi::Exclusive).is_none());
        assert_eq!(c.lookup(0x100), Mesi::Exclusive);
        // Same line, different offset.
        assert_eq!(c.lookup(0x11f), Mesi::Exclusive);
        // Next line misses.
        assert_eq!(c.lookup(0x120), Mesi::Invalid);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn line_addr_masks_offset() {
        let c = small_lru();
        assert_eq!(c.line_addr(0x137), 0x120);
        assert_eq!(c.line_addr(0x120), 0x120);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_lru();
        // Set 0 holds lines whose (addr >> 5) % 4 == 0: 0x000, 0x080, 0x100…
        c.fill(0x000, Mesi::Shared);
        c.fill(0x080, Mesi::Shared);
        // Touch 0x000 so 0x080 is LRU.
        assert_eq!(c.lookup(0x000), Mesi::Shared);
        let v = c.fill(0x100, Mesi::Shared).unwrap();
        assert_eq!(v.line_addr, 0x080);
        assert_eq!(v.state, Mesi::Shared);
        assert_eq!(c.probe(0x000), Mesi::Shared);
        assert_eq!(c.probe(0x080), Mesi::Invalid);
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = Cache::new(params(256, 32, 2, Replacement::Fifo));
        c.fill(0x000, Mesi::Shared);
        c.fill(0x080, Mesi::Shared);
        // Touch 0x000; FIFO still evicts it (filled first).
        c.lookup(0x000);
        let v = c.fill(0x100, Mesi::Shared).unwrap();
        assert_eq!(v.line_addr, 0x000);
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let mut a = Cache::new(params(256, 32, 2, Replacement::Random));
        let mut b = Cache::new(params(256, 32, 2, Replacement::Random));
        for addr in (0..).step_by(0x80).take(20) {
            let va = if a.lookup(addr) == Mesi::Invalid {
                a.fill(addr, Mesi::Shared)
            } else {
                None
            };
            let vb = if b.lookup(addr) == Mesi::Invalid {
                b.fill(addr, Mesi::Shared)
            } else {
                None
            };
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_lru();
        c.fill(0x000, Mesi::Modified);
        c.fill(0x080, Mesi::Shared);
        let v = c.fill(0x100, Mesi::Shared).unwrap();
        assert_eq!(v.line_addr, 0x000);
        assert!(v.state.is_dirty());
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn snoop_invalidate_returns_old_state() {
        let mut c = small_lru();
        c.fill(0x200, Mesi::Modified);
        assert_eq!(c.snoop_invalidate(0x200), Mesi::Modified);
        assert_eq!(c.probe(0x200), Mesi::Invalid);
        assert_eq!(c.snoop_invalidate(0x200), Mesi::Invalid);
        assert_eq!(c.stats().snoop_invalidations, 1);
        assert_eq!(c.stats().snoop_flushes, 1);
    }

    #[test]
    fn snoop_downgrade_demotes_owners() {
        let mut c = small_lru();
        c.fill(0x200, Mesi::Modified);
        assert_eq!(c.snoop_downgrade(0x200), Mesi::Modified);
        assert_eq!(c.probe(0x200), Mesi::Shared);
        // Downgrading a shared line leaves it shared.
        assert_eq!(c.snoop_downgrade(0x200), Mesi::Shared);
        assert_eq!(c.probe(0x200), Mesi::Shared);
        assert_eq!(c.stats().snoop_flushes, 1);
    }

    #[test]
    fn set_state_transitions() {
        let mut c = small_lru();
        c.fill(0x40, Mesi::Exclusive);
        c.set_state(0x40, Mesi::Modified);
        assert_eq!(c.probe(0x40), Mesi::Modified);
    }

    #[test]
    #[should_panic(expected = "absent line")]
    fn set_state_on_absent_line_panics() {
        let mut c = small_lru();
        c.set_state(0x40, Mesi::Modified);
    }

    #[test]
    fn probe_does_not_change_stats_or_recency() {
        let mut c = small_lru();
        c.fill(0x000, Mesi::Shared);
        c.fill(0x080, Mesi::Shared);
        let before = c.stats();
        // Probe 0x000 (would refresh LRU if it were a lookup).
        assert_eq!(c.probe(0x000), Mesi::Shared);
        assert_eq!(c.stats(), before);
        // 0x000 is still the LRU victim.
        let v = c.fill(0x100, Mesi::Shared).unwrap();
        assert_eq!(v.line_addr, 0x000);
    }

    #[test]
    fn iter_valid_reconstructs_addresses() {
        let mut c = small_lru();
        c.fill(0x0123 & !31, Mesi::Shared);
        c.fill(0x4560 & !31, Mesi::Modified);
        let mut lines: Vec<_> = c.iter_valid().collect();
        lines.sort();
        assert_eq!(
            lines,
            vec![
                (0x0123u64 & !31, Mesi::Shared),
                (0x4560u64 & !31, Mesi::Modified)
            ]
        );
    }

    #[test]
    fn footprint_is_small_and_size_independent() {
        // A 1 MiB cache with 64-byte lines = 16384 lines of tag state.
        let big = Cache::new(params(1 << 20, 64, 8, Replacement::Lru));
        // Tags-only: far below the simulated capacity.
        assert!(big.footprint_bytes() < (1 << 20) / 2);
        assert_eq!(big.valid_lines(), 0);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = small_lru();
        c.fill(0x00, Mesi::Shared);
        c.lookup(0x00);
        c.lookup(0x00);
        c.lookup(0x999); // miss
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
