//! Main-memory model: "a simple DRAM memory" (paper, Fig. 3a).

use pearl::{Duration, Time};

pub use crate::config::DramParams;

/// Statistics of the DRAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses (writebacks and write-throughs).
    pub writes: u64,
    /// Total queueing delay (single-server mode only).
    pub wait: Duration,
}

/// The DRAM main memory.
#[derive(Debug, Clone)]
pub struct Dram {
    params: DramParams,
    busy_until: Time,
    stats: DramStats,
}

impl Dram {
    /// A new idle memory.
    pub fn new(params: DramParams) -> Self {
        Dram {
            params,
            busy_until: Time::ZERO,
            stats: DramStats::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &DramParams {
        &self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Perform an access starting at `now`; returns its completion time.
    /// In single-server mode concurrent accesses queue; otherwise the
    /// memory is ideally pipelined.
    pub fn access(&mut self, now: Time, write: bool) -> Time {
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let start = if self.params.single_server {
            let s = now.max(self.busy_until);
            self.stats.wait += s.since(now);
            s
        } else {
            now
        };
        let end = start + self.params.access_latency;
        if self.params.single_server {
            self.busy_until = end;
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_memory_never_queues() {
        let mut d = Dram::new(DramParams {
            access_latency: Duration::from_ns(100),
            single_server: false,
        });
        let t1 = d.access(Time::ZERO, false);
        let t2 = d.access(Time::ZERO, false);
        assert_eq!(t1, Time::from_ps(100_000));
        assert_eq!(t2, Time::from_ps(100_000));
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().wait, Duration::ZERO);
    }

    #[test]
    fn single_server_memory_queues() {
        let mut d = Dram::new(DramParams {
            access_latency: Duration::from_ns(100),
            single_server: true,
        });
        let t1 = d.access(Time::ZERO, false);
        let t2 = d.access(Time::from_ns(10), true);
        assert_eq!(t1, Time::from_ps(100_000));
        assert_eq!(t2, Time::from_ps(200_000));
        assert_eq!(d.stats().wait, Duration::from_ns(90));
        assert_eq!(d.stats().writes, 1);
    }
}
