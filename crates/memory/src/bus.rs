//! The node bus: a single shared server with FCFS arbitration.
//!
//! The paper (Fig. 3a) calls the bus "a simple forwarding mechanism,
//! carrying out arbitration upon multiple accesses". We model it as a
//! single resource with a busy-until clock: a transaction arriving while
//! the bus is busy waits; occupancy is arbitration cycles plus data beats.

use pearl::{Duration, Time};

pub use crate::config::BusParams;

/// Statistics of the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Transactions carried.
    pub transactions: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total time transactions spent waiting for the bus.
    pub wait: Duration,
    /// Total time the bus was occupied.
    pub busy: Duration,
}

/// The shared node bus.
#[derive(Debug, Clone)]
pub struct Bus {
    params: BusParams,
    busy_until: Time,
    stats: BusStats,
}

/// Outcome of one bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// When the transaction was granted the bus.
    pub start: Time,
    /// When the transaction released the bus.
    pub end: Time,
    /// How long it waited for arbitration (start − request).
    pub wait: Duration,
}

impl Bus {
    /// A new idle bus.
    pub fn new(params: BusParams) -> Self {
        Bus {
            params,
            busy_until: Time::ZERO,
            stats: BusStats::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &BusParams {
        &self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// When the bus next becomes free.
    pub fn available_at(&self) -> Time {
        self.busy_until
    }

    /// Carry a transaction of `bytes` arriving at `now`; the transaction
    /// additionally holds the bus for `extra` (e.g. a coupled DRAM access
    /// on a non-split-transaction bus). Returns the grant window.
    pub fn transact(&mut self, now: Time, bytes: u32, extra: Duration) -> BusGrant {
        let start = now.max(self.busy_until);
        let occupancy = self.params.transfer_time(bytes) + extra;
        let end = start + occupancy;
        self.busy_until = end;
        self.stats.transactions += 1;
        self.stats.bytes += bytes as u64;
        let wait = start.since(now);
        self.stats.wait += wait;
        self.stats.busy += occupancy;
        BusGrant { start, end, wait }
    }

    /// Bus utilization over `[0, horizon)`.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.stats.busy.as_ps() as f64 / horizon.as_ps() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pearl::Frequency;

    fn bus() -> Bus {
        // 10 ns per cycle, 8-byte beats, 1 arb cycle.
        Bus::new(BusParams {
            width_bytes: 8,
            clock: Frequency::from_mhz(100),
            arbitration_cycles: 1,
        })
    }

    #[test]
    fn idle_bus_grants_immediately() {
        let mut b = bus();
        let g = b.transact(Time::from_ps(1000), 32, Duration::ZERO);
        assert_eq!(g.start, Time::from_ps(1000));
        // 1 arb + 4 beats = 5 cycles = 50 ns.
        assert_eq!(g.end, Time::from_ps(1000) + Duration::from_ns(50));
        assert_eq!(g.wait, Duration::ZERO);
    }

    #[test]
    fn contending_transactions_queue_fcfs() {
        let mut b = bus();
        let g1 = b.transact(Time::ZERO, 8, Duration::ZERO); // 2 cycles = 20 ns
        let g2 = b.transact(Time::from_ps(5_000), 8, Duration::ZERO);
        assert_eq!(g1.end, Time::from_ps(20_000));
        assert_eq!(g2.start, Time::from_ps(20_000));
        assert_eq!(g2.wait, Duration::from_ps(15_000));
        assert_eq!(b.stats().transactions, 2);
        assert_eq!(b.stats().bytes, 16);
    }

    #[test]
    fn extra_occupancy_extends_the_hold() {
        let mut b = bus();
        let g = b.transact(Time::ZERO, 8, Duration::from_ns(200));
        assert_eq!(g.end, Time::from_ps(220_000));
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut b = bus();
        b.transact(Time::ZERO, 8, Duration::ZERO); // busy 20 ns
        let u = b.utilization(Time::from_ps(40_000));
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(b.utilization(Time::ZERO), 0.0);
    }
}
