//! # mermaid-memory — the node memory hierarchy
//!
//! Models the memory side of the single-node computational template
//! (paper, Fig. 3a): a multi-level **cache hierarchy**, a **bus** with
//! arbitration, and a **DRAM** main memory. Multiple processors may share
//! the bus; coherence between their private caches is kept by a **snoopy
//! write-invalidate protocol** (MESI or MSI).
//!
//! Following the paper (Section 6), caches are *tags-only*: no data values
//! are stored, only address tags and coherence state, which keeps simulator
//! memory consumption independent of the simulated memory size.
//!
//! The central type is [`MemorySystem`]: the CPU model calls
//! [`MemorySystem::access`] for every `load`, `store`, and `ifetch`
//! operation and receives the access latency, which level served it, and
//! how long the access waited for the bus.

pub mod bus;
pub mod cache;
pub mod config;
pub mod dram;
pub mod system;

pub use bus::{Bus, BusParams};
pub use cache::{Cache, CacheStats, Victim};
pub use config::{CacheParams, CoherenceProtocol, MemSystemConfig, Replacement, WritePolicy};
pub use dram::{Dram, DramParams};
pub use system::{Access, AccessReport, HitLevel, MemStats, MemorySystem};

/// Coherence states of the snoopy write-invalidate protocol.
///
/// The full MESI set; under the MSI protocol configuration the `E` state is
/// simply never granted. Second-level caches reuse the same states with
/// `M` = present-dirty and `S` = present-clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mesi {
    /// Modified: sole owner, dirty with respect to memory.
    Modified,
    /// Exclusive: sole owner, clean (MESI only).
    Exclusive,
    /// Shared: possibly replicated, clean.
    Shared,
    /// Invalid / not present.
    Invalid,
}

impl Mesi {
    /// True when the line is present in the cache.
    #[inline]
    pub const fn is_valid(self) -> bool {
        !matches!(self, Mesi::Invalid)
    }

    /// True when the line must be written back on eviction or flush.
    #[inline]
    pub const fn is_dirty(self) -> bool {
        matches!(self, Mesi::Modified)
    }
}
