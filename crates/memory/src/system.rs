//! The node memory system: per-CPU cache stacks, snoopy coherence, the
//! shared bus, and DRAM (paper, Fig. 3a).
//!
//! ## Model conventions
//!
//! * The bus is **not** split-transaction: a miss transaction holds the bus
//!   for arbitration + supplier latency + line transfer. Writebacks and
//!   write-throughs are *posted*: they occupy the bus but do not add to the
//!   requesting CPU's latency.
//! * Inclusion is enforced between L2 and the L1s: an L2 eviction
//!   invalidates the contained L1 lines (flushing dirty ones into the
//!   posted writeback).
//! * Dirtiness is tracked per level; an L1 eviction of a Modified line
//!   writes back into the L2 (marking it Modified there) or, without an L2,
//!   posts a bus writeback to DRAM.
//! * Instruction lines live in the L1I/L2 in Shared state and never become
//!   dirty; code and data address ranges are assumed disjoint (the
//!   annotation translator guarantees this).

use mermaid_probe::{AccessKind, HitWhere, ProbeHandle, SimEvent};
use pearl::{Duration, Time};

use crate::bus::{Bus, BusGrant};
use crate::cache::{Cache, CacheStats, Victim};
use crate::config::{CoherenceProtocol, MemSystemConfig, WritePolicy};
use crate::dram::Dram;
use crate::Mesi;

/// The kind of memory access a CPU issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch (L1I side).
    IFetch,
    /// Data load.
    Read,
    /// Data store.
    Write,
}

/// Which level ultimately served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// First-level hit.
    L1,
    /// Second-level hit.
    L2,
    /// Supplied by another CPU's cache (snoop flush).
    CacheToCache,
    /// Supplied by main memory.
    Dram,
}

/// Outcome of one CPU access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessReport {
    /// Total CPU-visible latency.
    pub latency: Duration,
    /// The deepest level involved in serving the access.
    pub level: HitLevel,
    /// Time spent waiting for bus arbitration.
    pub bus_wait: Duration,
    /// Cache lines the access touched (>1 when it straddles lines).
    pub lines: u32,
}

/// Aggregated statistics of the whole memory system.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Per-CPU L1I statistics.
    pub l1i: Vec<CacheStats>,
    /// Per-CPU L1D statistics.
    pub l1d: Vec<CacheStats>,
    /// Per-CPU L2 statistics (empty when no L2 is configured).
    pub l2: Vec<CacheStats>,
    /// Bus transactions carried.
    pub bus_transactions: u64,
    /// Bytes moved over the bus.
    pub bus_bytes: u64,
    /// Total bus-wait time.
    pub bus_wait: Duration,
    /// Total bus-busy time.
    pub bus_busy: Duration,
    /// DRAM reads.
    pub dram_reads: u64,
    /// DRAM writes.
    pub dram_writes: u64,
}

struct CpuCaches {
    l1i: Cache,
    l1d: Cache,
    l2: Option<Cache>,
}

/// Probe-event access kind of a model access kind.
fn access_kind(kind: Access) -> AccessKind {
    match kind {
        Access::IFetch => AccessKind::IFetch,
        Access::Read => AccessKind::Read,
        Access::Write => AccessKind::Write,
    }
}

/// Probe-event hit level of a model hit level.
fn hit_where(level: HitLevel) -> HitWhere {
    match level {
        HitLevel::L1 => HitWhere::L1,
        HitLevel::L2 => HitWhere::L2,
        HitLevel::CacheToCache => HitWhere::CacheToCache,
        HitLevel::Dram => HitWhere::Dram,
    }
}

/// The memory system of one node.
pub struct MemorySystem {
    cfg: MemSystemConfig,
    stacks: Vec<CpuCaches>,
    bus: Bus,
    dram: Dram,
    /// Instrumentation (disabled by default; observation only, never read
    /// back into timing decisions).
    probe: ProbeHandle,
    /// Node index stamped on emitted probe events.
    node: u32,
}

impl MemorySystem {
    /// Build an empty (cold-cache) memory system.
    pub fn new(cfg: MemSystemConfig) -> Self {
        cfg.validate();
        let stacks = (0..cfg.cpus)
            .map(|_| CpuCaches {
                l1i: Cache::new(cfg.l1i),
                l1d: Cache::new(cfg.l1d),
                l2: cfg.l2.map(Cache::new),
            })
            .collect();
        MemorySystem {
            bus: Bus::new(cfg.bus),
            dram: Dram::new(cfg.dram),
            cfg,
            stacks,
            probe: ProbeHandle::disabled(),
            node: 0,
        }
    }

    /// Attach an instrumentation handle; emitted events carry `node` as
    /// their node index (a single-node system passes 0).
    pub fn set_probe(&mut self, node: u32, probe: ProbeHandle) {
        self.node = node;
        self.probe = probe;
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemSystemConfig {
        &self.cfg
    }

    /// Number of CPUs on the node.
    pub fn cpus(&self) -> usize {
        self.cfg.cpus
    }

    /// Perform an access of `size` bytes at `addr` for `cpu`, starting at
    /// `now`. Accesses that straddle line boundaries are split and served
    /// sequentially.
    pub fn access(
        &mut self,
        cpu: usize,
        kind: Access,
        addr: u64,
        size: u32,
        now: Time,
    ) -> AccessReport {
        assert!(cpu < self.stacks.len(), "unknown CPU {cpu}");
        assert!(size > 0, "zero-size access");
        let line_bytes = match kind {
            Access::IFetch => self.cfg.l1i.line_bytes,
            _ => self.cfg.l1d.line_bytes,
        } as u64;
        let first = addr & !(line_bytes - 1);
        let last = (addr + size as u64 - 1) & !(line_bytes - 1);

        let mut t = now;
        let mut total = Duration::ZERO;
        let mut bus_wait = Duration::ZERO;
        let mut worst = HitLevel::L1;
        let mut lines = 0u32;
        let mut line = first;
        loop {
            let (lat, lvl, wait) =
                self.access_line(cpu, kind, line, size.min(line_bytes as u32), t);
            self.probe.emit(|| SimEvent::CacheAccess {
                ts_ps: t.as_ps(),
                node: self.node,
                cpu: cpu as u32,
                kind: access_kind(kind),
                hit: hit_where(lvl),
            });
            total += lat;
            t += lat;
            bus_wait += wait;
            worst = worst.max(lvl);
            lines += 1;
            if line == last {
                break;
            }
            line += line_bytes;
        }
        AccessReport {
            latency: total,
            level: worst,
            bus_wait,
            lines,
        }
    }

    /// Carry one bus transaction, mirroring the grant window into the
    /// probe. All bus traffic goes through here so every tenure is traced.
    fn bus_transact(&mut self, now: Time, bytes: u32, extra: Duration) -> BusGrant {
        let grant = self.bus.transact(now, bytes, extra);
        self.probe.emit(|| SimEvent::BusTransaction {
            node: self.node,
            start_ps: grant.start.as_ps(),
            end_ps: grant.end.as_ps(),
            wait_ps: grant.wait.as_ps(),
        });
        grant
    }

    /// One line-granular access.
    fn access_line(
        &mut self,
        cpu: usize,
        kind: Access,
        addr: u64,
        bytes: u32,
        now: Time,
    ) -> (Duration, HitLevel, Duration) {
        match kind {
            Access::IFetch => self.ifetch_line(cpu, addr, now),
            Access::Read => self.read_line(cpu, addr, now),
            Access::Write => self.write_line(cpu, addr, bytes, now),
        }
    }

    fn ifetch_line(&mut self, cpu: usize, addr: u64, now: Time) -> (Duration, HitLevel, Duration) {
        let l1_hit = self.cfg.l1i.hit_latency;
        if self.stacks[cpu].l1i.lookup(addr).is_valid() {
            return (l1_hit, HitLevel::L1, Duration::ZERO);
        }
        let mut elapsed = l1_hit;
        // L2 probe.
        if self.stacks[cpu].l2.is_some() {
            let l2_hit = self.cfg.l2.unwrap().hit_latency;
            elapsed += l2_hit;
            let st = self.stacks[cpu].l2.as_mut().unwrap().lookup(addr);
            if st.is_valid() {
                self.fill_l1i(cpu, addr);
                return (elapsed, HitLevel::L2, Duration::ZERO);
            }
        }
        // Miss to memory: instructions come from DRAM (no snooping — code is
        // read-only and not present in remote data caches).
        let line = self.cfg.l1i.line_bytes;
        let grant = self
            .bus
            .transact(now + elapsed, line, self.cfg.dram.access_latency);
        self.dram.access(grant.start, false);
        let done = grant.end;
        self.fill_l2(cpu, addr, Mesi::Shared, done);
        self.fill_l1i(cpu, addr);
        (done.since(now), HitLevel::Dram, grant.wait)
    }

    fn read_line(&mut self, cpu: usize, addr: u64, now: Time) -> (Duration, HitLevel, Duration) {
        let l1_hit = self.cfg.l1d.hit_latency;
        if self.stacks[cpu].l1d.lookup(addr).is_valid() {
            return (l1_hit, HitLevel::L1, Duration::ZERO);
        }
        let mut elapsed = l1_hit;
        if self.stacks[cpu].l2.is_some() {
            let l2_hit = self.cfg.l2.unwrap().hit_latency;
            elapsed += l2_hit;
            let st = self.stacks[cpu].l2.as_mut().unwrap().lookup(addr);
            if st.is_valid() {
                // Inherit the L2 state into the L1D.
                self.fill_l1d(cpu, addr, st, now + elapsed);
                return (elapsed, HitLevel::L2, Duration::ZERO);
            }
        }
        // Bus read (BusRd): snoop all other stacks.
        let (sharer, dirty) = self.snoop_read(cpu, addr);
        let supply = if dirty {
            self.cfg.c2c_latency
        } else {
            self.cfg.dram.access_latency
        };
        let line = self.cfg.l1d.line_bytes;
        let grant = self.bus_transact(now + elapsed, line, supply);
        if !dirty {
            self.dram.access(grant.start, false);
        }
        let state = if sharer || self.cfg.protocol == CoherenceProtocol::Msi {
            Mesi::Shared
        } else {
            Mesi::Exclusive
        };
        let done = grant.end;
        self.fill_l2(cpu, addr, state, done);
        self.fill_l1d(cpu, addr, state, done);
        let level = if dirty {
            HitLevel::CacheToCache
        } else {
            HitLevel::Dram
        };
        (done.since(now), level, grant.wait)
    }

    fn write_line(
        &mut self,
        cpu: usize,
        addr: u64,
        bytes: u32,
        now: Time,
    ) -> (Duration, HitLevel, Duration) {
        match self.cfg.l1d.write_policy {
            WritePolicy::WriteBack => self.write_back_line(cpu, addr, now),
            WritePolicy::WriteThrough => self.write_through_line(cpu, addr, bytes, now),
        }
    }

    fn write_back_line(
        &mut self,
        cpu: usize,
        addr: u64,
        now: Time,
    ) -> (Duration, HitLevel, Duration) {
        let l1_hit = self.cfg.l1d.hit_latency;
        let st = self.stacks[cpu].l1d.lookup(addr);
        match st {
            Mesi::Modified => return (l1_hit, HitLevel::L1, Duration::ZERO),
            Mesi::Exclusive => {
                // Silent E→M upgrade.
                self.stacks[cpu].l1d.set_state(addr, Mesi::Modified);
                return (l1_hit, HitLevel::L1, Duration::ZERO);
            }
            Mesi::Shared => {
                // Upgrade (BusUpgr): invalidate remote copies; control-only
                // bus transaction.
                self.snoop_invalidate_remote(cpu, addr);
                let grant = self.bus_transact(now + l1_hit, 0, Duration::ZERO);
                self.stacks[cpu].l1d.set_state(addr, Mesi::Modified);
                return (grant.end.since(now), HitLevel::L1, grant.wait);
            }
            Mesi::Invalid => {}
        }
        let mut elapsed = l1_hit;
        // L2 probe.
        if self.stacks[cpu].l2.is_some() {
            let l2_hit = self.cfg.l2.unwrap().hit_latency;
            elapsed += l2_hit;
            let st2 = self.stacks[cpu].l2.as_mut().unwrap().lookup(addr);
            if st2.is_valid() {
                if st2 == Mesi::Shared && self.has_remote_copy(cpu, addr) {
                    // Upgrade from L2-shared: invalidate remotes.
                    self.snoop_invalidate_remote(cpu, addr);
                    let grant = self.bus_transact(now + elapsed, 0, Duration::ZERO);
                    self.fill_l1d(cpu, addr, Mesi::Modified, grant.end);
                    return (grant.end.since(now), HitLevel::L2, grant.wait);
                }
                self.fill_l1d(cpu, addr, Mesi::Modified, now + elapsed);
                return (elapsed, HitLevel::L2, Duration::ZERO);
            }
        }
        if !self.cfg.l1d.write_allocate {
            // Write-no-allocate: post the word to memory, don't fill.
            let grant = self.bus_transact(
                now + elapsed,
                self.cfg.l1d.line_bytes.min(8),
                Duration::ZERO,
            );
            self.dram.access(grant.start, true);
            self.snoop_invalidate_remote(cpu, addr);
            return (elapsed, HitLevel::Dram, Duration::ZERO);
        }
        // Write-allocate miss: BusRdX — read with intent to modify.
        let dirty = self.snoop_rdx(cpu, addr);
        let supply = if dirty {
            self.cfg.c2c_latency
        } else {
            self.cfg.dram.access_latency
        };
        let line = self.cfg.l1d.line_bytes;
        let grant = self.bus_transact(now + elapsed, line, supply);
        if !dirty {
            self.dram.access(grant.start, false);
        }
        let done = grant.end;
        self.fill_l2(cpu, addr, Mesi::Shared, done);
        self.fill_l1d(cpu, addr, Mesi::Modified, done);
        let level = if dirty {
            HitLevel::CacheToCache
        } else {
            HitLevel::Dram
        };
        (done.since(now), level, grant.wait)
    }

    fn write_through_line(
        &mut self,
        cpu: usize,
        addr: u64,
        bytes: u32,
        now: Time,
    ) -> (Duration, HitLevel, Duration) {
        let l1_hit = self.cfg.l1d.hit_latency;
        let hit = self.stacks[cpu].l1d.lookup(addr).is_valid();
        if hit {
            // Posted write-through; remote copies are invalidated
            // (write-invalidate snooping).
            let grant = self.bus_transact(now + l1_hit, bytes, Duration::ZERO);
            self.dram.access(grant.start, true);
            self.snoop_invalidate_remote(cpu, addr);
            return (l1_hit, HitLevel::L1, Duration::ZERO);
        }
        if self.cfg.l1d.write_allocate {
            // Fill like a read, then write through.
            let (lat, level, wait) = self.read_line(cpu, addr, now);
            let grant = self.bus_transact(now + lat, bytes, Duration::ZERO);
            self.dram.access(grant.start, true);
            self.snoop_invalidate_remote(cpu, addr);
            (lat, level, wait)
        } else {
            // Write-around: post to memory only.
            let grant = self.bus_transact(now + l1_hit, bytes, Duration::ZERO);
            self.dram.access(grant.start, true);
            self.snoop_invalidate_remote(cpu, addr);
            (l1_hit, HitLevel::Dram, Duration::ZERO)
        }
    }

    /// Snoop for a remote read (BusRd): downgrade M/E holders to S.
    /// Returns `(any_sharer, dirty_supplied)`.
    fn snoop_read(&mut self, cpu: usize, addr: u64) -> (bool, bool) {
        let mut sharer = false;
        let mut dirty = false;
        for (q, stack) in self.stacks.iter_mut().enumerate() {
            if q == cpu {
                continue;
            }
            let d = stack.l1d.snoop_downgrade(addr);
            if d.is_valid() {
                sharer = true;
            }
            if d.is_dirty() {
                dirty = true;
            }
            if let Some(l2) = stack.l2.as_mut() {
                let d2 = l2.snoop_downgrade(addr);
                if d2.is_valid() {
                    sharer = true;
                }
                if d2.is_dirty() {
                    dirty = true;
                }
            }
        }
        (sharer, dirty)
    }

    /// Snoop for a remote write miss (BusRdX): invalidate all remote
    /// copies. Returns whether a dirty copy was flushed.
    fn snoop_rdx(&mut self, cpu: usize, addr: u64) -> bool {
        let mut dirty = false;
        for (q, stack) in self.stacks.iter_mut().enumerate() {
            if q == cpu {
                continue;
            }
            if stack.l1d.snoop_invalidate(addr).is_dirty() {
                dirty = true;
            }
            if let Some(l2) = stack.l2.as_mut() {
                if l2.snoop_invalidate(addr).is_dirty() {
                    dirty = true;
                }
            }
        }
        dirty
    }

    /// Invalidate remote copies without expecting dirty data (BusUpgr and
    /// write-through invalidations).
    fn snoop_invalidate_remote(&mut self, cpu: usize, addr: u64) {
        let _ = self.snoop_rdx(cpu, addr);
    }

    /// True when any other CPU holds the line (L1D or L2).
    fn has_remote_copy(&self, cpu: usize, addr: u64) -> bool {
        self.stacks.iter().enumerate().any(|(q, stack)| {
            q != cpu
                && (stack.l1d.probe(addr).is_valid()
                    || stack
                        .l2
                        .as_ref()
                        .is_some_and(|l2| l2.probe(addr).is_valid()))
        })
    }

    fn fill_l1i(&mut self, cpu: usize, addr: u64) {
        // Instruction lines are never dirty; victims vanish silently.
        let _ = self.stacks[cpu].l1i.fill(addr, Mesi::Shared);
    }

    /// Fill the L1D, handling a dirty victim's writeback into the L2 (or a
    /// posted bus writeback without an L2).
    fn fill_l1d(&mut self, cpu: usize, addr: u64, state: Mesi, now: Time) {
        if self.stacks[cpu].l1d.probe(addr).is_valid() {
            // Already present (e.g. refilled by an inclusive path); just
            // upgrade the state if needed.
            self.stacks[cpu].l1d.set_state(addr, state);
            return;
        }
        if let Some(victim) = self.stacks[cpu].l1d.fill(addr, state) {
            self.probe.emit(|| SimEvent::CacheEvict {
                ts_ps: now.as_ps(),
                node: self.node,
                cpu: cpu as u32,
                level: 1,
                dirty: victim.state.is_dirty(),
            });
            self.writeback_l1_victim(cpu, victim, now);
        }
    }

    fn writeback_l1_victim(&mut self, cpu: usize, victim: Victim, now: Time) {
        if !victim.state.is_dirty() {
            return;
        }
        if self.stacks[cpu].l2.is_some() {
            // Inclusion guarantees the L2 still holds the line.
            let present = self.stacks[cpu]
                .l2
                .as_ref()
                .unwrap()
                .probe(victim.line_addr)
                .is_valid();
            if present {
                self.stacks[cpu]
                    .l2
                    .as_mut()
                    .unwrap()
                    .set_state(victim.line_addr, Mesi::Modified);
                return;
            }
        }
        // Posted writeback to memory.
        let line = self.cfg.l1d.line_bytes;
        let grant = self.bus_transact(now, line, Duration::ZERO);
        self.dram.access(grant.start, true);
    }

    /// Fill the L2 (when configured), enforcing inclusion on eviction.
    fn fill_l2(&mut self, cpu: usize, addr: u64, state: Mesi, now: Time) {
        let Some(l2_params) = self.cfg.l2 else {
            return;
        };
        if self.stacks[cpu].l2.as_ref().unwrap().probe(addr).is_valid() {
            return;
        }
        let victim = self.stacks[cpu].l2.as_mut().unwrap().fill(addr, state);
        let Some(victim) = victim else {
            return;
        };
        // Inclusion: purge all L1 lines contained in the evicted L2 line.
        let mut dirty = victim.state.is_dirty();
        let l1d_line = self.cfg.l1d.line_bytes as u64;
        let l1i_line = self.cfg.l1i.line_bytes as u64;
        let span = l2_params.line_bytes as u64;
        let mut a = victim.line_addr;
        while a < victim.line_addr + span {
            if self.stacks[cpu].l1d.snoop_invalidate(a).is_dirty() {
                dirty = true;
            }
            a += l1d_line;
        }
        let mut a = victim.line_addr;
        while a < victim.line_addr + span {
            let _ = self.stacks[cpu].l1i.snoop_invalidate(a);
            a += l1i_line;
        }
        self.probe.emit(|| SimEvent::CacheEvict {
            ts_ps: now.as_ps(),
            node: self.node,
            cpu: cpu as u32,
            level: 2,
            dirty,
        });
        if dirty {
            let grant = self.bus_transact(now, l2_params.line_bytes, Duration::ZERO);
            self.dram.access(grant.start, true);
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MemStats {
        let bus = self.bus.stats();
        let dram = self.dram.stats();
        MemStats {
            l1i: self.stacks.iter().map(|s| s.l1i.stats()).collect(),
            l1d: self.stacks.iter().map(|s| s.l1d.stats()).collect(),
            l2: self
                .stacks
                .iter()
                .filter_map(|s| s.l2.as_ref().map(Cache::stats))
                .collect(),
            bus_transactions: bus.transactions,
            bus_bytes: bus.bytes,
            bus_wait: bus.wait,
            bus_busy: bus.busy,
            dram_reads: dram.reads,
            dram_writes: dram.writes,
        }
    }

    /// Simulator-side memory footprint of the model in bytes — the quantity
    /// of experiment E3 (paper Section 6: tags only, no data).
    pub fn footprint_bytes(&self) -> usize {
        let caches: usize = self
            .stacks
            .iter()
            .map(|s| {
                s.l1i.footprint_bytes()
                    + s.l1d.footprint_bytes()
                    + s.l2.as_ref().map_or(0, Cache::footprint_bytes)
            })
            .sum();
        caches + std::mem::size_of::<Self>()
    }

    /// Verify the system-wide coherence invariant for `addr`: at most one
    /// M/E owner across L1Ds, and M/E excludes any other valid copy.
    /// Panics (with a description) on violation. Test/diagnostic hook.
    pub fn check_coherence(&self, addr: u64) {
        let states: Vec<Mesi> = self.stacks.iter().map(|s| s.l1d.probe(addr)).collect();
        let owners = states
            .iter()
            .filter(|s| matches!(s, Mesi::Modified | Mesi::Exclusive))
            .count();
        let valids = states.iter().filter(|s| s.is_valid()).count();
        assert!(
            owners <= 1,
            "coherence violation at {addr:#x}: {owners} M/E owners ({states:?})"
        );
        if owners == 1 {
            assert!(
                valids == 1,
                "coherence violation at {addr:#x}: owner coexists with sharers ({states:?})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheParams, Replacement};

    fn cfg(cpus: usize) -> MemSystemConfig {
        MemSystemConfig::small(cpus)
    }

    fn sys(cpus: usize) -> MemorySystem {
        MemorySystem::new(cfg(cpus))
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut m = sys(1);
        let r1 = m.access(0, Access::Read, 0x1000, 4, Time::ZERO);
        assert_eq!(r1.level, HitLevel::Dram);
        let r2 = m.access(
            0,
            Access::Read,
            0x1000,
            4,
            Time::from_ps(r1.latency.as_ps()),
        );
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, Duration::from_ns(10));
        let s = m.stats();
        assert_eq!(s.l1d[0].misses, 1);
        assert_eq!(s.l1d[0].hits, 1);
        assert_eq!(s.dram_reads, 1);
    }

    #[test]
    fn miss_latency_is_probes_plus_bus_plus_dram() {
        let mut m = sys(1);
        let r = m.access(0, Access::Read, 0x1000, 4, Time::ZERO);
        // l1 probe 10ns + bus (1 arb + 4 beats @ 20ns = 100ns) + dram 200ns.
        assert_eq!(r.latency, Duration::from_ns(10 + 100 + 200));
    }

    #[test]
    fn ifetch_uses_the_instruction_cache() {
        let mut m = sys(1);
        let r1 = m.access(0, Access::IFetch, 0x40, 4, Time::ZERO);
        assert_eq!(r1.level, HitLevel::Dram);
        let r2 = m.access(
            0,
            Access::IFetch,
            0x44,
            4,
            Time::from_ps(r1.latency.as_ps()),
        );
        assert_eq!(r2.level, HitLevel::L1);
        // Data cache untouched.
        assert_eq!(m.stats().l1d[0].misses, 0);
        assert_eq!(m.stats().l1i[0].misses, 1);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut m = sys(1);
        // 32-byte lines; an 8-byte access at offset 28 straddles.
        let r = m.access(0, Access::Read, 0x101c, 8, Time::ZERO);
        assert_eq!(r.lines, 2);
        assert_eq!(m.stats().l1d[0].misses, 2);
    }

    #[test]
    fn mesi_grants_exclusive_on_sole_read() {
        let mut m = sys(2);
        m.access(0, Access::Read, 0x2000, 4, Time::ZERO);
        // CPU0 now holds E; a write is a silent upgrade (no bus traffic).
        let tx_before = m.stats().bus_transactions;
        let w = m.access(0, Access::Write, 0x2000, 4, Time::from_us(1));
        assert_eq!(w.level, HitLevel::L1);
        assert_eq!(m.stats().bus_transactions, tx_before);
        m.check_coherence(0x2000);
    }

    #[test]
    fn msi_always_grants_shared() {
        let mut c = cfg(2);
        c.protocol = CoherenceProtocol::Msi;
        let mut m = MemorySystem::new(c);
        m.access(0, Access::Read, 0x2000, 4, Time::ZERO);
        // Under MSI the write needs an upgrade transaction.
        let tx_before = m.stats().bus_transactions;
        m.access(0, Access::Write, 0x2000, 4, Time::from_us(1));
        assert_eq!(m.stats().bus_transactions, tx_before + 1);
    }

    #[test]
    fn read_read_write_invalidates_sharer() {
        let mut m = sys(2);
        m.access(0, Access::Read, 0x3000, 4, Time::ZERO);
        m.access(1, Access::Read, 0x3000, 4, Time::from_us(1));
        m.check_coherence(0x3000);
        // Both S now; CPU0 writes → upgrade, CPU1 invalidated.
        m.access(0, Access::Write, 0x3000, 4, Time::from_us(2));
        m.check_coherence(0x3000);
        let r = m.access(1, Access::Read, 0x3000, 4, Time::from_us(3));
        // CPU0 holds it Modified → cache-to-cache supply.
        assert_eq!(r.level, HitLevel::CacheToCache);
        m.check_coherence(0x3000);
        assert_eq!(m.stats().l1d[1].snoop_invalidations, 1);
    }

    #[test]
    fn write_write_ping_pong() {
        let mut m = sys(2);
        let mut t = Time::ZERO;
        for i in 0..6 {
            let cpu = i % 2;
            let r = m.access(cpu, Access::Write, 0x4000, 4, t);
            t += r.latency + Duration::from_ns(1);
            m.check_coherence(0x4000);
        }
        let s = m.stats();
        // After the first write, every write misses and is supplied c2c.
        assert!(s.l1d[0].snoop_invalidations >= 2);
        assert!(s.l1d[1].snoop_invalidations >= 2);
    }

    #[test]
    fn second_sharer_gets_shared_not_exclusive() {
        let mut m = sys(2);
        m.access(0, Access::Read, 0x5000, 4, Time::ZERO);
        m.access(1, Access::Read, 0x5000, 4, Time::from_us(1));
        // CPU1 writing must generate an upgrade (it holds S, not E).
        let tx_before = m.stats().bus_transactions;
        m.access(1, Access::Write, 0x5000, 4, Time::from_us(2));
        assert!(m.stats().bus_transactions > tx_before);
        m.check_coherence(0x5000);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut m = sys(1);
        // Fill both ways of one set with modified lines, then evict.
        // 4 KiB, 2-way, 32-byte lines → 64 sets; same set every 2 KiB.
        let mut t = Time::ZERO;
        for addr in [0x0u64, 0x800, 0x1000] {
            let r = m.access(0, Access::Write, addr, 4, t);
            t += r.latency + Duration::from_ns(1);
        }
        assert_eq!(m.stats().l1d[0].writebacks, 1);
        assert_eq!(m.stats().dram_writes, 1);
    }

    #[test]
    fn bus_contention_shows_up_as_wait() {
        let mut m = sys(2);
        // Two CPUs miss at the same instant → the second waits.
        let r0 = m.access(0, Access::Read, 0x6000, 4, Time::ZERO);
        let r1 = m.access(1, Access::Read, 0x7000, 4, Time::ZERO);
        assert_eq!(r0.bus_wait, Duration::ZERO);
        assert!(r1.bus_wait > Duration::ZERO);
        assert!(r1.latency > r0.latency);
    }

    #[test]
    fn write_through_posts_stores_to_the_bus() {
        let mut c = cfg(1);
        c.l1d.write_policy = WritePolicy::WriteThrough;
        c.l1d.write_allocate = false;
        let mut m = MemorySystem::new(c);
        // Read fills the line, then a WT store hits L1 but posts the write.
        let r = m.access(0, Access::Read, 0x100, 4, Time::ZERO);
        let t = Time::ZERO + r.latency;
        let tx_before = m.stats().bus_transactions;
        let w = m.access(0, Access::Write, 0x100, 4, t);
        assert_eq!(w.level, HitLevel::L1);
        assert_eq!(w.latency, Duration::from_ns(10)); // posted: hit latency only
        assert_eq!(m.stats().bus_transactions, tx_before + 1);
        assert_eq!(m.stats().dram_writes, 1);
    }

    #[test]
    fn write_no_allocate_leaves_cache_cold() {
        let mut c = cfg(1);
        c.l1d.write_allocate = false;
        let mut m = MemorySystem::new(c);
        let w = m.access(0, Access::Write, 0x100, 4, Time::ZERO);
        assert_eq!(w.level, HitLevel::Dram);
        // The following read still misses.
        let r = m.access(0, Access::Read, 0x100, 4, Time::from_us(1));
        assert_eq!(r.level, HitLevel::Dram);
    }

    fn cfg_with_l2(cpus: usize) -> MemSystemConfig {
        let mut c = cfg(cpus);
        c.l2 = Some(CacheParams {
            size_bytes: 32 * 1024,
            line_bytes: 32,
            assoc: 4,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: Replacement::Lru,
            hit_latency: Duration::from_ns(40),
        });
        c
    }

    #[test]
    fn l2_hits_after_l1_eviction() {
        let mut m = MemorySystem::new(cfg_with_l2(1));
        let mut t = Time::ZERO;
        // Load 0x0, then evict it from L1 (2-way set, 64 sets → conflict at
        // 2 KiB stride) while L2 (4-way, 256 sets → 8 KiB stride) keeps all.
        for addr in [0x0u64, 0x800, 0x1000] {
            let r = m.access(0, Access::Read, addr, 4, t);
            t += r.latency + Duration::from_ns(1);
        }
        let r = m.access(0, Access::Read, 0x0, 4, t);
        assert_eq!(r.level, HitLevel::L2);
        // l1 probe + l2 hit.
        assert_eq!(r.latency, Duration::from_ns(50));
    }

    #[test]
    fn l2_inclusion_purges_l1_on_l2_eviction() {
        let mut c = cfg_with_l2(1);
        // Tiny L2: 2 sets × 1 way × 32 B = direct-mapped 64 B, so two
        // conflicting lines exist at 64-byte stride.
        c.l2 = Some(CacheParams {
            size_bytes: 64,
            line_bytes: 32,
            assoc: 1,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: Replacement::Lru,
            hit_latency: Duration::from_ns(40),
        });
        let mut m = MemorySystem::new(c);
        let mut t = Time::ZERO;
        let r = m.access(0, Access::Write, 0x0, 4, t); // L1D: M, L2: present
        t += r.latency + Duration::from_ns(1);
        let r = m.access(0, Access::Read, 0x40, 4, t); // evicts L2 line 0x0
        t += r.latency + Duration::from_ns(1);
        // Inclusion forced 0x0 out of L1D too (flushing the dirty line).
        let r = m.access(0, Access::Read, 0x0, 4, t);
        assert!(matches!(r.level, HitLevel::Dram));
        assert!(m.stats().dram_writes >= 1);
    }

    #[test]
    fn footprint_grows_with_cpu_count_but_not_memory_size() {
        let f1 = sys(1).footprint_bytes();
        let f4 = sys(4).footprint_bytes();
        assert!(f4 > f1);
        assert!(f4 < 4 * 1024 * 1024, "tags-only model should be small");
    }

    #[test]
    #[should_panic(expected = "unknown CPU")]
    fn out_of_range_cpu_panics() {
        sys(1).access(1, Access::Read, 0, 4, Time::ZERO);
    }

    #[test]
    fn check_coherence_passes_on_fresh_system() {
        let m = sys(4);
        m.check_coherence(0x1234);
    }

    /// A probed system reports the same latencies as an unprobed one, and
    /// the metrics sink mirrors the model's own counters.
    #[test]
    fn probe_mirrors_stats_without_changing_timing() {
        use mermaid_probe::{ProbeHandle, ProbeStack};
        let walk = |m: &mut MemorySystem| {
            let mut t = Time::ZERO;
            let mut reports = Vec::new();
            for addr in [0x0u64, 0x800, 0x1000, 0x0, 0x40] {
                let r = m.access(0, Access::Write, addr, 4, t);
                t += r.latency + Duration::from_ns(1);
                reports.push(r);
            }
            reports
        };
        let mut plain = sys(1);
        let plain_reports = walk(&mut plain);
        let probe = ProbeHandle::new(ProbeStack::new().with_metrics().with_jsonl());
        let mut traced = sys(1);
        traced.set_probe(0, probe.clone());
        let traced_reports = walk(&mut traced);
        assert_eq!(traced_reports, plain_reports);
        let s = traced.stats();
        let report = probe.metrics_report(1_000_000).unwrap();
        let csv = report.to_csv();
        // One CacheAccess per line access; all writes on this walk.
        let accesses: u64 = s.l1d[0].hits + s.l1d[0].misses;
        assert!(csv.contains(&format!("mem0/write,{accesses}")), "{csv}");
        assert!(csv.contains(&format!("mem0/writebacks,{}", s.l1d[0].writebacks)));
        let jsonl = probe.jsonl_output().unwrap();
        assert_eq!(
            jsonl.matches("bus_transaction").count() as u64,
            s.bus_transactions
        );
    }
}
