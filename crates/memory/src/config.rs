//! Machine parameters for the memory hierarchy.
//!
//! Every architecture model in Mermaid "has a set of machine parameters
//! that is calibrated with published information or by benchmarking"
//! (paper, Section 3). These structs are that parameter set for the memory
//! side of a node.

use pearl::{Duration, Frequency};
use serde::{Deserialize, Serialize};

/// Write-hit policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Dirty lines are written back on eviction.
    WriteBack,
    /// Every store is propagated to the next level immediately.
    WriteThrough,
}

/// Replacement policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Replacement {
    /// Least recently used.
    Lru,
    /// First in, first out (fill order).
    Fifo,
    /// Pseudo-random (deterministic xorshift; reproducible runs).
    Random,
}

/// The snoopy coherence protocol variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoherenceProtocol {
    /// Modified / Shared / Invalid.
    Msi,
    /// Modified / Exclusive / Shared / Invalid.
    Mesi,
}

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (ways per set); `1` = direct-mapped.
    pub assoc: u32,
    /// Write-hit policy.
    pub write_policy: WritePolicy,
    /// Allocate a line on a write miss (write-allocate)?
    pub write_allocate: bool,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Hit (and probe) latency.
    pub hit_latency: Duration,
}

impl CacheParams {
    /// Number of sets. Panics if the geometry is inconsistent.
    pub fn sets(&self) -> u64 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(self.assoc >= 1, "associativity must be >= 1");
        let lines = self.size_bytes / self.line_bytes as u64;
        assert!(
            lines.is_multiple_of(self.assoc as u64) && lines > 0,
            "cache geometry: {} lines not divisible into {}-way sets",
            lines,
            self.assoc
        );
        let sets = lines / self.assoc as u64;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Validate the geometry (used by constructors).
    pub fn validate(&self) {
        let _ = self.sets();
    }
}

/// Bus parameters (paper Fig. 3a: "a simple forwarding mechanism, carrying
/// out arbitration upon multiple accesses").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusParams {
    /// Data width in bytes per bus cycle.
    pub width_bytes: u32,
    /// Bus clock.
    pub clock: Frequency,
    /// Arbitration overhead, in bus cycles, per transaction.
    pub arbitration_cycles: u64,
}

impl BusParams {
    /// Time to move `bytes` across the bus, including arbitration.
    pub fn transfer_time(&self, bytes: u32) -> Duration {
        let beats = (bytes as u64).div_ceil(self.width_bytes as u64);
        self.clock.cycles(self.arbitration_cycles + beats)
    }
}

/// DRAM parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramParams {
    /// Latency from request to first data.
    pub access_latency: Duration,
    /// Whether the memory is a single server (accesses queue) or ideally
    /// pipelined (no queueing).
    pub single_server: bool,
}

/// The full memory-system configuration of one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemSystemConfig {
    /// Number of processors sharing this node's bus.
    pub cpus: usize,
    /// Per-CPU instruction cache.
    pub l1i: CacheParams,
    /// Per-CPU data cache.
    pub l1d: CacheParams,
    /// Optional unified second-level cache (per CPU).
    pub l2: Option<CacheParams>,
    /// The shared bus.
    pub bus: BusParams,
    /// Main memory.
    pub dram: DramParams,
    /// Coherence protocol for the data caches.
    pub protocol: CoherenceProtocol,
    /// Latency for a cache-to-cache supply (snoop flush), excluding bus
    /// transfer time.
    pub c2c_latency: Duration,
}

impl MemSystemConfig {
    /// Validate all cache geometries.
    pub fn validate(&self) {
        assert!(self.cpus >= 1, "need at least one CPU");
        self.l1i.validate();
        self.l1d.validate();
        if let Some(l2) = &self.l2 {
            l2.validate();
            assert!(
                l2.line_bytes >= self.l1d.line_bytes && l2.line_bytes >= self.l1i.line_bytes,
                "L2 lines must be at least as large as L1 lines (inclusion)"
            );
        }
    }

    /// A small, fast default configuration used by tests and examples:
    /// 4 KiB 2-way L1s, no L2, 64-bit 50 MHz bus, 200 ns DRAM.
    pub fn small(cpus: usize) -> Self {
        let l1 = CacheParams {
            size_bytes: 4 * 1024,
            line_bytes: 32,
            assoc: 2,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: Replacement::Lru,
            hit_latency: Duration::from_ns(10),
        };
        MemSystemConfig {
            cpus,
            l1i: l1,
            l1d: l1,
            l2: None,
            bus: BusParams {
                width_bytes: 8,
                clock: Frequency::from_mhz(50),
                arbitration_cycles: 1,
            },
            dram: DramParams {
                access_latency: Duration::from_ns(200),
                single_server: false,
            },
            protocol: CoherenceProtocol::Mesi,
            c2c_latency: Duration::from_ns(40),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_counts_follow_geometry() {
        let p = CacheParams {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            assoc: 2,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: Replacement::Lru,
            hit_latency: Duration::from_ns(5),
        };
        assert_eq!(p.sets(), 128);
        let direct = CacheParams { assoc: 1, ..p };
        assert_eq!(direct.sets(), 256);
    }

    #[test]
    #[should_panic(expected = "line size must be 2^k")]
    fn non_power_of_two_lines_rejected() {
        let p = CacheParams {
            size_bytes: 900,
            line_bytes: 30,
            assoc: 1,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: Replacement::Lru,
            hit_latency: Duration::ZERO,
        };
        p.sets();
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn indivisible_ways_rejected() {
        let p = CacheParams {
            size_bytes: 96,
            line_bytes: 32,
            assoc: 2,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: Replacement::Lru,
            hit_latency: Duration::ZERO,
        };
        p.sets();
    }

    #[test]
    fn bus_transfer_time_includes_arbitration() {
        let bus = BusParams {
            width_bytes: 8,
            clock: Frequency::from_mhz(100), // 10 ns/cycle
            arbitration_cycles: 2,
        };
        // 32 bytes = 4 beats + 2 arb cycles = 6 cycles = 60 ns.
        assert_eq!(bus.transfer_time(32), Duration::from_ns(60));
        // 1 byte still needs a whole beat.
        assert_eq!(bus.transfer_time(1), Duration::from_ns(30));
    }

    #[test]
    fn small_config_validates() {
        MemSystemConfig::small(4).validate();
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_rejected() {
        MemSystemConfig::small(0).validate();
    }
}
