//! Property-based tests of the cache and coherence invariants.

use proptest::prelude::*;

use mermaid_memory::{
    Access, Cache, CacheParams, CoherenceProtocol, MemSystemConfig, MemorySystem, Mesi,
    Replacement, WritePolicy,
};
use pearl::{Duration, Time};

fn params(assoc: u32, repl: Replacement) -> CacheParams {
    CacheParams {
        size_bytes: 1024,
        line_bytes: 32,
        assoc,
        write_policy: WritePolicy::WriteBack,
        write_allocate: true,
        replacement: repl,
        hit_latency: Duration::from_ns(1),
    }
}

proptest! {
    /// A cache never holds the same line twice, never exceeds its
    /// capacity, and `probe` agrees with the `fill`/`invalidate` history.
    #[test]
    fn cache_capacity_and_uniqueness(
        assoc in prop::sample::select(vec![1u32, 2, 4, 8]),
        repl in prop::sample::select(vec![Replacement::Lru, Replacement::Fifo, Replacement::Random]),
        addrs in prop::collection::vec(0u64..0x4000, 1..300),
    ) {
        let p = params(assoc, repl);
        let capacity = (p.size_bytes / p.line_bytes as u64) as usize;
        let mut c = Cache::new(p);
        for &addr in &addrs {
            if !c.lookup(addr).is_valid() {
                c.fill(addr, Mesi::Shared);
            }
            // Uniqueness: every valid line address appears exactly once.
            let mut lines: Vec<u64> = c.iter_valid().map(|(a, _)| a).collect();
            let total = lines.len();
            lines.sort_unstable();
            lines.dedup();
            prop_assert_eq!(lines.len(), total, "duplicate line after {:#x}", addr);
            prop_assert!(total <= capacity, "capacity exceeded");
            // The just-touched line is resident.
            prop_assert!(c.probe(addr).is_valid());
        }
    }

    /// Fill/evict accounting: evictions only happen at full sets, and the
    /// hit+miss count equals the lookups issued.
    #[test]
    fn cache_stats_are_consistent(
        addrs in prop::collection::vec(0u64..0x2000, 1..200),
    ) {
        let mut c = Cache::new(params(2, Replacement::Lru));
        for &addr in &addrs {
            if !c.lookup(addr).is_valid() {
                c.fill(addr, Mesi::Exclusive);
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
        // Fills = misses; evictions can never exceed fills.
        prop_assert!(s.evictions <= s.misses);
        prop_assert_eq!(s.writebacks, 0, "clean lines never write back");
    }

    /// Under arbitrary interleavings across four CPUs, the memory system
    /// preserves MESI exclusivity, and hit rates stay within [0, 1].
    #[test]
    fn memory_system_invariants(
        ops in prop::collection::vec((0usize..4, any::<bool>(), 0u64..128), 1..250),
    ) {
        let mut cfg = MemSystemConfig::small(4);
        cfg.protocol = CoherenceProtocol::Mesi;
        let mut sys = MemorySystem::new(cfg);
        let mut now = Time::ZERO;
        for &(cpu, write, slot) in &ops {
            let kind = if write { Access::Write } else { Access::Read };
            let r = sys.access(cpu, kind, 0x8000 + slot * 4, 4, now);
            now = now + r.latency + Duration::from_ps(1);
        }
        for slot in 0..128u64 {
            sys.check_coherence(0x8000 + slot * 4);
        }
        let stats = sys.stats();
        for s in &stats.l1d {
            let rate = s.hit_rate();
            prop_assert!((0.0..=1.0).contains(&rate));
        }
        // Conservation: every DRAM write stems from a writeback/flush path.
        prop_assert!(stats.dram_writes <= stats.bus_transactions);
    }

    /// MSI never grants Exclusive.
    #[test]
    fn msi_never_grants_exclusive(
        reads in prop::collection::vec((0usize..2, 0u64..64), 1..100),
    ) {
        let mut cfg = MemSystemConfig::small(2);
        cfg.protocol = CoherenceProtocol::Msi;
        let mut sys = MemorySystem::new(cfg);
        let mut now = Time::ZERO;
        for &(cpu, slot) in &reads {
            let r = sys.access(cpu, Access::Read, slot * 32, 4, now);
            now += r.latency;
            // After a read, no line is in E state anywhere (MSI).
            // check_coherence allows E, so verify via a write: a write to a
            // just-read line must generate a bus transaction under MSI.
        }
        let before = sys.stats().bus_transactions;
        let r = sys.access(0, Access::Read, 0x9000, 4, now);
        now += r.latency;
        sys.access(0, Access::Write, 0x9000, 4, now);
        prop_assert!(sys.stats().bus_transactions > before + 1, "MSI write after read must upgrade on the bus");
    }
}
