//! The multi-node communication simulation: wiring, execution, results.

use std::sync::Arc;

use mermaid_ops::{NodeId, TraceSet};
use mermaid_probe::ProbeHandle;
use mermaid_stats::Histogram;
use pearl::{CompId, Duration, Engine, Time};

use crate::config::NetworkConfig;
use crate::fault::FaultSchedule;
use crate::packet::NetMsg;
use crate::processor::{AbstractProcessor, ProcStats, UnreachableReport};
use crate::router::{Router, RouterStats};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::world::NetWorld;

/// Per-node results of a communication simulation.
#[derive(Debug, Clone)]
pub struct NodeCommStats {
    /// The node.
    pub node: NodeId,
    /// Abstract-processor statistics.
    pub proc: ProcStats,
    /// Router statistics.
    pub router: RouterStats,
}

/// Results of a communication simulation run.
#[derive(Debug, Clone)]
pub struct CommResult {
    /// When the last processor finished (Time::ZERO when none did).
    pub finish: Time,
    /// True when every processor completed its trace.
    pub all_done: bool,
    /// Nodes whose processors can never finish (deadlock or mismatched
    /// communication). Only a *drained* event set proves that, so this is
    /// empty in mid-run snapshots (see [`CommSim::run_events`]) even while
    /// some nodes are still working — use [`CommResult::nodes_done`] for
    /// progress.
    pub deadlocked: Vec<NodeId>,
    /// Per-node statistics.
    pub nodes: Vec<NodeCommStats>,
    /// Total simulation events processed.
    pub events: u64,
    /// Merged end-to-end message-latency histogram (picoseconds).
    pub msg_latency: Histogram,
    /// Total messages delivered.
    pub total_messages: u64,
    /// Total payload bytes sent.
    pub total_bytes: u64,
    /// Structured degraded-mode reports: every (sender, destination,
    /// message) that exhausted its retries, in node order then give-up
    /// order. Empty on healthy runs.
    pub unreachable: Vec<UnreachableReport>,
    /// Total retransmissions issued across all nodes (fault mode).
    pub total_retries: u64,
    /// Tracked messages given up on across all nodes (fault mode).
    pub msgs_failed: u64,
    /// Blocking receives abandoned by the fault-mode watchdog.
    pub recv_timeouts: u64,
    /// Packets discarded by routers (link/router down, corruption,
    /// transient loss).
    pub total_dropped: u64,
}

impl CommResult {
    /// Fold per-node statistics into a result, mirroring the serial
    /// collection field for field — the single aggregation path shared by
    /// [`CommSim::run`] and the sharded merge, so the two can never
    /// diverge. `drained` states whether the event set has drained (only a
    /// drained set proves deadlock).
    pub(crate) fn from_nodes(nodes: Vec<NodeCommStats>, events: u64, drained: bool) -> CommResult {
        let mut msg_latency = Histogram::log2();
        let mut finish = Time::ZERO;
        let mut unfinished = Vec::new();
        let mut total_messages = 0;
        let mut total_bytes = 0;
        let mut unreachable = Vec::new();
        let mut total_retries = 0;
        let mut msgs_failed = 0;
        let mut recv_timeouts = 0;
        let mut total_dropped = 0;
        for nc in &nodes {
            match nc.proc.finished_at {
                Some(t) => finish = finish.max(t),
                None => unfinished.push(nc.node),
            }
            msg_latency.merge(&nc.proc.msg_latency);
            total_messages += nc.proc.msgs_received;
            total_bytes += nc.proc.bytes_sent;
            unreachable.extend(nc.proc.unreachable.iter().copied());
            total_retries += nc.proc.retries;
            msgs_failed += nc.proc.msgs_failed;
            recv_timeouts += nc.proc.recv_timeouts;
            total_dropped += nc.router.dropped();
        }
        CommResult {
            finish,
            all_done: unfinished.is_empty(),
            deadlocked: if drained { unfinished } else { Vec::new() },
            nodes,
            events,
            msg_latency,
            total_messages,
            total_bytes,
            unreachable,
            total_retries,
            msgs_failed,
            recv_timeouts,
            total_dropped,
        }
    }

    /// True when the run degraded under faults: messages failed, receives
    /// timed out, or packets were dropped.
    pub fn degraded(&self) -> bool {
        self.msgs_failed > 0 || self.recv_timeouts > 0 || self.total_dropped > 0
    }

    /// Roll the per-node reliability counters into one delivered-vs-
    /// dropped picture (see [`mermaid_stats::DeliveryStats`]). On a
    /// fault-free run everything is zero and `delivered_fraction()` is
    /// `None`.
    pub fn delivery(&self) -> mermaid_stats::DeliveryStats {
        let mut d = mermaid_stats::DeliveryStats::new();
        for nc in &self.nodes {
            d.tracked += nc.proc.msgs_tracked;
            d.acked += nc.proc.msgs_acked;
            d.failed += nc.proc.msgs_failed;
            d.retries += nc.proc.retries;
            d.recv_timeouts += nc.proc.recv_timeouts;
            d.dropped_packets += nc.router.dropped();
            d.attempts.merge(&nc.proc.retry_counts);
        }
        d
    }

    /// The distinct (sender, destination) pairs reported unreachable,
    /// sorted and deduplicated.
    pub fn unreachable_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs: Vec<(NodeId, NodeId)> =
            self.unreachable.iter().map(|u| (u.src, u.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
    /// Aggregate busy time across all links.
    pub fn total_link_busy(&self) -> Duration {
        self.nodes.iter().map(|n| n.router.link_busy).sum()
    }

    /// Nodes whose processors have completed their traces. Valid both
    /// mid-run and at completion, unlike `deadlocked`.
    pub fn nodes_done(&self) -> u32 {
        // Cast is lossless: the node count is capped at `MAX_NODES` (2^20).
        self.nodes
            .iter()
            .filter(|n| n.proc.finished_at.is_some())
            .count() as u32
    }

    /// Mean link utilisation over the run (`links` from the topology).
    pub fn mean_link_utilization(&self, links: u32) -> f64 {
        if self.finish == Time::ZERO || links == 0 {
            return 0.0;
        }
        // Multiply in f64: `links * finish_ps` can exceed u64 on long runs.
        self.total_link_busy().as_ps() as f64 / (links as f64 * self.finish.as_ps() as f64)
    }
}

/// The multi-node communication model, ready to run.
///
/// Component layout in the engine: routers occupy component ids
/// `0..nodes`, abstract processors `nodes..2*nodes` — stored as typed
/// struct-of-arrays slabs (see `crate::world`), not boxed trait objects.
pub struct CommSim {
    engine: Engine<NetMsg, NetWorld>,
    cfg: NetworkConfig,
    nodes: u32,
}

impl CommSim {
    /// Build the simulation from a configuration and one task-level trace
    /// per node. The trace set must have exactly as many nodes as the
    /// topology.
    pub fn new(cfg: NetworkConfig, traces: &TraceSet) -> Self {
        CommSim::new_with_probe(cfg, traces, ProbeHandle::disabled())
    }

    /// Like [`CommSim::new`], but every router, processor and the engine
    /// itself record into `probe`. The caller keeps its own clone of the
    /// handle to read results back after the run; passing
    /// [`ProbeHandle::disabled`] makes this identical to `new`.
    ///
    /// Instrumentation is strictly observational — a traced run produces
    /// bit-identical virtual-time results to an untraced one.
    pub fn new_with_probe(cfg: NetworkConfig, traces: &TraceSet, probe: ProbeHandle) -> Self {
        CommSim::build(cfg, traces, probe, None)
    }

    /// Like [`CommSim::new_with_probe`], with deterministic fault injection:
    /// the schedule's scripted link/router events are posted into the
    /// engine before the run starts, routers draw per-packet transient
    /// losses and corruptions from the schedule's seeded hash, and the
    /// processors run the ack/retry/backoff reliability protocol (see
    /// `crate::fault` and the module docs of `crate::processor`).
    ///
    /// Panics when the schedule references nodes or links the topology
    /// does not have.
    pub fn new_with_faults(
        cfg: NetworkConfig,
        traces: &TraceSet,
        probe: ProbeHandle,
        faults: Arc<FaultSchedule>,
    ) -> Self {
        CommSim::build(cfg, traces, probe, Some(faults))
    }

    fn build(
        cfg: NetworkConfig,
        traces: &TraceSet,
        probe: ProbeHandle,
        faults: Option<Arc<FaultSchedule>>,
    ) -> Self {
        cfg.validate();
        if let Some(f) = &faults {
            if let Err(e) = f.try_validate(&cfg.topology) {
                panic!("invalid fault schedule for {}: {e}", cfg.topology.label());
            }
        }
        let n = cfg.topology.nodes();
        // Compare as usize — casting `traces.nodes()` down to u32 could
        // truncate an oversized trace set into a spurious match.
        assert_eq!(
            traces.nodes(),
            n as usize,
            "trace set has {} nodes, topology {} needs {}",
            traces.nodes(),
            cfg.topology.label(),
            n
        );
        // Arena layout (DESIGN.md §15): router of node `i` is component
        // `i`, its processor is component `n + i`. Components address each
        // other by that arithmetic — no id tables.
        let mut routers = Vec::with_capacity(n as usize);
        let mut procs = Vec::with_capacity(n as usize);
        for node in 0..n {
            routers.push(
                Router::new(
                    node,
                    cfg.topology,
                    cfg.link,
                    cfg.router,
                    (n + node) as CompId,
                )
                .with_probe(probe.clone())
                .with_faults(faults.clone()),
            );
        }
        for node in 0..n {
            procs.push(
                AbstractProcessor::new(node, traces.trace(node).shared_ops(), node as CompId, cfg)
                    .with_probe(probe.clone())
                    .with_faults(faults.clone()),
            );
        }
        let mut engine = Engine::with_world(NetWorld::new(n, 0, routers, procs));
        if let Some(adapter) = probe.engine_adapter() {
            engine.set_probe(adapter);
        }
        if let Some(f) = &faults {
            // Post the scripted fault events before the run, node by node
            // in schedule order. They are self-events of the affected
            // router, so a sharded mirror engine posting only *its* nodes'
            // events consumes exactly the same per-component key counters —
            // the foundation of serial/sharded bit-identity under faults.
            for node in 0..n {
                for ev in f.events_for(node) {
                    engine.post(
                        ev.at,
                        node as CompId,
                        node as CompId,
                        NetMsg::Fault(ev.kind),
                    );
                }
            }
        }
        CommSim {
            engine,
            cfg,
            nodes: n,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Run until virtual `deadline` (inclusive): events *at* the deadline
    /// are delivered, so a subsequent [`CommSim::checkpoint`] at
    /// `deadline + 1` captures a state where everything strictly before
    /// the instant has been processed.
    pub fn run_until(&mut self, deadline: Time) -> pearl::engine::RunResult {
        self.engine.run_until(deadline)
    }

    /// Capture the complete simulation state at instant `at` as a
    /// [`Snapshot`]: every event strictly before `at` must have been
    /// processed (run with [`CommSim::run_until`]`(at - 1)` first) and
    /// every pending event must be at or after `at` — asserted here,
    /// because a snapshot violating it could never restore bit-identically.
    ///
    /// `config_hash` is the campaign-layer identity of the run; restore
    /// refuses a snapshot whose hash differs. The attribution section is
    /// the caller's to fill in (the probe layer owns that state).
    pub fn checkpoint(&self, config_hash: &str, at: Time) -> Snapshot {
        // A serial capture is the one-piece case of the sharded compose,
        // so both modes produce byte-identical files by construction.
        Snapshot::compose(vec![crate::snapshot::capture_piece(
            &self.engine,
            config_hash,
            at,
        )])
    }

    /// Rebuild a simulation from a [`Snapshot`], bit-identically: the
    /// restored run processes the same events in the same order and
    /// produces the same results, stats and probe stream as the
    /// uninterrupted run from the checkpoint instant on.
    ///
    /// The caller passes the same configuration, traces and fault
    /// schedule the checkpointed run was built from (the config hash in
    /// the snapshot is verified at the CLI layer against the run's
    /// canonical identity; here the node count is re-checked as a last
    /// line of defence). Components are built exactly as in a fresh run,
    /// then the captured state is overlaid and the engine's queue, clock
    /// and key counters are replaced wholesale — initialisation never
    /// runs, and the pre-posted fault events are superseded by the
    /// snapshot's pending set (which still contains every scripted fault
    /// at or after the instant, under its original key).
    pub fn restore(
        cfg: NetworkConfig,
        traces: &TraceSet,
        probe: ProbeHandle,
        faults: Option<Arc<FaultSchedule>>,
        snap: &Snapshot,
    ) -> Result<Self, SnapshotError> {
        let n = cfg.topology.nodes();
        if snap.nodes != n {
            return Err(SnapshotError::NodesMismatch {
                found: snap.nodes,
                expected: n,
            });
        }
        let mut sim = CommSim::build(cfg, traces, probe, faults);
        crate::snapshot::restore_engine(&mut sim.engine, snap, snap.events_processed)?;
        Ok(sim)
    }

    /// Current virtual time of the simulation.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// True when no events remain (the run has finished or deadlocked).
    pub fn is_idle(&self) -> bool {
        self.engine.pending_events() == 0
    }

    /// Run to completion (event set drained) and collect results.
    pub fn run(&mut self) -> CommResult {
        self.engine.run();
        self.collect()
    }

    /// Run at most `max_events` events (for incremental/run-time
    /// observation), then collect a snapshot.
    pub fn run_events(&mut self, max_events: u64) -> CommResult {
        self.engine.run_events(max_events);
        self.collect()
    }

    fn collect(&self) -> CommResult {
        let n = self.nodes;
        let world = self.engine.world();
        let mut nodes = Vec::with_capacity(n as usize);
        for node in 0..n {
            nodes.push(NodeCommStats {
                node,
                proc: world.proc(node).stats.clone(),
                router: world.router(node).snapshot_stats(),
            });
        }
        // "Unfinished" only means "deadlocked" once no event can ever
        // unblock the node again, i.e. when the event set has drained; a
        // mid-run snapshot must not cry deadlock over work in progress.
        let idle = self.engine.pending_events() == 0;
        CommResult::from_nodes(nodes, self.engine.events_processed(), idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Switching;
    use crate::topology::Topology;
    use mermaid_ops::Operation;

    fn cfg(topo: Topology) -> NetworkConfig {
        NetworkConfig::test(topo)
    }

    fn trace_set(n: u32, f: impl Fn(NodeId) -> Vec<Operation>) -> TraceSet {
        let mut ts = TraceSet::new(n as usize);
        for node in 0..n {
            ts.trace_mut(node).ops = f(node);
        }
        ts
    }

    #[test]
    fn compute_only_traces_finish_at_their_sum() {
        let ts = trace_set(2, |_| {
            vec![
                Operation::Compute { ps: 1_000 },
                Operation::Compute { ps: 2_000 },
            ]
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done);
        assert_eq!(r.finish, Time::from_ps(3_000));
        assert_eq!(r.total_messages, 0);
    }

    #[test]
    fn sync_ping_completes_and_measures_latency() {
        // Node 0 sends 100 B to node 1; node 1 receives.
        let ts = trace_set(2, |node| match node {
            0 => vec![Operation::Send { bytes: 100, dst: 1 }],
            _ => vec![Operation::Recv { src: 0 }],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);
        assert_eq!(r.total_messages, 1);
        assert_eq!(r.total_bytes, 100);
        assert_eq!(r.msg_latency.count(), 1);
        // One hop: routing 10 + (100+8) B @1 GB/s = 108 ns + wire 1 ns.
        let lat = r.msg_latency.max().unwrap();
        assert_eq!(lat, Duration::from_ns(10 + 108 + 1).as_ps());
        // The sender blocked until the ack returned.
        assert!(r.nodes[0].proc.send_block > Duration::ZERO);
        // Finish = sender resumed after data + ack round trip.
        let ack_time = Duration::from_ns(10 + 8 + 1); // 8-byte control packet
        assert_eq!(r.finish, Time::ZERO + Duration::from_ns(119) + ack_time);
    }

    #[test]
    fn async_send_does_not_block() {
        let ts = trace_set(2, |node| match node {
            0 => vec![
                Operation::ASend { bytes: 100, dst: 1 },
                Operation::Compute { ps: 5_000 },
            ],
            _ => vec![Operation::Recv { src: 0 }],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done);
        // Sender finished after its compute only (zero overhead in test cfg).
        assert_eq!(r.nodes[0].proc.finished_at, Some(Time::from_ps(5_000)));
        assert_eq!(r.nodes[0].proc.send_block, Duration::ZERO);
    }

    #[test]
    fn recv_blocks_until_message_arrives() {
        let ts = trace_set(2, |node| match node {
            0 => vec![
                Operation::Compute { ps: 1_000_000 }, // 1 µs head start
                Operation::Send { bytes: 8, dst: 1 },
            ],
            _ => vec![Operation::Recv { src: 0 }],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done);
        assert!(r.nodes[1].proc.recv_block >= Duration::from_us(1));
    }

    #[test]
    fn arecv_consumes_later_arrival_without_blocking() {
        let ts = trace_set(2, |node| match node {
            0 => vec![
                Operation::Compute { ps: 10_000 },
                Operation::ASend { bytes: 8, dst: 1 },
            ],
            _ => vec![
                Operation::ARecv { src: 0 },
                Operation::Compute { ps: 1_000 },
            ],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done);
        // Node 1 finished its trace long before the message arrived.
        assert_eq!(r.nodes[1].proc.finished_at, Some(Time::from_ps(1_000)));
        // The message was still consumed.
        assert_eq!(r.nodes[1].proc.msgs_received, 1);
    }

    #[test]
    fn multi_packet_messages_reassemble() {
        // 1 KiB max payload; send 5000 B → 5 packets.
        let ts = trace_set(2, |node| match node {
            0 => vec![Operation::Send {
                bytes: 5000,
                dst: 1,
            }],
            _ => vec![Operation::Recv { src: 0 }],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done);
        assert_eq!(r.total_messages, 1);
        // 5 data packets forwarded plus 1 ack.
        let forwarded: u64 = r.nodes.iter().map(|n| n.router.forwarded).sum();
        assert_eq!(forwarded, 6);
    }

    #[test]
    fn mismatched_communication_deadlocks() {
        let ts = trace_set(2, |node| match node {
            0 => vec![Operation::Recv { src: 1 }], // nobody sends
            _ => vec![Operation::Compute { ps: 100 }],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(!r.all_done);
        assert_eq!(r.deadlocked, vec![0]);
    }

    /// A node that merely has not finished *yet* must not be reported as
    /// deadlocked in a mid-run snapshot; only a drained event set proves
    /// deadlock. Progress is exposed through `nodes_done()` instead.
    #[test]
    fn mid_run_snapshots_do_not_report_deadlock() {
        let ts = trace_set(2, |_| {
            vec![
                Operation::Compute { ps: 1_000 },
                Operation::Compute { ps: 1_000 },
            ]
        });
        let mut sim = CommSim::new(cfg(Topology::Ring(2)), &ts);
        let snap = sim.run_events(1);
        assert!(!snap.all_done);
        assert!(
            snap.deadlocked.is_empty(),
            "work in progress reported as deadlock: {:?}",
            snap.deadlocked
        );
        assert!(snap.nodes_done() < 2);
        let done = sim.run();
        assert!(done.all_done);
        assert_eq!(done.nodes_done(), 2);
        assert!(done.deadlocked.is_empty());
    }

    #[test]
    fn sync_send_without_recv_deadlocks_the_sender() {
        let ts = trace_set(2, |node| match node {
            0 => vec![Operation::Send { bytes: 8, dst: 1 }],
            _ => vec![Operation::Compute { ps: 100 }],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert_eq!(r.deadlocked, vec![0]);
    }

    #[test]
    fn ring_neighbor_exchange_completes() {
        // Every node sends to its right neighbour and receives from its
        // left (async send avoids rendezvous deadlock).
        let n = 8u32;
        let ts = trace_set(n, |node| {
            vec![
                Operation::ASend {
                    bytes: 256,
                    dst: (node + 1) % n,
                },
                Operation::Recv {
                    src: (node + n - 1) % n,
                },
            ]
        });
        let r = CommSim::new(cfg(Topology::Ring(n)), &ts).run();
        assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);
        assert_eq!(r.total_messages, n as u64);
        assert_eq!(r.total_bytes, 256 * n as u64);
    }

    #[test]
    fn sync_ring_exchange_with_alternating_order() {
        // Synchronous rendezvous around a ring: even nodes send first,
        // odd nodes receive first — the classic deadlock-free schedule.
        let n = 6u32;
        let ts = trace_set(n, |node| {
            let right = (node + 1) % n;
            let left = (node + n - 1) % n;
            if node % 2 == 0 {
                vec![
                    Operation::Send {
                        bytes: 64,
                        dst: right,
                    },
                    Operation::Recv { src: left },
                ]
            } else {
                vec![
                    Operation::Recv { src: left },
                    Operation::Send {
                        bytes: 64,
                        dst: right,
                    },
                ]
            }
        });
        let r = CommSim::new(cfg(Topology::Ring(n)), &ts).run();
        assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);
        assert_eq!(r.total_messages, n as u64);
    }

    #[test]
    fn multi_hop_latency_exceeds_single_hop() {
        let mk = |dst: NodeId| {
            trace_set(8, move |node| match node {
                0 => vec![Operation::ASend { bytes: 512, dst }],
                n if n == dst => vec![Operation::Recv { src: 0 }],
                _ => vec![],
            })
        };
        let near = CommSim::new(cfg(Topology::Ring(8)), &mk(1)).run();
        let far = CommSim::new(cfg(Topology::Ring(8)), &mk(4)).run();
        assert!(far.msg_latency.max().unwrap() > near.msg_latency.max().unwrap());
    }

    #[test]
    fn store_and_forward_is_slower_over_distance() {
        let mk_cfg = |sw: Switching| {
            let mut c = cfg(Topology::Ring(8));
            c.router.switching = sw;
            c
        };
        let ts = trace_set(8, |node| match node {
            0 => vec![Operation::ASend {
                bytes: 4096,
                dst: 4,
            }],
            4 => vec![Operation::Recv { src: 0 }],
            _ => vec![],
        });
        let saf = CommSim::new(mk_cfg(Switching::StoreAndForward), &ts).run();
        let vct = CommSim::new(mk_cfg(Switching::VirtualCutThrough), &ts).run();
        assert!(
            vct.msg_latency.max().unwrap() < saf.msg_latency.max().unwrap(),
            "VCT {:?} should beat SAF {:?}",
            vct.msg_latency.max(),
            saf.msg_latency.max()
        );
    }

    #[test]
    fn self_send_completes() {
        let ts = trace_set(2, |node| match node {
            0 => vec![
                Operation::ASend { bytes: 32, dst: 0 },
                Operation::Recv { src: 0 },
            ],
            _ => vec![],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done);
        assert_eq!(r.nodes[0].proc.msgs_received, 1);
    }

    #[test]
    fn master_worker_scatter_gather() {
        // Node 0 scatters to all workers, then gathers.
        let n = 5u32;
        let ts = trace_set(n, |node| {
            if node == 0 {
                let mut ops = Vec::new();
                for w in 1..n {
                    ops.push(Operation::ASend {
                        bytes: 1000,
                        dst: w,
                    });
                }
                for w in 1..n {
                    ops.push(Operation::Recv { src: w });
                }
                ops
            } else {
                vec![
                    Operation::Recv { src: 0 },
                    Operation::Compute { ps: 50_000 },
                    Operation::ASend { bytes: 100, dst: 0 },
                ]
            }
        });
        let r = CommSim::new(cfg(Topology::Star(n)), &ts).run();
        assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);
        assert_eq!(r.total_messages, 2 * (n as u64 - 1));
        // The master cannot finish before a worker's compute completes.
        assert!(r.finish >= Time::from_ps(50_000));
    }

    #[test]
    fn link_utilization_is_reported() {
        let n = 4u32;
        let ts = trace_set(n, |node| {
            vec![
                Operation::ASend {
                    bytes: 10_000,
                    dst: (node + 1) % n,
                },
                Operation::Recv {
                    src: (node + n - 1) % n,
                },
            ]
        });
        let topo = Topology::Ring(n);
        let r = CommSim::new(cfg(topo), &ts).run();
        let u = r.mean_link_utilization(topo.link_count());
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn snapshot_collection_mid_run() {
        let ts = trace_set(2, |_| vec![Operation::Compute { ps: 1000 }; 10]);
        let mut sim = CommSim::new(cfg(Topology::Ring(2)), &ts);
        let snap = sim.run_events(3);
        assert!(!snap.all_done);
        let fin = sim.run();
        assert!(fin.all_done);
        assert_eq!(fin.finish, Time::from_ps(10_000));
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn trace_node_count_must_match_topology() {
        let ts = TraceSet::new(3);
        CommSim::new(cfg(Topology::Ring(4)), &ts);
    }

    #[test]
    #[should_panic(expected = "instruction-level operation")]
    fn instruction_level_traces_are_rejected() {
        let ts = trace_set(2, |node| match node {
            0 => vec![Operation::IFetch { addr: 0 }],
            _ => vec![],
        });
        CommSim::new(cfg(Topology::Ring(2)), &ts).run();
    }

    #[test]
    fn adaptive_routing_spreads_hot_spot_traffic() {
        use crate::config::Routing;
        // Every corner of a 4×4 torus sends a large message to the
        // opposite corner simultaneously: dimension-order funnels them over
        // the same links; adaptive minimal routing can spread them.
        let topo = Topology::Torus2D { w: 4, h: 4 };
        let ts = trace_set(16, |node| {
            let dst = 15 - node; // point-symmetric partner
            vec![
                Operation::ASend {
                    bytes: 64 * 1024,
                    dst,
                },
                Operation::Recv { src: 15 - node },
            ]
        });
        let run = |routing: Routing| {
            let mut c = cfg(topo);
            c.router.routing = routing;
            CommSim::new(c, &ts).run()
        };
        let det = run(Routing::DimensionOrder);
        let ada = run(Routing::AdaptiveMinimal);
        assert!(det.all_done && ada.all_done);
        assert!(
            ada.finish <= det.finish,
            "adaptive {} must not lose to deterministic {}",
            ada.finish,
            det.finish
        );
        // Under this congestion pattern it should strictly win.
        assert!(ada.finish < det.finish);
    }

    #[test]
    fn adaptive_routing_is_deterministic() {
        use crate::config::Routing;
        let topo = Topology::Hypercube { dim: 4 };
        let ts = trace_set(16, |node| {
            vec![
                Operation::ASend {
                    bytes: 8192,
                    dst: (node + 7) % 16,
                },
                Operation::Recv {
                    src: (node + 9) % 16,
                },
            ]
        });
        let run = || {
            let mut c = cfg(topo);
            c.router.routing = Routing::AdaptiveMinimal;
            CommSim::new(c, &ts).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn adaptive_equals_deterministic_without_contention() {
        use crate::config::Routing;
        // A single one-packet message: no contention, both strategies take
        // a minimal path of the same length — identical timing. (A multi-
        // packet message would differ: adaptive routing spreads the packets
        // over parallel minimal paths.)
        let ts = trace_set(16, |node| match node {
            0 => vec![Operation::ASend {
                bytes: 512,
                dst: 10,
            }],
            10 => vec![Operation::Recv { src: 0 }],
            _ => vec![],
        });
        let run = |routing: Routing| {
            let mut c = cfg(Topology::Torus2D { w: 4, h: 4 });
            c.router.routing = routing;
            CommSim::new(c, &ts).run().finish
        };
        assert_eq!(run(Routing::DimensionOrder), run(Routing::AdaptiveMinimal));
    }

    #[test]
    fn get_blocks_until_reply_arrives() {
        // Node 0 fetches 4 KiB from node 1 one-sidedly; node 1's trace has
        // no matching operation — the request is serviced automatically.
        let ts = trace_set(2, |node| match node {
            0 => vec![Operation::Get {
                bytes: 4096,
                from: 1,
            }],
            _ => vec![Operation::Compute { ps: 100 }],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);
        let p0 = &r.nodes[0].proc;
        assert_eq!(p0.gets_issued, 1);
        assert!(p0.get_block > Duration::ZERO);
        assert_eq!(p0.get_latency.count(), 1);
        assert_eq!(r.nodes[1].proc.gets_served, 1);
        // Round trip ≥ request one way + 4 KiB back: at least the reply
        // serialisation (4 packets × ~1 µs + headers at 1 GB/s ≈ 4.1 µs).
        assert!(
            p0.get_latency.max().unwrap() > Duration::from_ns(4100).as_ps(),
            "{:?}",
            p0.get_latency.max()
        );
    }

    #[test]
    fn get_is_served_even_after_the_remote_finished() {
        let ts = trace_set(2, |node| match node {
            0 => vec![
                Operation::Compute { ps: 1_000_000 }, // remote is long done
                Operation::Get { bytes: 64, from: 1 },
            ],
            _ => vec![], // empty trace: finishes immediately
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done);
        assert_eq!(r.nodes[1].proc.gets_served, 1);
    }

    #[test]
    fn put_is_consumed_without_a_receive() {
        let ts = trace_set(2, |node| match node {
            0 => vec![
                Operation::Put { bytes: 2048, to: 1 },
                Operation::Compute { ps: 500 },
            ],
            _ => vec![Operation::Compute { ps: 100 }],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done);
        // The putter never blocked (zero overhead in the test config).
        assert_eq!(r.nodes[0].proc.finished_at, Some(Time::from_ps(500)));
        assert_eq!(r.nodes[1].proc.puts_received, 1);
    }

    #[test]
    fn local_get_is_free() {
        let ts = trace_set(2, |node| match node {
            0 => vec![Operation::Get {
                bytes: 1024,
                from: 0,
            }],
            _ => vec![],
        });
        let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
        assert!(r.all_done);
        assert_eq!(r.nodes[0].proc.finished_at, Some(Time::ZERO));
        assert_eq!(r.nodes[0].proc.gets_issued, 0);
    }

    #[test]
    fn larger_gets_take_longer() {
        let lat = |bytes: u32| {
            let ts = trace_set(2, move |node| match node {
                0 => vec![Operation::Get { bytes, from: 1 }],
                _ => vec![],
            });
            let r = CommSim::new(cfg(Topology::Ring(2)), &ts).run();
            r.nodes[0].proc.get_latency.max().unwrap()
        };
        assert!(lat(64 * 1024) > lat(1024));
    }

    #[test]
    fn traced_run_is_bit_identical_to_untraced() {
        use mermaid_probe::ProbeStack;
        let n = 4u32;
        let ts = trace_set(n, |node| {
            vec![
                Operation::ASend {
                    bytes: 3000,
                    dst: (node + 1) % n,
                },
                Operation::Recv {
                    src: (node + n - 1) % n,
                },
                Operation::Compute { ps: 10_000 },
            ]
        });
        let plain = CommSim::new(cfg(Topology::Ring(n)), &ts).run();
        let probe = ProbeHandle::new(ProbeStack::new().with_metrics().with_jsonl());
        let traced = CommSim::new_with_probe(cfg(Topology::Ring(n)), &ts, probe.clone()).run();
        assert_eq!(traced.finish, plain.finish);
        assert_eq!(traced.events, plain.events);
        assert_eq!(traced.total_messages, plain.total_messages);
        assert_eq!(traced.total_bytes, plain.total_bytes);
        assert_eq!(traced.total_link_busy(), plain.total_link_busy());
        // The sinks actually saw the run.
        let jsonl = probe.jsonl_output().unwrap();
        assert!(jsonl.lines().count() > 0);
        assert!(jsonl.contains("msg_send"));
        assert!(jsonl.contains("msg_deliver"));
        assert!(jsonl.contains("engine_delivery"));
        let report = probe.metrics_report(plain.finish.as_ps()).unwrap();
        assert!(report.render().contains("node0"));
    }

    #[test]
    fn determinism_same_seeded_run_twice() {
        let n = 6u32;
        let ts = trace_set(n, |node| {
            vec![
                Operation::ASend {
                    bytes: 777,
                    dst: (node + 2) % n,
                },
                Operation::Recv {
                    src: (node + n - 2) % n,
                },
                Operation::Compute { ps: 123 },
            ]
        });
        let r1 = CommSim::new(cfg(Topology::Hypercube { dim: 3 }), &{
            let mut t = TraceSet::new(8);
            for node in 0..6 {
                *t.trace_mut(node) = ts.trace(node).clone();
                t.trace_mut(node).node = node;
            }
            t
        })
        .run();
        let r2 = CommSim::new(cfg(Topology::Hypercube { dim: 3 }), &{
            let mut t = TraceSet::new(8);
            for node in 0..6 {
                *t.trace_mut(node) = ts.trace(node).clone();
                t.trace_mut(node).node = node;
            }
            t
        })
        .run();
        assert_eq!(r1.finish, r2.finish);
        assert_eq!(r1.events, r2.events);
    }
}
