//! Machine parameters of the communication model.

use pearl::Duration;
use serde::{Deserialize, Serialize};

use crate::topology::Topology;

/// Switching strategy of the routers (paper: "a configurable routing and
/// switching strategy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Switching {
    /// A router forwards a packet only after receiving it completely.
    StoreAndForward,
    /// A router forwards the header as soon as it is decoded; the packet
    /// body follows pipelined (buffered on contention).
    VirtualCutThrough,
    /// Cut-through with flit-granular buffering. At this model's packet
    /// granularity it times like virtual cut-through; the distinction is
    /// kept for configuration fidelity (see DESIGN.md).
    Wormhole,
}

/// Parameters of one physical link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Wire/propagation latency per hop.
    pub wire_latency: Duration,
}

impl LinkParams {
    /// Serialisation time of `bytes` on this link.
    pub fn transfer_time(&self, bytes: u32) -> Duration {
        // ps = bytes * 1e12 / B/s, rounded up.
        let ps =
            (bytes as u128 * 1_000_000_000_000u128).div_ceil(self.bandwidth_bytes_per_sec as u128);
        Duration::from_ps(ps as u64)
    }
}

/// Routing strategy of the routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Routing {
    /// Deterministic minimal routing (dimension-order / e-cube /
    /// shortest-way) — reproducible and what transputer-era machines used.
    DimensionOrder,
    /// Adaptive minimal routing: among the neighbours on minimal paths,
    /// take the one whose output link frees earliest (ties towards the
    /// lowest node id, keeping runs deterministic).
    AdaptiveMinimal,
}

/// Parameters of the router component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterParams {
    /// Time to make a routing decision / decode a header, per hop.
    pub routing_delay: Duration,
    /// Maximum packet payload; larger messages are split (paper: "this may
    /// include splitting up messages into multiple packets").
    pub max_packet_payload: u32,
    /// Per-packet header size in bytes (also the size of control packets).
    pub header_bytes: u32,
    /// Switching strategy.
    pub switching: Switching,
    /// Routing strategy.
    pub routing: Routing,
}

/// Software overheads of the message-passing layer on the abstract
/// processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftwareParams {
    /// Sender-side setup cost per send operation.
    pub send_overhead: Duration,
    /// Receiver-side cost per completed receive.
    pub recv_overhead: Duration,
}

/// The complete configuration of the multi-node communication model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// The interconnect topology.
    pub topology: Topology,
    /// Link parameters (uniform across the machine).
    pub link: LinkParams,
    /// Router parameters.
    pub router: RouterParams,
    /// Message-layer software costs.
    pub software: SoftwareParams,
}

impl NetworkConfig {
    /// Validate the configuration, returning a user-facing error instead of
    /// panicking on bad input.
    pub fn try_validate(&self) -> Result<(), String> {
        self.topology.try_validate()?;
        if self.link.bandwidth_bytes_per_sec == 0 {
            return Err("link bandwidth must be > 0 bytes/sec".into());
        }
        if self.router.max_packet_payload == 0 {
            return Err("max packet payload must be > 0 bytes".into());
        }
        Ok(())
    }

    /// Validate the configuration (panics on invalid configurations).
    ///
    /// Wrapper over [`NetworkConfig::try_validate`] for model-internal
    /// call sites; user input paths use `try_validate`.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid network config: {e}");
        }
    }

    /// Number of packets a `bytes`-byte message splits into.
    pub fn packets_for(&self, bytes: u32) -> u32 {
        if bytes == 0 {
            1 // a zero-byte message still needs one (header-only) packet
        } else {
            bytes.div_ceil(self.router.max_packet_payload)
        }
    }

    /// A T805-transputer-class network: 20 Mbit/s links (≈1.74 MB/s usable
    /// after protocol bits), software store-and-forward routing with
    /// substantial per-hop and per-message software cost.
    pub fn t805(topology: Topology) -> Self {
        NetworkConfig {
            topology,
            link: LinkParams {
                bandwidth_bytes_per_sec: 1_740_000,
                wire_latency: Duration::from_ns(100),
            },
            router: RouterParams {
                routing_delay: Duration::from_us(5),
                max_packet_payload: 512,
                header_bytes: 8,
                switching: Switching::StoreAndForward,
                routing: Routing::DimensionOrder,
            },
            software: SoftwareParams {
                send_overhead: Duration::from_us(15),
                recv_overhead: Duration::from_us(15),
            },
        }
    }

    /// A generic hardware-routed multicomputer network (CM-5/Paragon
    /// class): 175 MB/s links, wormhole switching, sub-microsecond
    /// per-hop latency.
    pub fn hw_routed(topology: Topology) -> Self {
        NetworkConfig {
            topology,
            link: LinkParams {
                bandwidth_bytes_per_sec: 175_000_000,
                wire_latency: Duration::from_ns(20),
            },
            router: RouterParams {
                routing_delay: Duration::from_ns(50),
                max_packet_payload: 4096,
                header_bytes: 16,
                switching: Switching::Wormhole,
                routing: Routing::DimensionOrder,
            },
            software: SoftwareParams {
                send_overhead: Duration::from_us(2),
                recv_overhead: Duration::from_us(2),
            },
        }
    }

    /// A fast test network with round numbers: 1 GB/s, 1 ns wire, 10 ns
    /// routing, 1 KiB packets, zero software overhead.
    pub fn test(topology: Topology) -> Self {
        NetworkConfig {
            topology,
            link: LinkParams {
                bandwidth_bytes_per_sec: 1_000_000_000,
                wire_latency: Duration::from_ns(1),
            },
            router: RouterParams {
                routing_delay: Duration::from_ns(10),
                max_packet_payload: 1024,
                header_bytes: 8,
                switching: Switching::VirtualCutThrough,
                routing: Routing::DimensionOrder,
            },
            software: SoftwareParams {
                send_overhead: Duration::ZERO,
                recv_overhead: Duration::ZERO,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_rounds_up() {
        let l = LinkParams {
            bandwidth_bytes_per_sec: 1_000_000_000, // 1 B/ns
            wire_latency: Duration::ZERO,
        };
        assert_eq!(l.transfer_time(1000), Duration::from_ns(1000));
        assert_eq!(l.transfer_time(1), Duration::from_ns(1));
        let slow = LinkParams {
            bandwidth_bytes_per_sec: 3,
            wire_latency: Duration::ZERO,
        };
        // 1 byte at 3 B/s = 333333333333.33 ps → rounded up.
        assert_eq!(slow.transfer_time(1), Duration::from_ps(333_333_333_334));
    }

    #[test]
    fn packet_splitting() {
        let c = NetworkConfig::test(Topology::Ring(4));
        assert_eq!(c.packets_for(0), 1);
        assert_eq!(c.packets_for(1), 1);
        assert_eq!(c.packets_for(1024), 1);
        assert_eq!(c.packets_for(1025), 2);
        assert_eq!(c.packets_for(10 * 1024), 10);
    }

    #[test]
    fn presets_validate() {
        NetworkConfig::t805(Topology::Mesh2D { w: 4, h: 4 }).validate();
        NetworkConfig::hw_routed(Topology::Hypercube { dim: 6 }).validate();
        NetworkConfig::test(Topology::Ring(2)).validate();
    }

    #[test]
    fn t805_is_slower_than_hw_routed() {
        let t = NetworkConfig::t805(Topology::Ring(4));
        let h = NetworkConfig::hw_routed(Topology::Ring(4));
        assert!(t.link.transfer_time(1024) > h.link.transfer_time(1024));
        assert!(t.software.send_overhead > h.software.send_overhead);
    }
}
