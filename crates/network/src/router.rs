//! The router component (paper, Fig. 3b): accepts packets from its local
//! abstract processor and the neighbouring routers, and forwards them hop
//! by hop with a configurable routing and switching strategy.

use std::collections::HashMap;

use mermaid_ops::NodeId;
use pearl::{CompId, Component, Ctx, Duration, Event, Time};

use crate::config::{LinkParams, RouterParams, Routing, Switching};
use crate::packet::{NetMsg, Packet};
use crate::topology::Topology;

/// Statistics of one router.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Packets forwarded towards another node.
    pub forwarded: u64,
    /// Packets delivered to the local processor.
    pub delivered: u64,
    /// Total time packets waited for a busy output link.
    pub link_wait: Duration,
    /// Total serialisation time on this router's output links.
    pub link_busy: Duration,
    /// Per-neighbour busy time (for link-utilisation reports).
    pub per_link_busy: HashMap<NodeId, Duration>,
}

/// One node's router.
pub struct Router {
    node: NodeId,
    topo: Topology,
    link: LinkParams,
    params: RouterParams,
    /// Component id of the local abstract processor.
    proc_comp: CompId,
    /// Component ids of all routers, indexed by node.
    router_comps: Vec<CompId>,
    /// Busy-until clock of each outgoing link, keyed by neighbour.
    out_busy: HashMap<NodeId, Time>,
    /// Statistics.
    pub stats: RouterStats,
}

impl Router {
    /// Build the router of `node`.
    pub fn new(
        node: NodeId,
        topo: Topology,
        link: LinkParams,
        params: RouterParams,
        proc_comp: CompId,
        router_comps: Vec<CompId>,
    ) -> Self {
        Router {
            node,
            topo,
            link,
            params,
            proc_comp,
            router_comps,
            out_busy: HashMap::new(),
            stats: RouterStats::default(),
        }
    }

    /// Wire size of a packet: payload plus header.
    fn packet_bytes(&self, pkt: &Packet) -> u32 {
        pkt.payload + self.params.header_bytes
    }

    /// Serialisation time of the whole packet on a link.
    fn packet_time(&self, pkt: &Packet) -> Duration {
        self.link.transfer_time(self.packet_bytes(pkt))
    }

    /// Serialisation time of just the header.
    fn header_time(&self) -> Duration {
        self.link.transfer_time(self.params.header_bytes)
    }

    /// Handle a packet whose head is at this router at `now`. `streamed`
    /// is true when the packet body may still be arriving (cut-through
    /// forwarding), false when the packet is fully local (injection or
    /// store-and-forward arrival).
    fn handle_packet(&mut self, pkt: Packet, streamed: bool, ctx: &mut Ctx<'_, NetMsg>) {
        let now = ctx.now();
        let t_pkt = self.packet_time(&pkt);
        let t_hdr = self.header_time();
        if pkt.dst == self.node {
            // Eject to the local processor once the tail has arrived.
            let tail_residue = if streamed {
                t_pkt.saturating_sub(t_hdr)
            } else {
                Duration::ZERO
            };
            self.stats.delivered += 1;
            ctx.send_after(tail_residue, self.proc_comp, NetMsg::Deliver(pkt));
            return;
        }
        // Forward: pick the next hop, wait for the output link, serialise.
        let next = match self.params.routing {
            Routing::DimensionOrder => self.topo.route_next(self.node, pkt.dst),
            Routing::AdaptiveMinimal => {
                // Earliest-free minimal output; ties towards the lowest id.
                self.topo
                    .minimal_next_hops(self.node, pkt.dst)
                    .into_iter()
                    .min_by_key(|&n| (self.out_busy.get(&n).copied().unwrap_or(Time::ZERO), n))
                    .expect("minimal candidate set is never empty")
            }
        };
        let busy = self.out_busy.entry(next).or_insert(Time::ZERO);
        let start = now.max(*busy) + self.params.routing_delay;
        let end = start + t_pkt;
        *busy = end;
        self.stats.forwarded += 1;
        self.stats.link_wait += start.since(now).saturating_sub(self.params.routing_delay);
        self.stats.link_busy += t_pkt;
        *self
            .stats
            .per_link_busy
            .entry(next)
            .or_insert(Duration::ZERO) += t_pkt;
        // Head arrival at the next router.
        let head_adv = match self.params.switching {
            Switching::StoreAndForward => t_pkt,
            Switching::VirtualCutThrough | Switching::Wormhole => t_hdr,
        };
        let arrive = start + self.link.wire_latency + head_adv;
        ctx.send_after(
            arrive.since(now),
            self.router_comps[next as usize],
            NetMsg::Forward(pkt),
        );
    }
}

impl Component<NetMsg> for Router {
    fn handle(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
        match ev.payload {
            NetMsg::Inject(pkt) => self.handle_packet(pkt, false, ctx),
            NetMsg::Forward(pkt) => {
                let streamed = !matches!(self.params.switching, Switching::StoreAndForward);
                self.handle_packet(pkt, streamed, ctx);
            }
            other => panic!("router {} received unexpected event {other:?}", self.node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::packet::{MsgId, PacketKind};
    use pearl::Engine;

    /// A sink that records delivered packets with their times.
    struct Sink {
        deliveries: Vec<(Time, Packet)>,
    }
    impl Component<NetMsg> for Sink {
        fn handle(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
            if let NetMsg::Deliver(pkt) = ev.payload {
                self.deliveries.push((ctx.now(), pkt));
            }
        }
    }

    fn pkt(src: NodeId, dst: NodeId, payload: u32) -> Packet {
        Packet {
            msg: MsgId { src, seq: 0 },
            dst,
            index: 0,
            count: 1,
            payload,
            msg_bytes: payload,
            kind: PacketKind::Data { sync: false },
            sent_at: Time::ZERO,
        }
    }

    /// Build a linear 1×n mesh of routers with sinks, returning the engine
    /// and the sink component ids.
    fn line(n: u32, switching: Switching) -> (Engine<NetMsg>, Vec<CompId>) {
        let mut cfg = NetworkConfig::test(Topology::Mesh2D { w: n, h: 1 });
        cfg.router.switching = switching;
        let mut e: Engine<NetMsg> = Engine::new();
        let router_ids: Vec<CompId> = (0..n as usize).collect();
        let sink_ids: Vec<CompId> = (n as usize..2 * n as usize).collect();
        for node in 0..n {
            e.add_component(
                format!("router{node}"),
                Router::new(
                    node,
                    cfg.topology,
                    cfg.link,
                    cfg.router,
                    sink_ids[node as usize],
                    router_ids.clone(),
                ),
            );
        }
        for node in 0..n {
            e.add_component(format!("sink{node}"), Sink { deliveries: vec![] });
        }
        (e, sink_ids)
    }

    #[test]
    fn single_hop_delivery_timing_saf() {
        let (mut e, sinks) = line(2, Switching::StoreAndForward);
        // 1016-byte payload + 8 header = 1024 bytes @1 GB/s = 1024 ns.
        e.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 1, 1016)));
        e.run();
        let sink = e.component::<Sink>(sinks[1]).unwrap();
        assert_eq!(sink.deliveries.len(), 1);
        // routing 10 ns + serialise 1024 ns + wire 1 ns; SAF: delivered when
        // fully at router 1.
        assert_eq!(sink.deliveries[0].0, Time::from_ns(10 + 1024 + 1));
    }

    #[test]
    fn cut_through_pipelines_hops() {
        // 3 routers in a line, 2 hops.
        let payload = 1016u32; // 1024 on the wire = 1024 ns
        let (mut e_saf, sinks_saf) = line(3, Switching::StoreAndForward);
        e_saf.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 2, payload)));
        e_saf.run();
        let t_saf = e_saf.component::<Sink>(sinks_saf[2]).unwrap().deliveries[0].0;

        let (mut e_vct, sinks_vct) = line(3, Switching::VirtualCutThrough);
        e_vct.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 2, payload)));
        e_vct.run();
        let t_vct = e_vct.component::<Sink>(sinks_vct[2]).unwrap().deliveries[0].0;

        // SAF pays full serialisation per hop; VCT pays it once.
        assert!(t_vct < t_saf, "VCT {t_vct} should beat SAF {t_saf}");
        // SAF: 2 × (10 + 1024 + 1) = 2070 ns.
        assert_eq!(t_saf, Time::from_ns(2 * (10 + 1024 + 1)));
        // VCT: hop1 head: 10+1+8=19; hop2 starts at head+routing … tail
        // residue 1016 ns after head at dst.
        assert_eq!(t_vct, Time::from_ns(10 + 1 + 8 + 10 + 1 + 8 + 1016));
    }

    #[test]
    fn contending_packets_serialise_on_the_link() {
        let (mut e, sinks) = line(2, Switching::StoreAndForward);
        e.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 1, 1016)));
        e.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 1, 1016)));
        e.run();
        let sink = e.component::<Sink>(sinks[1]).unwrap();
        assert_eq!(sink.deliveries.len(), 2);
        let dt = sink.deliveries[1].0.since(sink.deliveries[0].0);
        // Second packet waits a full serialisation (plus routing restart).
        assert!(dt >= Duration::from_ns(1024), "spacing {dt}");
    }

    #[test]
    fn delivery_to_self_is_immediate() {
        let (mut e, sinks) = line(2, Switching::StoreAndForward);
        e.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 0, 100)));
        e.run();
        let sink = e.component::<Sink>(sinks[0]).unwrap();
        assert_eq!(sink.deliveries[0].0, Time::ZERO);
    }

    #[test]
    fn stats_account_forwarding() {
        let (mut e, _) = line(3, Switching::StoreAndForward);
        e.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 2, 100)));
        e.run();
        let r0 = e.component::<Router>(0).unwrap();
        let r1 = e.component::<Router>(1).unwrap();
        let r2 = e.component::<Router>(2).unwrap();
        assert_eq!(r0.stats.forwarded, 1);
        assert_eq!(r1.stats.forwarded, 1);
        assert_eq!(r2.stats.delivered, 1);
        assert!(r0.stats.link_busy > Duration::ZERO);
        assert_eq!(r0.stats.per_link_busy.len(), 1);
    }
}
