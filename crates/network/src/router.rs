//! The router component (paper, Fig. 3b): accepts packets from its local
//! abstract processor and the neighbouring routers, and forwards them hop
//! by hop with a configurable routing and switching strategy.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use mermaid_ops::NodeId;
use mermaid_probe::{DropReason, ProbeHandle, SimEvent};
use pearl::{CompId, Component, Ctx, Duration, Event, EventKey, Time};

use crate::config::{LinkParams, RouterParams, Routing, Switching};
use crate::fault::{FaultKind, FaultSchedule};
use crate::packet::{NetMsg, Packet, Train};
use crate::topology::Topology;

/// A router→router message captured for cross-shard transport instead of
/// being scheduled in the local event queue (sharded runs only).
///
/// Carries the exact delivery time and the [`EventKey`] the serial run
/// would have used, so the destination shard can inject it with identical
/// ordering semantics.
#[derive(Debug, Clone)]
pub struct OutMsg {
    /// Absolute delivery time at the destination router.
    pub time: Time,
    /// The deterministic queue key of the equivalent serial send.
    pub key: EventKey,
    /// Sending component (the local router).
    pub src: CompId,
    /// Destination component (a remote router).
    pub dst: CompId,
    /// The message itself.
    pub msg: NetMsg,
}

/// Cross-shard egress wiring attached to a router in a sharded run.
#[derive(Clone)]
pub struct CrossShard {
    /// `local[node]` is true when that node's router lives in this shard.
    pub local: Arc<[bool]>,
    /// Captured outgoing messages, flushed each window by the shard loop.
    pub outbox: Rc<RefCell<Vec<OutMsg>>>,
}

/// Statistics of one router.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Packets forwarded towards another node.
    pub forwarded: u64,
    /// Packets delivered to the local processor.
    pub delivered: u64,
    /// Total time packets waited for a busy output link.
    pub link_wait: Duration,
    /// Total serialisation time on this router's output links.
    pub link_busy: Duration,
    /// Per-neighbour busy time (for link-utilisation reports).
    // BTreeMap so stats (and their Debug rendering) are deterministic.
    pub per_link_busy: BTreeMap<NodeId, Duration>,
    /// Packets discarded because no minimal output link was up.
    pub dropped_link_down: u64,
    /// Packets discarded because this router was down when they arrived.
    pub dropped_router_down: u64,
    /// Packets discarded at this router's checksum point (corrupted on the
    /// incoming link).
    pub dropped_corrupt: u64,
    /// Packets lost to transient faults on this router's output links
    /// (they consumed link bandwidth, then vanished).
    pub dropped_transient: u64,
    /// Packets this router's output links corrupted in flight.
    pub corrupted: u64,
    /// Packets steered around a failed preferred output link.
    pub rerouted: u64,
}

impl RouterStats {
    /// Total packets this router discarded, for any fault reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_link_down
            + self.dropped_router_down
            + self.dropped_corrupt
            + self.dropped_transient
    }
}

/// One node's router.
pub struct Router {
    node: NodeId,
    topo: Topology,
    link: LinkParams,
    params: RouterParams,
    /// Component id of the local abstract processor.
    proc_comp: CompId,
    /// Per-output-link state as parallel flat arrays keyed by the small
    /// neighbour list `out_nbrs` (discovered lazily on first reservation).
    /// A router has at most a handful of ports, so a linear scan beats
    /// hashing. `out_busy[i]` is the busy-until clock of the link towards
    /// `out_nbrs[i]`; `out_busy_total[i]` accumulates its serialisation
    /// time (folded into `RouterStats::per_link_busy` by
    /// [`Router::snapshot_stats`]).
    out_nbrs: Vec<NodeId>,
    out_busy: Vec<Time>,
    out_busy_total: Vec<Duration>,
    /// Reusable scratch for train processing (cleared per event; the
    /// capacity persists so steady-state train handling allocates nothing).
    scratch: TrainScratch,
    /// Instrumentation (disabled by default; observation only, never read
    /// back into routing or timing decisions).
    probe: ProbeHandle,
    /// Cross-shard egress (sharded runs only; `None` single-threaded).
    cross: Option<CrossShard>,
    /// The fault schedule (`None` = fault layer disabled: every check
    /// below short-circuits on this option, so a healthy run takes the
    /// exact pre-fault code path).
    faults: Option<Arc<FaultSchedule>>,
    /// Outgoing links currently down (fault mode only).
    down_links: HashSet<NodeId>,
    /// Whether this router itself is currently down (fault mode only).
    down: bool,
    /// Statistics.
    pub stats: RouterStats,
}

/// Reusable per-event buffers for [`Router::handle_train`].
#[derive(Default)]
struct TrainScratch {
    pkts: Vec<Packet>,
    arrivals: Vec<Time>,
    nexts: Vec<NodeId>,
    outs: Vec<Time>,
}

impl Router {
    /// Build the router of `node`.
    ///
    /// Component addressing follows the arena layout contract (DESIGN.md
    /// §15): the router of node `i` is component `i`, so router→router
    /// sends need no id table.
    pub fn new(
        node: NodeId,
        topo: Topology,
        link: LinkParams,
        params: RouterParams,
        proc_comp: CompId,
    ) -> Self {
        Router {
            node,
            topo,
            link,
            params,
            proc_comp,
            out_nbrs: Vec::new(),
            out_busy: Vec::new(),
            out_busy_total: Vec::new(),
            scratch: TrainScratch::default(),
            probe: ProbeHandle::disabled(),
            cross: None,
            faults: None,
            down_links: HashSet::new(),
            down: false,
            stats: RouterStats::default(),
        }
    }

    /// Busy-until clock of the output link towards `next` (`Time::ZERO`
    /// when the link has never been reserved).
    #[inline]
    fn link_busy_until(&self, next: NodeId) -> Time {
        match self.out_nbrs.iter().position(|&n| n == next) {
            Some(i) => self.out_busy[i],
            None => Time::ZERO,
        }
    }

    /// Index of the link towards `next` in the flat link arrays, creating
    /// it on first use.
    #[inline]
    fn link_slot(&mut self, next: NodeId) -> usize {
        match self.out_nbrs.iter().position(|&n| n == next) {
            Some(i) => i,
            None => {
                self.out_nbrs.push(next);
                self.out_busy.push(Time::ZERO);
                self.out_busy_total.push(Duration::ZERO);
                self.out_nbrs.len() - 1
            }
        }
    }

    /// The router's statistics with the per-link busy table materialised
    /// from the flat link arrays (the `BTreeMap` keeps reports and their
    /// `Debug` rendering deterministic regardless of discovery order).
    pub fn snapshot_stats(&self) -> RouterStats {
        let mut s = self.stats.clone();
        for (i, &n) in self.out_nbrs.iter().enumerate() {
            *s.per_link_busy.entry(n).or_insert(Duration::ZERO) += self.out_busy_total[i];
        }
        s
    }

    /// Attach an instrumentation handle (builder style).
    pub fn with_probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = probe;
        self
    }

    /// Attach cross-shard egress wiring (builder style; sharded runs only).
    pub fn with_cross_shard(mut self, cross: CrossShard) -> Self {
        self.cross = Some(cross);
        self
    }

    /// Attach a fault schedule (builder style). `None` keeps the fault
    /// layer switched off entirely.
    pub fn with_faults(mut self, faults: Option<Arc<FaultSchedule>>) -> Self {
        self.faults = faults;
        self
    }

    /// Schedule `msg` to arrive at node `next`'s router at absolute time
    /// `at`. In a sharded run with `next` on another shard the message is
    /// captured into the outbox (with the key the serial schedule would
    /// have consumed) instead of entering the local queue.
    fn send_router(&self, ctx: &mut Ctx<'_, NetMsg>, next: NodeId, at: Time, msg: NetMsg) {
        // Arena layout contract: node `i`'s router is component `i`.
        let dst = next as CompId;
        if let Some(cs) = &self.cross {
            if !cs.local[next as usize] {
                let key = ctx.alloc_key();
                cs.outbox.borrow_mut().push(OutMsg {
                    time: at,
                    key,
                    src: ctx.self_id(),
                    dst,
                    msg,
                });
                return;
            }
        }
        ctx.send_at(at, dst, msg);
    }

    /// Wire size of a packet: payload plus header.
    fn packet_bytes(&self, pkt: &Packet) -> u32 {
        pkt.payload + self.params.header_bytes
    }

    /// Serialisation time of the whole packet on a link.
    fn packet_time(&self, pkt: &Packet) -> Duration {
        self.link.transfer_time(self.packet_bytes(pkt))
    }

    /// Serialisation time of just the header.
    fn header_time(&self) -> Duration {
        self.link.transfer_time(self.params.header_bytes)
    }

    /// Time from a packet's tail being ejected relative to its head being
    /// at this router: non-zero only when the body is still streaming in.
    fn tail_residue(&self, pkt: &Packet, streamed: bool) -> Duration {
        if streamed {
            self.packet_time(pkt).saturating_sub(self.header_time())
        } else {
            Duration::ZERO
        }
    }

    /// Pick the output port (next-hop node) for a packet.
    fn pick_next(&self, pkt: &Packet) -> NodeId {
        match self.params.routing {
            Routing::DimensionOrder => self.topo.route_next(self.node, pkt.dst),
            Routing::AdaptiveMinimal => {
                // Earliest-free minimal output; ties towards the lowest id.
                self.topo
                    .minimal_next_hops(self.node, pkt.dst)
                    .into_iter()
                    .min_by_key(|&n| (self.link_busy_until(n), n))
                    .expect("minimal candidate set is never empty")
            }
        }
    }

    /// Reserve the link towards `next` for a packet whose head is at this
    /// router at `at`: serialise after the link frees, account statistics,
    /// and return the head's arrival time at the next router.
    ///
    /// Also charges this hop to the packet's latency decomposition: the
    /// wait for the busy link to `queue`, the routing decision to `route`,
    /// the head's serialisation advance to `ser` and the propagation to
    /// `wire` — together exactly the head's progress `arrive - at`.
    fn reserve(&mut self, next: NodeId, pkt: &mut Packet, at: Time) -> Time {
        let t_pkt = self.packet_time(pkt);
        let slot = self.link_slot(next);
        let start = at.max(self.out_busy[slot]) + self.params.routing_delay;
        let end = start + t_pkt;
        self.out_busy[slot] = end;
        self.out_busy_total[slot] += t_pkt;
        self.stats.forwarded += 1;
        let wait = start.since(at).saturating_sub(self.params.routing_delay);
        self.stats.link_wait += wait;
        self.stats.link_busy += t_pkt;
        pkt.path.queue_ps += wait.as_ps();
        pkt.path.route_ps += self.params.routing_delay.as_ps();
        pkt.path.wire_ps += self.link.wire_latency.as_ps();
        self.probe.emit(|| SimEvent::LinkBusy {
            node: self.node,
            to: next,
            start_ps: start.as_ps(),
            end_ps: end.as_ps(),
        });
        self.probe.emit(|| SimEvent::PacketForward {
            ts_ps: at.as_ps(),
            node: self.node,
            to: next,
            packets: 1,
        });
        // Head arrival at the next router.
        let head_adv = match self.params.switching {
            Switching::StoreAndForward => t_pkt,
            Switching::VirtualCutThrough | Switching::Wormhole => self.header_time(),
        };
        pkt.path.ser_ps += head_adv.as_ps();
        start + self.link.wire_latency + head_adv
    }

    /// Account and announce a discarded packet (fault mode only).
    fn drop_packet(&mut self, pkt: &Packet, at: Time, reason: DropReason) {
        match reason {
            DropReason::LinkDown => self.stats.dropped_link_down += 1,
            DropReason::RouterDown => self.stats.dropped_router_down += 1,
            DropReason::Corrupt => self.stats.dropped_corrupt += 1,
            DropReason::Transient => self.stats.dropped_transient += 1,
        }
        self.probe.emit(|| SimEvent::PacketDropped {
            ts_ps: at.as_ps(),
            node: self.node,
            src: pkt.msg.src,
            seq: pkt.msg.seq,
            reason,
        });
    }

    /// Apply a scripted fault. Transfers already reserved on a link run to
    /// completion — a fault changes the fate of packets that *arrive*
    /// after it, matching a status register the router consults per hop.
    fn apply_fault(&mut self, kind: FaultKind, now: Time) {
        match kind {
            FaultKind::LinkDown { to, .. } => {
                self.down_links.insert(to);
                self.probe.emit(|| SimEvent::LinkFault {
                    ts_ps: now.as_ps(),
                    node: self.node,
                    to,
                    up: false,
                });
            }
            FaultKind::LinkUp { to, .. } => {
                self.down_links.remove(&to);
                self.probe.emit(|| SimEvent::LinkFault {
                    ts_ps: now.as_ps(),
                    node: self.node,
                    to,
                    up: true,
                });
            }
            FaultKind::RouterDown { .. } => {
                self.down = true;
                self.probe.emit(|| SimEvent::RouterFault {
                    ts_ps: now.as_ps(),
                    node: self.node,
                    up: false,
                });
            }
            FaultKind::RouterUp { .. } => {
                self.down = false;
                self.probe.emit(|| SimEvent::RouterFault {
                    ts_ps: now.as_ps(),
                    node: self.node,
                    up: true,
                });
            }
        }
    }

    /// Pick an *up* output port for a packet: the healthy-path choice when
    /// its link is up, otherwise the earliest-free minimal alternative
    /// that is (adaptive rerouting, even under dimension-order routing).
    /// `None` when every minimal output is down. The second component is
    /// true when the packet was steered off its preferred port.
    fn pick_next_up(&self, pkt: &Packet) -> Option<(NodeId, bool)> {
        let preferred = self.pick_next(pkt);
        if self.down_links.is_empty() || !self.down_links.contains(&preferred) {
            return Some((preferred, false));
        }
        self.topo
            .minimal_next_hops(self.node, pkt.dst)
            .into_iter()
            .filter(|n| !self.down_links.contains(n))
            .min_by_key(|&n| (self.link_busy_until(n), n))
            .map(|n| (n, true))
    }

    /// Handle a packet whose head is at this router at `now`. `streamed`
    /// is true when the packet body may still be arriving (cut-through
    /// forwarding), false when the packet is fully local (injection or
    /// store-and-forward arrival).
    fn handle_packet(&mut self, pkt: Packet, streamed: bool, ctx: &mut Ctx<'_, NetMsg>) {
        let mut pkt = pkt;
        let now = ctx.now();
        if self.faults.is_some() {
            if self.down {
                self.drop_packet(&pkt, now, DropReason::RouterDown);
                return;
            }
            if pkt.corrupted {
                // Checksum point: corruption on the incoming link is
                // detected here and the packet discarded.
                self.drop_packet(&pkt, now, DropReason::Corrupt);
                return;
            }
        }
        if pkt.dst == self.node {
            // Eject to the local processor once the tail has arrived.
            let residue = self.tail_residue(&pkt, streamed);
            pkt.path.ser_ps += residue.as_ps();
            self.stats.delivered += 1;
            self.probe.emit(|| SimEvent::PacketDeliver {
                ts_ps: (now + residue).as_ps(),
                node: self.node,
                packets: 1,
            });
            ctx.send_after(residue, self.proc_comp, NetMsg::Deliver(pkt));
            return;
        }
        // Forward: pick the next hop, wait for the output link, serialise.
        let Some((next, rerouted)) = self.pick_next_up(&pkt) else {
            self.drop_packet(&pkt, now, DropReason::LinkDown);
            return;
        };
        if rerouted {
            self.stats.rerouted += 1;
            self.probe.emit(|| SimEvent::Reroute {
                ts_ps: now.as_ps(),
                node: self.node,
                to: next,
            });
        }
        let arrive = self.reserve(next, &mut pkt, now);
        let mut fwd = pkt;
        // Stateless per-traversal draws: verdicts depend only on the
        // packet's identity and the link, never on event order — so both
        // are computed up front and the borrow of `faults` released before
        // any stats mutation (no per-packet `Arc` clone).
        let (dropped, corrupted) = match &self.faults {
            Some(faults) => {
                if faults.drops_packet(self.node, next, &pkt) {
                    (true, false)
                } else {
                    (false, faults.corrupts_packet(self.node, next, &pkt))
                }
            }
            None => (false, false),
        };
        if dropped {
            // The packet consumed the wire (the link was reserved above),
            // then vanished.
            self.drop_packet(&pkt, now, DropReason::Transient);
            return;
        }
        if corrupted {
            fwd.corrupted = true;
            self.stats.corrupted += 1;
            self.probe.emit(|| SimEvent::PacketCorrupted {
                ts_ps: now.as_ps(),
                node: self.node,
                to: next,
                src: pkt.msg.src,
                seq: pkt.msg.seq,
            });
        }
        self.send_router(ctx, next, arrive, NetMsg::Forward(fwd));
    }

    /// Head-arrival gap on the incoming link between two consecutive
    /// back-to-back packets of a train: under store-and-forward the next
    /// head is "here" once its whole packet has landed; under cut-through
    /// heads pipeline one serialisation (of the *previous* packet) apart.
    /// Both include the upstream router's per-packet routing restart.
    fn train_gap(&self, prev: &Packet, cur: &Packet) -> Duration {
        let spaced = match self.params.switching {
            Switching::StoreAndForward => self.packet_time(cur),
            Switching::VirtualCutThrough | Switching::Wormhole => self.packet_time(prev),
        };
        spaced + self.params.routing_delay
    }

    /// Handle a packet train. `injected` means every packet of the run is
    /// fully local *now* (fresh from the processor); otherwise the head is
    /// here at `now` and the followers trail at size-derived gaps.
    ///
    /// Processing a run in one event is arithmetically identical to the
    /// per-packet events it replaces: each packet is reserved on the
    /// output link at its own (nominal) head-arrival time with the same
    /// `max(arrival, busy) + routing` recurrence. The run is kept
    /// coalesced onward only while the back-to-back invariant provably
    /// holds (output link idle, gaps canonical); otherwise it is
    /// re-expanded into per-packet `Forward` events at the packets' exact
    /// nominal arrival times, restoring the uncoalesced behaviour —
    /// including per-arrival adaptive route choice — event for event.
    fn handle_train(&mut self, train: Train, injected: bool, ctx: &mut Ctx<'_, NetMsg>) {
        let now = ctx.now();
        if self.faults.is_some() && train.len >= 2 {
            // Fault mode never coalesces: a train carries one checksum bit
            // and one identity for the whole run, but fault draws are
            // per-packet per-link. Fault-mode processors inject packets
            // individually, and fault-mode routers (this branch) never
            // emit a train, so a multi-packet run can only be a fresh
            // injection — expand it in place.
            debug_assert!(injected, "fault-mode routers never emit trains");
            let payload_max = self.params.max_packet_payload;
            let me = self.node as CompId;
            self.handle_packet(train.packet(0, payload_max), false, ctx);
            for i in 1..train.len {
                ctx.send_now(me, NetMsg::Inject(train.packet(i, payload_max)));
            }
            return;
        }
        let streamed = !injected && !matches!(self.params.switching, Switching::StoreAndForward);
        if train.len < 2 {
            // Degenerate run: behave exactly like the scalar event.
            self.handle_packet(train.first, streamed, ctx);
            return;
        }
        let payload_max = self.params.max_packet_payload;
        let len = train.len as usize;
        // Per-packet nominal head-arrival times at this router. Followers
        // are reconstructed from the run head and inherit its latency
        // decomposition, so each is advanced by its arrival offset from
        // the head: the size-derived spacing is pipelined serialisation
        // (`ser`), the per-packet restart is `route` — together exactly
        // `arrivals[i] - now`, keeping the decomposition conservative.
        //
        // The buffers are taken from (and returned to) the router's
        // scratch, so steady-state train handling allocates nothing.
        let mut pkts = std::mem::take(&mut self.scratch.pkts);
        let mut arrivals = std::mem::take(&mut self.scratch.arrivals);
        pkts.clear();
        arrivals.clear();
        let mut at = now;
        let (mut ser_off, mut route_off) = (0u64, 0u64);
        for i in 0..train.len {
            let mut p = train.packet(i, payload_max);
            if i > 0 && !injected {
                let gap = self.train_gap(&pkts[i as usize - 1], &p);
                at += gap;
                ser_off += gap.saturating_sub(self.params.routing_delay).as_ps();
                route_off += self.params.routing_delay.as_ps();
            }
            p.path.ser_ps += ser_off;
            p.path.route_ps += route_off;
            pkts.push(p);
            arrivals.push(at);
        }
        if train.first.dst == self.node {
            // Eject the whole run: the message-level observables (assembly
            // completion, ack issue, latency stats) depend only on the
            // *last* packet's full arrival, so one event at that instant
            // carries the run to the processor.
            let last = len - 1;
            let residue = self.tail_residue(&pkts[last], streamed);
            let done = arrivals[last] + residue;
            self.stats.delivered += train.len as u64;
            self.probe.emit(|| SimEvent::PacketDeliver {
                ts_ps: done.as_ps(),
                node: self.node,
                packets: train.len,
            });
            // Only the run's *completing* (last) packet's decomposition is
            // ever read downstream (it closes the message's assembly), so
            // the delivered train carries that packet's path — advanced by
            // the tail residue — on its head.
            let mut delivered = train;
            delivered.first.path = pkts[last].path;
            delivered.first.path.ser_ps += residue.as_ps();
            ctx.send_after(
                done.since(now),
                self.proc_comp,
                NetMsg::DeliverTrain(delivered),
            );
            self.scratch.pkts = pkts;
            self.scratch.arrivals = arrivals;
            return;
        }
        // Keep the run coalesced only when the output link is provably
        // free for the whole burst: dimension-order (one output for the
        // whole run) and idle at the head's arrival. Injected runs always
        // qualify — their packets all contend at the same instant, so the
        // busy chain is identical to per-packet events even on a busy
        // link, and adaptive choices see the same link states.
        let coalesce = injected || {
            matches!(self.params.routing, Routing::DimensionOrder) && {
                let next = self.topo.route_next(self.node, train.first.dst);
                self.link_busy_until(next) <= now
            }
        };
        if !coalesce {
            // Re-expand: the head is processed here and now; each follower
            // is re-posted to ourselves at its nominal arrival, exactly as
            // if it had never been coalesced.
            let me = self.node as CompId;
            self.handle_packet(pkts[0], streamed, ctx);
            for i in 1..len {
                ctx.send_after(arrivals[i].since(now), me, NetMsg::Forward(pkts[i]));
            }
            self.scratch.pkts = pkts;
            self.scratch.arrivals = arrivals;
            return;
        }
        // Burst-reserve every packet at its nominal arrival, then re-emit
        // maximal still-back-to-back runs (everything, in the common case).
        let mut nexts = std::mem::take(&mut self.scratch.nexts);
        let mut outs = std::mem::take(&mut self.scratch.outs);
        nexts.clear();
        outs.clear();
        for i in 0..len {
            let next = self.pick_next(&pkts[i]);
            let arrive = self.reserve(next, &mut pkts[i], arrivals[i]);
            nexts.push(next);
            outs.push(arrive);
        }
        let mut i = 0;
        while i < len {
            let mut j = i + 1;
            while j < len
                && nexts[j] == nexts[i]
                && outs[j] == outs[j - 1] + self.train_gap(&pkts[j - 1], &pkts[j])
            {
                j += 1;
            }
            if j - i >= 2 {
                // A run never outgrows the train it came from, whose length
                // already fits u32 — but make the narrowing explicit rather
                // than silently truncating.
                debug_assert!(j - i <= len, "run cannot outgrow its train");
                let run_len: u32 = (j - i)
                    .try_into()
                    .expect("train run length exceeds u32::MAX");
                let run = Train {
                    first: pkts[i],
                    len: run_len,
                };
                self.send_router(ctx, nexts[i], outs[i], NetMsg::ForwardTrain(run));
            } else {
                self.send_router(ctx, nexts[i], outs[i], NetMsg::Forward(pkts[i]));
            }
            i = j;
        }
        self.scratch.pkts = pkts;
        self.scratch.arrivals = arrivals;
        self.scratch.nexts = nexts;
        self.scratch.outs = outs;
    }
}

impl Router {
    /// Append the router's mutable simulation state to a checkpoint
    /// integer stream (crate::snapshot). The configuration half (topology,
    /// link/router params, probe, faults wiring) is rebuilt from the run
    /// config on restore and deliberately not captured.
    pub(crate) fn snapshot_ints(&self, out: &mut Vec<u64>) {
        out.push(self.out_nbrs.len() as u64);
        for i in 0..self.out_nbrs.len() {
            out.push(self.out_nbrs[i] as u64);
            out.push(self.out_busy[i].as_ps());
            out.push(self.out_busy_total[i].as_ps());
        }
        out.push(self.down as u64);
        let mut links: Vec<NodeId> = self.down_links.iter().copied().collect();
        links.sort_unstable();
        out.push(links.len() as u64);
        out.extend(links.iter().map(|&n| n as u64));
        let s = &self.stats;
        out.push(s.forwarded);
        out.push(s.delivered);
        out.push(s.link_wait.as_ps());
        out.push(s.link_busy.as_ps());
        out.push(s.per_link_busy.len() as u64);
        for (&n, &d) in &s.per_link_busy {
            out.push(n as u64);
            out.push(d.as_ps());
        }
        out.push(s.dropped_link_down);
        out.push(s.dropped_router_down);
        out.push(s.dropped_corrupt);
        out.push(s.dropped_transient);
        out.push(s.corrupted);
        out.push(s.rerouted);
    }

    /// Overlay state captured by [`Router::snapshot_ints`] onto a freshly
    /// built (never-run) router.
    pub(crate) fn restore_ints(
        &mut self,
        r: &mut crate::snapshot::IntReader<'_>,
    ) -> Result<(), String> {
        let n_links = r.take("router link count")? as usize;
        self.out_nbrs.clear();
        self.out_busy.clear();
        self.out_busy_total.clear();
        for _ in 0..n_links {
            self.out_nbrs
                .push(r.take("router link neighbour")? as NodeId);
            self.out_busy
                .push(Time::from_ps(r.take("router link busy")?));
            self.out_busy_total
                .push(Duration::from_ps(r.take("router link busy total")?));
        }
        self.down = r.take("router down flag")? != 0;
        self.down_links.clear();
        let n_down = r.take("router down-link count")?;
        for _ in 0..n_down {
            self.down_links
                .insert(r.take("router down link")? as NodeId);
        }
        let s = &mut self.stats;
        s.forwarded = r.take("router forwarded")?;
        s.delivered = r.take("router delivered")?;
        s.link_wait = Duration::from_ps(r.take("router link_wait")?);
        s.link_busy = Duration::from_ps(r.take("router link_busy")?);
        s.per_link_busy.clear();
        let n_busy = r.take("router per-link busy count")?;
        for _ in 0..n_busy {
            let n = r.take("router per-link busy node")? as NodeId;
            let d = Duration::from_ps(r.take("router per-link busy time")?);
            s.per_link_busy.insert(n, d);
        }
        s.dropped_link_down = r.take("router dropped_link_down")?;
        s.dropped_router_down = r.take("router dropped_router_down")?;
        s.dropped_corrupt = r.take("router dropped_corrupt")?;
        s.dropped_transient = r.take("router dropped_transient")?;
        s.corrupted = r.take("router corrupted")?;
        s.rerouted = r.take("router rerouted")?;
        Ok(())
    }
}

impl Component<NetMsg> for Router {
    fn handle(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
        match ev.payload {
            NetMsg::Inject(pkt) => self.handle_packet(pkt, false, ctx),
            NetMsg::Forward(pkt) => {
                let streamed = !matches!(self.params.switching, Switching::StoreAndForward);
                self.handle_packet(pkt, streamed, ctx);
            }
            NetMsg::InjectTrain(train) => self.handle_train(train, true, ctx),
            NetMsg::ForwardTrain(train) => self.handle_train(train, false, ctx),
            NetMsg::Fault(kind) => self.apply_fault(kind, ctx.now()),
            other => panic!("router {} received unexpected event {other:?}", self.node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::packet::{MsgId, PacketKind, PathDecomp};
    use pearl::Engine;

    /// A sink that records delivered packets with their times.
    struct Sink {
        deliveries: Vec<(Time, Packet)>,
    }
    impl Component<NetMsg> for Sink {
        fn handle(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
            match ev.payload {
                NetMsg::Deliver(pkt) => self.deliveries.push((ctx.now(), pkt)),
                NetMsg::DeliverTrain(train) => {
                    // Expand with the test config's packet payload (1024).
                    for i in 0..train.len {
                        self.deliveries.push((ctx.now(), train.packet(i, 1024)));
                    }
                }
                _ => {}
            }
        }
    }

    fn pkt(src: NodeId, dst: NodeId, payload: u32) -> Packet {
        Packet {
            msg: MsgId { src, seq: 0 },
            dst,
            index: 0,
            count: 1,
            payload,
            msg_bytes: payload,
            kind: PacketKind::Data { sync: false },
            sent_at: Time::ZERO,
            attempt: 0,
            corrupted: false,
            path: PathDecomp::default(),
        }
    }

    /// Build a linear 1×n mesh of routers with sinks, returning the engine
    /// and the sink component ids.
    fn line(n: u32, switching: Switching) -> (Engine<NetMsg>, Vec<CompId>) {
        let mut cfg = NetworkConfig::test(Topology::Mesh2D { w: n, h: 1 });
        cfg.router.switching = switching;
        let mut e: Engine<NetMsg> = Engine::new();
        let sink_ids: Vec<CompId> = (n as usize..2 * n as usize).collect();
        for node in 0..n {
            e.add_component(
                format!("router{node}"),
                Router::new(
                    node,
                    cfg.topology,
                    cfg.link,
                    cfg.router,
                    sink_ids[node as usize],
                ),
            );
        }
        for node in 0..n {
            e.add_component(format!("sink{node}"), Sink { deliveries: vec![] });
        }
        (e, sink_ids)
    }

    #[test]
    fn single_hop_delivery_timing_saf() {
        let (mut e, sinks) = line(2, Switching::StoreAndForward);
        // 1016-byte payload + 8 header = 1024 bytes @1 GB/s = 1024 ns.
        e.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 1, 1016)));
        e.run();
        let sink = e.component::<Sink>(sinks[1]).unwrap();
        assert_eq!(sink.deliveries.len(), 1);
        // routing 10 ns + serialise 1024 ns + wire 1 ns; SAF: delivered when
        // fully at router 1.
        assert_eq!(sink.deliveries[0].0, Time::from_ns(10 + 1024 + 1));
    }

    #[test]
    fn cut_through_pipelines_hops() {
        // 3 routers in a line, 2 hops.
        let payload = 1016u32; // 1024 on the wire = 1024 ns
        let (mut e_saf, sinks_saf) = line(3, Switching::StoreAndForward);
        e_saf.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 2, payload)));
        e_saf.run();
        let t_saf = e_saf.component::<Sink>(sinks_saf[2]).unwrap().deliveries[0].0;

        let (mut e_vct, sinks_vct) = line(3, Switching::VirtualCutThrough);
        e_vct.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 2, payload)));
        e_vct.run();
        let t_vct = e_vct.component::<Sink>(sinks_vct[2]).unwrap().deliveries[0].0;

        // SAF pays full serialisation per hop; VCT pays it once.
        assert!(t_vct < t_saf, "VCT {t_vct} should beat SAF {t_saf}");
        // SAF: 2 × (10 + 1024 + 1) = 2070 ns.
        assert_eq!(t_saf, Time::from_ns(2 * (10 + 1024 + 1)));
        // VCT: hop1 head: 10+1+8=19; hop2 starts at head+routing … tail
        // residue 1016 ns after head at dst.
        assert_eq!(t_vct, Time::from_ns(10 + 1 + 8 + 10 + 1 + 8 + 1016));
    }

    #[test]
    fn contending_packets_serialise_on_the_link() {
        let (mut e, sinks) = line(2, Switching::StoreAndForward);
        e.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 1, 1016)));
        e.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 1, 1016)));
        e.run();
        let sink = e.component::<Sink>(sinks[1]).unwrap();
        assert_eq!(sink.deliveries.len(), 2);
        let dt = sink.deliveries[1].0.since(sink.deliveries[0].0);
        // Second packet waits a full serialisation (plus routing restart).
        assert!(dt >= Duration::from_ns(1024), "spacing {dt}");
    }

    #[test]
    fn delivery_to_self_is_immediate() {
        let (mut e, sinks) = line(2, Switching::StoreAndForward);
        e.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 0, 100)));
        e.run();
        let sink = e.component::<Sink>(sinks[0]).unwrap();
        assert_eq!(sink.deliveries[0].0, Time::ZERO);
    }

    /// A multi-packet message injected as a train must reach its sink at
    /// exactly the time the same packets produce when injected one by one
    /// (same instant, program order) — coalescing is a pure event-count
    /// optimisation on an uncontended path.
    #[test]
    fn train_timing_matches_per_packet_injection() {
        for switching in [
            Switching::StoreAndForward,
            Switching::VirtualCutThrough,
            Switching::Wormhole,
        ] {
            // 3 packets: two at the test config's full payload (1024 B),
            // one short tail.
            let msg_bytes = 2 * 1024 + 500;
            let mk = |index: u32, payload: u32| Packet {
                msg: MsgId { src: 0, seq: 7 },
                dst: 3,
                index,
                count: 3,
                payload,
                msg_bytes,
                kind: PacketKind::Data { sync: false },
                sent_at: Time::ZERO,
                attempt: 0,
                corrupted: false,
                path: PathDecomp::default(),
            };

            let (mut e_pkt, sinks_pkt) = line(4, switching);
            for (i, payload) in [(0, 1024), (1, 1024), (2, 500)] {
                e_pkt.post(Time::ZERO, 0, 0, NetMsg::Inject(mk(i, payload)));
            }
            e_pkt.run();
            let per_packet: Vec<Time> = e_pkt
                .component::<Sink>(sinks_pkt[3])
                .unwrap()
                .deliveries
                .iter()
                .map(|&(t, _)| t)
                .collect();
            assert_eq!(per_packet.len(), 3);

            let (mut e_tr, sinks_tr) = line(4, switching);
            e_tr.post(
                Time::ZERO,
                0,
                0,
                NetMsg::InjectTrain(Train {
                    first: mk(0, 1024),
                    len: 3,
                }),
            );
            e_tr.run();
            let sink = e_tr.component::<Sink>(sinks_tr[3]).unwrap();
            // The run is delivered as one event at the *last* packet's
            // full-arrival instant.
            assert_eq!(sink.deliveries.len(), 3, "{switching:?}");
            assert_eq!(
                sink.deliveries.last().unwrap().0,
                *per_packet.last().unwrap(),
                "{switching:?}: train tail time diverged from per-packet"
            );
            // Stats stay per-packet.
            let r1 = e_tr.component::<Router>(1).unwrap();
            assert_eq!(r1.stats.forwarded, 3, "{switching:?}");
        }
    }

    #[test]
    fn stats_account_forwarding() {
        let (mut e, _) = line(3, Switching::StoreAndForward);
        e.post(Time::ZERO, 0, 0, NetMsg::Inject(pkt(0, 2, 100)));
        e.run();
        let r0 = e.component::<Router>(0).unwrap();
        let r1 = e.component::<Router>(1).unwrap();
        let r2 = e.component::<Router>(2).unwrap();
        assert_eq!(r0.stats.forwarded, 1);
        assert_eq!(r1.stats.forwarded, 1);
        assert_eq!(r2.stats.delivered, 1);
        assert!(r0.stats.link_busy > Duration::ZERO);
        assert_eq!(r0.snapshot_stats().per_link_busy.len(), 1);
    }
}
