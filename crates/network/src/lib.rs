//! # mermaid-network — the multi-node communication model
//!
//! Models the communication side of Mermaid (paper, Fig. 3b): every node
//! has an **abstract processor**, a **router**, and **communication links**;
//! nodes are connected in a topology reflecting the physical interconnect
//! of the multicomputer. The abstract processor reads an incoming
//! (task-level) operation trace, processes the `compute` operations and
//! dispatches communication requests to the router, which packetises
//! messages and routes them through the network with a configurable routing
//! and switching strategy.
//!
//! The model is built on the [`pearl`] discrete-event kernel: routers and
//! abstract processors are components; packets travel as events; link
//! occupancy serialises transfers.
//!
//! * [`Topology`] — ring, 2-D mesh, 2-D torus, hypercube, fully-connected,
//!   star; deterministic minimal routing (dimension-order / e-cube).
//! * [`Switching`] — store-and-forward, virtual cut-through, wormhole
//!   (modelled at packet granularity; see DESIGN.md for the approximation).
//! * Synchronous `send`/`recv` implement a rendezvous: the sender blocks
//!   until the receiver has consumed the message (acknowledged by a control
//!   packet travelling back through the network). `asend`/`arecv` are
//!   non-blocking.
//!
//! The entry point is [`CommSim`]: build it from a [`NetworkConfig`] and a
//! task-level [`mermaid_ops::TraceSet`], run it, and read a [`CommResult`].

pub mod config;
pub mod fault;
pub mod packet;
pub mod partition;
pub mod processor;
pub mod router;
pub mod sharded;
pub mod sim;
pub mod snapshot;
pub mod topology;
pub(crate) mod world;

pub use config::{LinkParams, NetworkConfig, RouterParams, Routing, Switching};
pub use fault::{FaultEvent, FaultKind, FaultSchedule, RetryParams};
pub use partition::{lookahead, PairLookahead, Partition};
pub use processor::{ProcStats, UnreachableReport};
pub use sharded::{
    auto_shards, run_checkpointed, run_checkpointed_with, run_sharded, run_sharded_with_faults,
    run_sharded_with_faults_profiled, CheckpointOpts, ShardProfile, ShardProfileEntry, Speculation,
};
pub use sim::{CommResult, CommSim, NodeCommStats};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_SCHEMA};
pub use topology::{Topology, MAX_NODES};
