//! Topology partitioning and lookahead for sharded simulation.
//!
//! A sharded run splits the machine's nodes into per-thread *shards*. The
//! partition is by contiguous node-id blocks, which follows physical
//! locality on every supported topology: ring neighbours are id-adjacent,
//! and on meshes/tori (`id = y*w + x`) a contiguous block is a band of
//! rows, so most links stay shard-internal. Correctness never depends on
//! the cut — only window width (the *lookahead*) does, and that is a
//! property of the link parameters, not the partition.

use mermaid_ops::NodeId;
use pearl::Duration;

use crate::config::NetworkConfig;
use crate::topology::Topology;

/// A partition of a topology's nodes into contiguous shards.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `starts[s]..starts[s+1]` is shard `s`'s node range.
    starts: Vec<u32>,
    nodes: u32,
}

impl Partition {
    /// Split `topo`'s nodes into (at most) `shards` contiguous blocks of
    /// near-equal size. The shard count is capped at the node count, so
    /// every shard is non-empty.
    pub fn contiguous(topo: Topology, shards: usize) -> Self {
        let nodes = topo.nodes();
        // Clamp in usize *before* narrowing: `(shards as u32)` would wrap a
        // pathological request like `1 << 32` to zero shards.
        let k = shards.clamp(1, nodes as usize) as u32;
        let base = nodes / k;
        let extra = nodes % k; // first `extra` shards get one more node
        let mut starts = Vec::with_capacity(k as usize + 1);
        let mut at = 0;
        for s in 0..k {
            starts.push(at);
            at += base + u32::from(s < extra);
        }
        starts.push(nodes);
        Partition { starts, nodes }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// The node range of shard `s`.
    pub fn range(&self, s: usize) -> std::ops::Range<u32> {
        self.starts[s]..self.starts[s + 1]
    }

    /// Which shard owns `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        debug_assert!(node < self.nodes);
        // Blocks differ in size by at most one, so a direct estimate lands
        // within one shard of the answer; nudge to the owning block.
        let k = self.shards();
        let mut s = ((node as u64 * k as u64) / self.nodes.max(1) as u64) as usize;
        s = s.min(k - 1);
        while node < self.starts[s] {
            s -= 1;
        }
        while node >= self.starts[s + 1] {
            s += 1;
        }
        s
    }

    /// Per-node membership mask for shard `s` (`mask[node]` ⇔ local).
    pub fn local_mask(&self, s: usize) -> Vec<bool> {
        let r = self.range(s);
        (0..self.nodes).map(|n| r.contains(&n)).collect()
    }
}

/// The conservative lookahead of a configuration: a lower bound on the
/// virtual-time distance between a router processing an event and the
/// earliest cross-shard effect it can cause.
///
/// Every router→router hand-off in the model goes through
/// `Router::reserve`, which schedules the head's arrival at the next
/// router no earlier than
/// `now + routing_delay + serialisation(≥ header) + wire_latency`
/// (store-and-forward serialises the whole packet; cut-through at least
/// the header, and every packet is at least `header_bytes` on the wire).
/// Processor↔router traffic never crosses a shard boundary — each node's
/// processor and router live in the same shard — so this bound covers all
/// cross-shard events.
pub fn lookahead(cfg: &NetworkConfig) -> Duration {
    cfg.router.routing_delay
        + cfg.link.wire_latency
        + cfg.link.transfer_time(cfg.router.header_bytes)
}

/// Node-count ceiling for the exact all-pairs block-distance scan.
/// Beyond it [`PairLookahead::compute`] falls back to the (always safe)
/// one-hop floor for every pair rather than spend O(nodes²) at startup.
const EXACT_DISTANCE_NODE_LIMIT: u32 = 4096;

/// The per-shard-*pair* lookahead matrix: `between(j, i)` is a lower
/// bound, in integer picoseconds, on the virtual-time distance between
/// any event executing in shard `j` and the earliest effect it can cause
/// in shard `i` — the minimum topological hop distance between the two
/// contiguous blocks times the per-hop [`lookahead`].
///
/// Every cross-shard effect travels router→router; reaching block `i`
/// from a node `a` of block `j` takes at least `dist(a, block_i)` hops
/// and each hop pays at least the per-hop lookahead, so the bound holds
/// for direct messages, and because topological distance obeys the
/// triangle inequality (`dist(j,i) <= dist(j,k) + dist(k,i)`), it also
/// holds for any multi-shard causal chain. Blocks are disjoint, so every
/// pair is at least one hop apart: `between(j, i) >=` the global
/// [`lookahead`], and the matrix is symmetric because every supported
/// topology's links are bidirectional. See DESIGN.md §17 for the window
/// bound built on top of this.
#[derive(Debug, Clone)]
pub struct PairLookahead {
    k: usize,
    /// Row-major `ps[j * k + i]` = bound from shard `j` to shard `i`.
    /// The diagonal is unused (intra-shard causality is the engine's
    /// job) and stored as the one-hop floor.
    ps: Vec<u64>,
}

impl PairLookahead {
    /// Compute the matrix for `part`'s blocks on `topo` with the given
    /// per-hop lookahead. Cost is O(nodes²) pair scans (closed-form
    /// distances, no BFS); above [`EXACT_DISTANCE_NODE_LIMIT`] nodes it
    /// conservatively uses one hop for every pair, which reduces to the
    /// PR 3 global-lookahead protocol.
    pub fn compute(topo: &Topology, part: &Partition, per_hop: Duration) -> Self {
        let k = part.shards();
        let hop = per_hop.as_ps();
        let mut ps = vec![hop; k * k];
        if topo.nodes() <= EXACT_DISTANCE_NODE_LIMIT {
            for j in 0..k {
                for i in (j + 1)..k {
                    let mut hops = u32::MAX;
                    'scan: for a in part.range(j) {
                        for b in part.range(i) {
                            hops = hops.min(topo.distance(a, b));
                            if hops == 1 {
                                break 'scan; // the floor; no pair is closer
                            }
                        }
                    }
                    let bound = hop.saturating_mul(hops as u64);
                    ps[j * k + i] = bound;
                    ps[i * k + j] = bound;
                }
            }
        }
        PairLookahead { k, ps }
    }

    /// Number of shards the matrix covers.
    pub fn shards(&self) -> usize {
        self.k
    }

    /// Lower bound (ps) on the delay of any effect from shard `from`
    /// reaching shard `to`.
    pub fn between(&self, from: usize, to: usize) -> u64 {
        self.ps[from * self.k + to]
    }

    /// Shard `me`'s conservative window end given every shard's published
    /// promise (`mins[j]`, in raw ps with [`pearl::IDLE_PS`] meaning
    /// idle): the earliest instant at which a cross-shard event could
    /// still arrive. Every future arrival traces causally back to some
    /// event pending *now*: one pending at peer `j` reaches `me` no
    /// earlier than `mins[j] + between(j, me)` (chaining the per-node hop
    /// metric along the real relay path), and one pending at `me` itself
    /// must leave the block and come back, costing at least the minimal
    /// round trip `min over j != me of (between(me, j) + between(j, me))`.
    /// Omitting that self term lets a shard whose own queue head is far
    /// below its peers' outrun the replies to its own sends — peers'
    /// promises cannot cover arrivals the shard is about to cause.
    /// Events strictly before the returned bound can never be preempted
    /// by a not-yet-received message. `u64::MAX` when every shard is idle
    /// and silent — the shard may drain freely.
    pub fn window_end_ps(&self, me: usize, mins: &[u64]) -> u64 {
        debug_assert_eq!(mins.len(), self.k);
        let mut end = u64::MAX;
        let mut rt = u64::MAX;
        for (j, &m) in mins.iter().enumerate() {
            if j == me {
                continue;
            }
            if m != pearl::IDLE_PS {
                end = end.min(m.saturating_add(self.between(j, me)));
            }
            rt = rt.min(self.between(me, j).saturating_add(self.between(j, me)));
        }
        if mins[me] != pearl::IDLE_PS {
            end = end.min(mins[me].saturating_add(rt));
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_blocks_cover_all_nodes_exactly_once() {
        for topo in [
            Topology::Ring(7),
            Topology::Mesh2D { w: 4, h: 3 },
            Topology::Torus2D { w: 4, h: 4 },
            Topology::Hypercube { dim: 4 },
        ] {
            for shards in 1..=9 {
                let p = Partition::contiguous(topo, shards);
                assert!(p.shards() <= shards.max(1));
                assert!(p.shards() >= 1);
                let mut seen = 0u32;
                for s in 0..p.shards() {
                    let r = p.range(s);
                    assert!(!r.is_empty(), "{topo:?} shard {s} empty");
                    for n in r {
                        assert_eq!(p.shard_of(n), s);
                        seen += 1;
                    }
                }
                assert_eq!(seen, topo.nodes());
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        let p = Partition::contiguous(Topology::Ring(10), 4);
        let sizes: Vec<u32> = (0..p.shards()).map(|s| p.range(s).len() as u32).collect();
        assert_eq!(sizes.iter().sum::<u32>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn shard_count_caps_at_node_count() {
        let p = Partition::contiguous(Topology::Ring(3), 8);
        assert_eq!(p.shards(), 3);
    }

    #[test]
    fn local_mask_matches_ranges() {
        let p = Partition::contiguous(Topology::Mesh2D { w: 4, h: 2 }, 3);
        for s in 0..p.shards() {
            let mask = p.local_mask(s);
            for n in 0..p.nodes() {
                assert_eq!(mask[n as usize], p.range(s).contains(&n));
            }
        }
    }

    /// `between` in hop units for a test config whose lookahead is known.
    fn hops(topo: Topology, shards: usize) -> (PairLookahead, u64) {
        let cfg = NetworkConfig::test(topo);
        let la = lookahead(&cfg).as_ps();
        let part = Partition::contiguous(topo, shards);
        (PairLookahead::compute(&topo, &part, lookahead(&cfg)), la)
    }

    #[test]
    fn ring_pair_distances_use_the_wraparound() {
        // Ring(12) in 4 blocks of 3: consecutive blocks touch (1 hop);
        // opposite blocks are separated by a full block — nearest ends
        // are 4 hops apart either way around.
        let (m, la) = hops(Topology::Ring(12), 4);
        for i in 0..4usize {
            let next = (i + 1) % 4;
            let opposite = (i + 2) % 4;
            assert_eq!(m.between(i, next), la, "adjacent blocks are one hop");
            assert_eq!(m.between(i, opposite), 4 * la, "{i} vs {opposite}");
        }
        // The wraparound matters: block 3 and block 0 are adjacent.
        assert_eq!(m.between(3, 0), la);
    }

    #[test]
    fn mesh_pair_distances_have_no_wraparound() {
        // Mesh 4x4 in 4 blocks = one row each. No wraparound: row 0 to
        // row 3 is 3 hops, unlike the torus below.
        let (m, la) = hops(Topology::Mesh2D { w: 4, h: 4 }, 4);
        assert_eq!(m.between(0, 1), la);
        assert_eq!(m.between(0, 2), 2 * la);
        assert_eq!(m.between(0, 3), 3 * la);
        assert_eq!(m.between(1, 3), 2 * la);
    }

    #[test]
    fn torus_pair_distances_wrap_both_ways() {
        // Torus 4x4 in 4 row-blocks: the vertical wraparound makes rows
        // 0 and 3 adjacent, and nothing is further than 2 hops.
        let (m, la) = hops(Topology::Torus2D { w: 4, h: 4 }, 4);
        assert_eq!(m.between(0, 3), la, "vertical wraparound");
        assert_eq!(m.between(0, 2), 2 * la);
        assert_eq!(m.between(1, 3), 2 * la);
    }

    #[test]
    fn hypercube_pair_distances_follow_hamming_weight() {
        // Hypercube dim 3 in 4 blocks of 2: block j = nodes {2j, 2j+1}.
        // dist(a, b) = popcount(a ^ b); blocks {0,1} and {6,7} differ in
        // the two high bits whatever the low bit: 2 hops.
        let (m, la) = hops(Topology::Hypercube { dim: 3 }, 4);
        assert_eq!(m.between(0, 1), la); // 1 ^ 3 = 2, one bit
        assert_eq!(m.between(0, 3), 2 * la); // {0,1} vs {6,7}
        assert_eq!(m.between(1, 2), 2 * la); // {2,3} vs {4,5}
    }

    #[test]
    fn window_end_combines_promises_with_pair_bounds() {
        let (m, la) = hops(Topology::Ring(12), 4);
        // Peers promise 100 (shard 1), 50 (shard 2), idle (shard 3);
        // shard 0 itself is idle, so no self round-trip term applies.
        let mins = [pearl::IDLE_PS, 100, 50, pearl::IDLE_PS];
        assert_eq!(m.window_end_ps(0, &mins), (100 + la).min(50 + 4 * la));
        // All peers idle: a shard with its own events pending is still
        // bounded by the minimal round trip through the nearest peer —
        // its sends can wake an idle peer whose replies come back.
        assert_eq!(
            m.window_end_ps(1, &[pearl::IDLE_PS, 7, pearl::IDLE_PS, pearl::IDLE_PS]),
            7 + 2 * la
        );
        // Everyone idle and silent: unbounded.
        assert_eq!(m.window_end_ps(1, &[pearl::IDLE_PS; 4]), u64::MAX);
    }

    #[test]
    fn window_end_self_round_trip_caps_a_runaway_shard() {
        // Shard 0's own queue head (10) is far below its peers' (1000):
        // replies to what shard 0 is about to send bound its window at
        // head + the minimal round trip, not at the peers' promises.
        let (m, la) = hops(Topology::Ring(12), 4);
        let far = 1_000_000_000;
        let mins = [10, far, far, far];
        let rt = 2 * la; // blocks 0 and 1 (also 0 and 3) are adjacent
        assert_eq!(m.window_end_ps(0, &mins), 10 + rt);
    }

    proptest::proptest! {
        /// Random topology/shard-count draws: the matrix is symmetric and
        /// every pair's bound is at least the global lookahead — in
        /// particular for adjacent pairs, whose bound is exactly one hop.
        #[test]
        fn pair_bounds_are_symmetric_and_at_least_the_global_lookahead(
            pick in 0usize..4,
            size in 2u32..9,
            shards in 2usize..9,
        ) {
            let topo = match pick {
                0 => Topology::Ring(size * 2),
                1 => Topology::Mesh2D { w: size, h: 3 },
                2 => Topology::Torus2D { w: size, h: 4 },
                _ => Topology::Hypercube { dim: 2 + size % 3 },
            };
            let cfg = NetworkConfig::test(topo);
            let la = lookahead(&cfg).as_ps();
            let part = Partition::contiguous(topo, shards);
            let m = PairLookahead::compute(&topo, &part, lookahead(&cfg));
            let k = part.shards();
            proptest::prop_assert_eq!(m.shards(), k);
            for j in 0..k {
                for i in 0..k {
                    proptest::prop_assert_eq!(m.between(j, i), m.between(i, j));
                    proptest::prop_assert!(m.between(j, i) >= la);
                    if i == j { continue; }
                    // The bound is achieved by some concrete node pair.
                    let best = part.range(j)
                        .flat_map(|a| part.range(i).map(move |b| (a, b)))
                        .map(|(a, b)| topo.distance(a, b) as u64 * la)
                        .min()
                        .unwrap();
                    proptest::prop_assert_eq!(m.between(j, i), best);
                }
            }
        }
    }

    #[test]
    fn lookahead_is_positive_for_presets() {
        for cfg in [
            NetworkConfig::test(Topology::Ring(4)),
            NetworkConfig::t805(Topology::Ring(4)),
            NetworkConfig::hw_routed(Topology::Ring(4)),
        ] {
            assert!(lookahead(&cfg) > Duration::ZERO);
        }
    }
}
