//! Topology partitioning and lookahead for sharded simulation.
//!
//! A sharded run splits the machine's nodes into per-thread *shards*. The
//! partition is by contiguous node-id blocks, which follows physical
//! locality on every supported topology: ring neighbours are id-adjacent,
//! and on meshes/tori (`id = y*w + x`) a contiguous block is a band of
//! rows, so most links stay shard-internal. Correctness never depends on
//! the cut — only window width (the *lookahead*) does, and that is a
//! property of the link parameters, not the partition.

use mermaid_ops::NodeId;
use pearl::Duration;

use crate::config::NetworkConfig;
use crate::topology::Topology;

/// A partition of a topology's nodes into contiguous shards.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `starts[s]..starts[s+1]` is shard `s`'s node range.
    starts: Vec<u32>,
    nodes: u32,
}

impl Partition {
    /// Split `topo`'s nodes into (at most) `shards` contiguous blocks of
    /// near-equal size. The shard count is capped at the node count, so
    /// every shard is non-empty.
    pub fn contiguous(topo: Topology, shards: usize) -> Self {
        let nodes = topo.nodes();
        // Clamp in usize *before* narrowing: `(shards as u32)` would wrap a
        // pathological request like `1 << 32` to zero shards.
        let k = shards.clamp(1, nodes as usize) as u32;
        let base = nodes / k;
        let extra = nodes % k; // first `extra` shards get one more node
        let mut starts = Vec::with_capacity(k as usize + 1);
        let mut at = 0;
        for s in 0..k {
            starts.push(at);
            at += base + u32::from(s < extra);
        }
        starts.push(nodes);
        Partition { starts, nodes }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// The node range of shard `s`.
    pub fn range(&self, s: usize) -> std::ops::Range<u32> {
        self.starts[s]..self.starts[s + 1]
    }

    /// Which shard owns `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        debug_assert!(node < self.nodes);
        // Blocks differ in size by at most one, so a direct estimate lands
        // within one shard of the answer; nudge to the owning block.
        let k = self.shards();
        let mut s = ((node as u64 * k as u64) / self.nodes.max(1) as u64) as usize;
        s = s.min(k - 1);
        while node < self.starts[s] {
            s -= 1;
        }
        while node >= self.starts[s + 1] {
            s += 1;
        }
        s
    }

    /// Per-node membership mask for shard `s` (`mask[node]` ⇔ local).
    pub fn local_mask(&self, s: usize) -> Vec<bool> {
        let r = self.range(s);
        (0..self.nodes).map(|n| r.contains(&n)).collect()
    }
}

/// The conservative lookahead of a configuration: a lower bound on the
/// virtual-time distance between a router processing an event and the
/// earliest cross-shard effect it can cause.
///
/// Every router→router hand-off in the model goes through
/// `Router::reserve`, which schedules the head's arrival at the next
/// router no earlier than
/// `now + routing_delay + serialisation(≥ header) + wire_latency`
/// (store-and-forward serialises the whole packet; cut-through at least
/// the header, and every packet is at least `header_bytes` on the wire).
/// Processor↔router traffic never crosses a shard boundary — each node's
/// processor and router live in the same shard — so this bound covers all
/// cross-shard events.
pub fn lookahead(cfg: &NetworkConfig) -> Duration {
    cfg.router.routing_delay
        + cfg.link.wire_latency
        + cfg.link.transfer_time(cfg.router.header_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_blocks_cover_all_nodes_exactly_once() {
        for topo in [
            Topology::Ring(7),
            Topology::Mesh2D { w: 4, h: 3 },
            Topology::Torus2D { w: 4, h: 4 },
            Topology::Hypercube { dim: 4 },
        ] {
            for shards in 1..=9 {
                let p = Partition::contiguous(topo, shards);
                assert!(p.shards() <= shards.max(1));
                assert!(p.shards() >= 1);
                let mut seen = 0u32;
                for s in 0..p.shards() {
                    let r = p.range(s);
                    assert!(!r.is_empty(), "{topo:?} shard {s} empty");
                    for n in r {
                        assert_eq!(p.shard_of(n), s);
                        seen += 1;
                    }
                }
                assert_eq!(seen, topo.nodes());
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        let p = Partition::contiguous(Topology::Ring(10), 4);
        let sizes: Vec<u32> = (0..p.shards()).map(|s| p.range(s).len() as u32).collect();
        assert_eq!(sizes.iter().sum::<u32>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn shard_count_caps_at_node_count() {
        let p = Partition::contiguous(Topology::Ring(3), 8);
        assert_eq!(p.shards(), 3);
    }

    #[test]
    fn local_mask_matches_ranges() {
        let p = Partition::contiguous(Topology::Mesh2D { w: 4, h: 2 }, 3);
        for s in 0..p.shards() {
            let mask = p.local_mask(s);
            for n in 0..p.nodes() {
                assert_eq!(mask[n as usize], p.range(s).contains(&n));
            }
        }
    }

    #[test]
    fn lookahead_is_positive_for_presets() {
        for cfg in [
            NetworkConfig::test(Topology::Ring(4)),
            NetworkConfig::t805(Topology::Ring(4)),
            NetworkConfig::hw_routed(Topology::Ring(4)),
        ] {
            assert!(lookahead(&cfg) > Duration::ZERO);
        }
    }
}
