//! `mermaid-snapshot-v1` — versioned, bit-identical simulation
//! checkpoints (DESIGN.md §16).
//!
//! A snapshot captures the *complete* mutable state of a communication
//! simulation at one virtual instant `T`: the pearl engine clock and
//! per-component key counters, every pending event with its exact
//! [`pearl::EventKey`] (so same-instant delivery order survives the round
//! trip), each router's link/fault/stats state, each abstract processor's
//! protocol state (outstanding retries, reassembly buffers, rendezvous
//! channels, histograms), and — optionally — the attribution sink's
//! accumulated evidence. A run checkpointed at `T` and restored produces
//! **byte-identical** results, stats, probe streams and
//! `attribution.json` versus the uninterrupted run; the conformance
//! suite (`tests/checkpoint_conformance.rs`) enforces exactly that.
//!
//! # Format
//!
//! The file is line-oriented text, integers only (like every other
//! machine-readable artifact of the workbench — byte comparison is
//! meaningful across platforms):
//!
//! ```text
//! mermaid-snapshot-v1 schema=1 config=<16hex> nodes=<n> time=<ps> body=<16hex>
//! engine <events_processed>
//! keys <counter 0> … <counter 2n-1>
//! event <time_ps> <push_ps> <key_src> <key_seq> <src> <dst> <payload ints…>
//! router <node> <state ints…>
//! proc <node> <state ints…>
//! attr <state ints…>
//! end
//! ```
//!
//! * `config` is the campaign-layer FNV-1a-64 hash of the canonical run
//!   description: a checkpoint can only be restored into a simulation
//!   built from the *same* machine/topology/app/pattern/seed/fault
//!   parameters. A mismatch is refused, never silently absorbed.
//! * `body` is the FNV-1a-64 hash of every byte after the header line.
//!   A torn or truncated file (a checkpoint interrupted mid-write) is
//!   detected and reported, never silently restored.
//! * `event` records are sorted by `(time, key)` — the queue's delivery
//!   order — so the file is canonical: capturing the same state twice,
//!   or composing per-shard captures of a sharded run, yields the same
//!   bytes. Ladder geometry (which tier an event happens to sit in) is
//!   deliberately *not* captured; the queue rebuilds it on restore, and
//!   only engine-internal probe events can observe the difference.
//! * `end` guards against truncation that happens to preserve the body
//!   hash line count.
//!
//! # Versioning contract
//!
//! `schema=1` names the meaning of every record above. Any change to a
//! component's integer layout, the event codec, or the header fields is
//! a new schema number; readers refuse unknown schemas with an error
//! naming both versions rather than misinterpreting state. The golden
//! header fixtures under `tests/golden/` pin the v1 surface.

use std::fmt;
use std::path::Path;

use pearl::{CompId, EventKey, PendingEvent, Time};

use crate::fault::FaultKind;
use crate::packet::{MsgId, NetMsg, Packet, PacketKind, PathDecomp, Train};

/// Magic first token of every snapshot file.
pub const SNAPSHOT_MAGIC: &str = "mermaid-snapshot-v1";

/// Schema version this build writes and reads.
pub const SNAPSHOT_SCHEMA: u64 = 1;

/// FNV-1a-64 over `bytes` — the same hash (same constants) the campaign
/// layer uses for config identity, duplicated here because the network
/// crate sits below the campaign layer.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a snapshot could not be written, parsed or restored. Every
/// variant renders an actionable message naming the offending field —
/// mirroring the CLI's output-file error style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure reading or writing the snapshot.
    Io {
        /// What we were doing ("read" / "write").
        verb: &'static str,
        /// The path involved.
        path: String,
        /// The underlying failure, already formatted.
        detail: String,
    },
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// First token actually found (truncated for display).
        found: String,
    },
    /// The header's `schema=` field names a version this build cannot read.
    SchemaMismatch {
        /// Version found in the file.
        found: u64,
    },
    /// The header's `config=` hash does not match the run being restored.
    ConfigMismatch {
        /// Hash recorded in the snapshot.
        found: String,
        /// Hash of the run attempting the restore.
        expected: String,
    },
    /// The snapshot's node count does not match the configured topology.
    NodesMismatch {
        /// Node count recorded in the snapshot.
        found: u32,
        /// Node count of the configured topology.
        expected: u32,
    },
    /// The body hash does not match the header — torn or truncated file.
    Torn {
        /// Hash recorded in the header.
        expected: String,
        /// Hash of the bytes actually present.
        found: String,
    },
    /// A record failed to decode.
    Parse {
        /// Where in the file or which record ("line 12", "router 3 record").
        context: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { verb, path, detail } => {
                write!(f, "cannot {verb} snapshot {path}: {detail}")
            }
            SnapshotError::BadMagic { found } => write!(
                f,
                "not a mermaid snapshot: file starts with `{found}`, expected `{SNAPSHOT_MAGIC}`"
            ),
            SnapshotError::SchemaMismatch { found } => write!(
                f,
                "snapshot field `schema` is version {found}, this build reads version \
                 {SNAPSHOT_SCHEMA}: re-create the checkpoint with this build"
            ),
            SnapshotError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot field `config` is {found}, this run hashes to {expected}: a \
                 checkpoint binds to the exact run parameters — restore it with the same \
                 machine/topology/app/pattern/seed/fault flags it was captured under"
            ),
            SnapshotError::NodesMismatch { found, expected } => write!(
                f,
                "snapshot field `nodes` is {found}, the configured topology has {expected} \
                 node(s): restore with the topology the checkpoint was captured under"
            ),
            SnapshotError::Torn { expected, found } => write!(
                f,
                "snapshot field `body` is {expected} but the body present hashes to {found}: \
                 the file is torn or truncated (checkpoint interrupted mid-write) — delete it \
                 and restore from an earlier checkpoint or restart the run"
            ),
            SnapshotError::Parse { context, detail } => {
                write!(f, "corrupt snapshot ({context}): {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Sequential reader over a record's integers, erroring (with the name
/// of the missing field) instead of panicking on truncated input.
pub(crate) struct IntReader<'a> {
    data: &'a [u64],
    pos: usize,
}

impl<'a> IntReader<'a> {
    pub fn new(data: &'a [u64]) -> Self {
        IntReader { data, pos: 0 }
    }

    /// Next integer, or an error naming `what` was expected.
    pub fn take(&mut self, what: &str) -> Result<u64, String> {
        match self.data.get(self.pos) {
            Some(&v) => {
                self.pos += 1;
                Ok(v)
            }
            None => Err(format!("record ends where {what} was expected")),
        }
    }

    /// Next `len` integers as a slice.
    pub fn take_slice(&mut self, len: usize, what: &str) -> Result<&'a [u64], String> {
        if self.pos + len > self.data.len() {
            return Err(format!(
                "record ends inside {what} ({} of {len} integer(s) present)",
                self.data.len() - self.pos
            ));
        }
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// Assert the record was consumed exactly.
    pub fn finish(&self, what: &str) -> Result<(), String> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing integer(s) after {what}",
                self.data.len() - self.pos
            ))
        }
    }
}

/// `PacketKind` → `(tag, argument)`.
pub(crate) fn packet_kind_to_ints(kind: PacketKind) -> (u64, u64) {
    match kind {
        PacketKind::Data { sync } => (0, sync as u64),
        PacketKind::Ack => (1, 0),
        PacketKind::OneWay => (2, 0),
        PacketKind::GetRequest { bytes } => (3, bytes as u64),
        PacketKind::GetReply => (4, 0),
    }
}

/// `(tag, argument)` → `PacketKind`.
pub(crate) fn packet_kind_from_ints(tag: u64, arg: u64) -> Result<PacketKind, String> {
    Ok(match tag {
        0 => PacketKind::Data { sync: arg != 0 },
        1 => PacketKind::Ack,
        2 => PacketKind::OneWay,
        3 => PacketKind::GetRequest { bytes: arg as u32 },
        4 => PacketKind::GetReply,
        t => return Err(format!("unknown packet kind tag {t}")),
    })
}

/// Flatten one packet: 17 integers, field for field.
fn packet_to_ints(p: &Packet, out: &mut Vec<u64>) {
    let (ktag, karg) = packet_kind_to_ints(p.kind);
    out.extend([
        p.msg.src as u64,
        p.msg.seq,
        p.dst as u64,
        p.index as u64,
        p.count as u64,
        p.payload as u64,
        p.msg_bytes as u64,
        ktag,
        karg,
        p.sent_at.as_ps(),
        p.attempt as u64,
        p.corrupted as u64,
        p.path.pre_ps,
        p.path.queue_ps,
        p.path.route_ps,
        p.path.ser_ps,
        p.path.wire_ps,
    ]);
}

fn packet_from_ints(r: &mut IntReader<'_>) -> Result<Packet, String> {
    let v = r.take_slice(17, "a packet (17 integers)")?;
    Ok(Packet {
        msg: MsgId {
            src: v[0] as u32,
            seq: v[1],
        },
        dst: v[2] as u32,
        index: v[3] as u32,
        count: v[4] as u32,
        payload: v[5] as u32,
        msg_bytes: v[6] as u32,
        kind: packet_kind_from_ints(v[7], v[8])?,
        sent_at: Time::from_ps(v[9]),
        attempt: v[10] as u32,
        corrupted: v[11] != 0,
        path: PathDecomp {
            pre_ps: v[12],
            queue_ps: v[13],
            route_ps: v[14],
            ser_ps: v[15],
            wire_ps: v[16],
        },
    })
}

fn fault_to_ints(k: FaultKind, out: &mut Vec<u64>) {
    match k {
        FaultKind::LinkDown { from, to } => out.extend([0, from as u64, to as u64]),
        FaultKind::LinkUp { from, to } => out.extend([1, from as u64, to as u64]),
        FaultKind::RouterDown { node } => out.extend([2, node as u64, 0]),
        FaultKind::RouterUp { node } => out.extend([3, node as u64, 0]),
    }
}

fn fault_from_ints(r: &mut IntReader<'_>) -> Result<FaultKind, String> {
    let v = r.take_slice(3, "a fault event (3 integers)")?;
    Ok(match v[0] {
        0 => FaultKind::LinkDown {
            from: v[1] as u32,
            to: v[2] as u32,
        },
        1 => FaultKind::LinkUp {
            from: v[1] as u32,
            to: v[2] as u32,
        },
        2 => FaultKind::RouterDown { node: v[1] as u32 },
        3 => FaultKind::RouterUp { node: v[1] as u32 },
        t => return Err(format!("unknown fault kind tag {t}")),
    })
}

/// Flatten one event payload (variant tag, then its fields).
pub(crate) fn msg_to_ints(m: &NetMsg, out: &mut Vec<u64>) {
    match *m {
        NetMsg::Resume => out.push(0),
        NetMsg::Inject(ref p) => {
            out.push(1);
            packet_to_ints(p, out);
        }
        NetMsg::InjectTrain(ref t) => {
            out.push(2);
            packet_to_ints(&t.first, out);
            out.push(t.len as u64);
        }
        NetMsg::Forward(ref p) => {
            out.push(3);
            packet_to_ints(p, out);
        }
        NetMsg::ForwardTrain(ref t) => {
            out.push(4);
            packet_to_ints(&t.first, out);
            out.push(t.len as u64);
        }
        NetMsg::Deliver(ref p) => {
            out.push(5);
            packet_to_ints(p, out);
        }
        NetMsg::DeliverTrain(ref t) => {
            out.push(6);
            packet_to_ints(&t.first, out);
            out.push(t.len as u64);
        }
        NetMsg::Fault(k) => {
            out.push(7);
            fault_to_ints(k, out);
        }
        NetMsg::RetryCheck(id) => out.extend([8, id.src as u64, id.seq]),
        NetMsg::RecvDeadline { epoch } => out.extend([9, epoch]),
    }
}

pub(crate) fn msg_from_ints(r: &mut IntReader<'_>) -> Result<NetMsg, String> {
    let train = |r: &mut IntReader<'_>| -> Result<Train, String> {
        let first = packet_from_ints(r)?;
        let len = r.take("train length")?;
        Ok(Train {
            first,
            len: len as u32,
        })
    };
    Ok(match r.take("event payload tag")? {
        0 => NetMsg::Resume,
        1 => NetMsg::Inject(packet_from_ints(r)?),
        2 => NetMsg::InjectTrain(train(r)?),
        3 => NetMsg::Forward(packet_from_ints(r)?),
        4 => NetMsg::ForwardTrain(train(r)?),
        5 => NetMsg::Deliver(packet_from_ints(r)?),
        6 => NetMsg::DeliverTrain(train(r)?),
        7 => NetMsg::Fault(fault_from_ints(r)?),
        8 => NetMsg::RetryCheck(MsgId {
            src: r.take("retry-check source")? as u32,
            seq: r.take("retry-check sequence")?,
        }),
        9 => NetMsg::RecvDeadline {
            epoch: r.take("receive-deadline epoch")?,
        },
        t => return Err(format!("unknown event payload tag {t}")),
    })
}

/// The complete captured state of one simulation at instant `time`.
///
/// Invariants a valid snapshot upholds (asserted at capture, verified on
/// restore): every pending event's time is `>= time`, `key_counters` has
/// `2 * nodes` entries, and the `routers`/`procs` slabs hold one record
/// per node. Per-shard captures of a sharded run compose (see
/// [`Snapshot::compose`]) into the *same* snapshot a serial capture at
/// the same instant produces — the file is mode-independent.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Campaign-layer config hash of the run (16 lowercase hex digits).
    pub config_hash: String,
    /// Node count of the simulated machine.
    pub nodes: u32,
    /// The checkpoint instant: every event strictly before `time` has
    /// been processed, every pending event is at or after it.
    pub time: Time,
    /// Engine deliveries performed before `time`.
    pub events_processed: u64,
    /// Per-component event-key counters (`2 * nodes` entries).
    pub key_counters: Vec<u64>,
    /// Pending events sorted by `(time, key)`.
    pub events: Vec<PendingEvent<NetMsg>>,
    /// Per-node router state, node order.
    pub routers: Vec<Vec<u64>>,
    /// Per-node processor state, node order.
    pub procs: Vec<Vec<u64>>,
    /// Attribution-sink state, when the run carries an attribution probe.
    pub attribution: Option<Vec<u64>>,
}

impl Snapshot {
    /// Render the snapshot file (header, body, `end` marker).
    pub fn to_file_string(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("engine {}\n", self.events_processed));
        body.push_str("keys");
        for c in &self.key_counters {
            body.push_str(&format!(" {c}"));
        }
        body.push('\n');
        for (t, key, src, dst, payload) in &self.events {
            let mut ints = Vec::new();
            msg_to_ints(payload, &mut ints);
            body.push_str(&format!(
                "event {} {} {} {} {} {}",
                t.as_ps(),
                key.push_ps,
                key.src,
                key.seq,
                src,
                dst
            ));
            for i in ints {
                body.push_str(&format!(" {i}"));
            }
            body.push('\n');
        }
        for (label, slab) in [("router", &self.routers), ("proc", &self.procs)] {
            for (node, ints) in slab.iter().enumerate() {
                body.push_str(&format!("{label} {node}"));
                for i in ints {
                    body.push_str(&format!(" {i}"));
                }
                body.push('\n');
            }
        }
        if let Some(attr) = &self.attribution {
            body.push_str("attr");
            for i in attr {
                body.push_str(&format!(" {i}"));
            }
            body.push('\n');
        }
        body.push_str("end\n");
        format!(
            "{SNAPSHOT_MAGIC} schema={SNAPSHOT_SCHEMA} config={} nodes={} time={} body={:016x}\n{body}",
            self.config_hash,
            self.nodes,
            self.time.as_ps(),
            fnv1a64(body.as_bytes()),
        )
    }

    /// Parse a snapshot file, verifying magic, schema and body hash.
    /// Config and node-count checks happen at restore time, when the
    /// expected values are known.
    pub fn parse(text: &str) -> Result<Snapshot, SnapshotError> {
        let (header, body) = match text.split_once('\n') {
            Some(p) => p,
            None => {
                return Err(SnapshotError::BadMagic {
                    found: preview(text),
                })
            }
        };
        let mut fields = header.split_ascii_whitespace();
        if fields.next() != Some(SNAPSHOT_MAGIC) {
            return Err(SnapshotError::BadMagic {
                found: preview(header),
            });
        }
        let mut schema = None;
        let mut config = None;
        let mut nodes = None;
        let mut time = None;
        let mut body_hash = None;
        for f in fields {
            let (k, v) = f.split_once('=').ok_or_else(|| SnapshotError::Parse {
                context: "header".into(),
                detail: format!("field `{f}` is not key=value"),
            })?;
            let bad = |detail: String| SnapshotError::Parse {
                context: "header".into(),
                detail,
            };
            match k {
                "schema" => {
                    schema = Some(v.parse::<u64>().map_err(|_| {
                        bad(format!("field `schema` value `{v}` is not an integer"))
                    })?)
                }
                "config" => config = Some(v.to_string()),
                "nodes" => {
                    nodes =
                        Some(v.parse::<u32>().map_err(|_| {
                            bad(format!("field `nodes` value `{v}` is not an integer"))
                        })?)
                }
                "time" => {
                    time =
                        Some(v.parse::<u64>().map_err(|_| {
                            bad(format!("field `time` value `{v}` is not an integer"))
                        })?)
                }
                "body" => body_hash = Some(v.to_string()),
                _ => {
                    return Err(bad(format!("unknown header field `{k}`")));
                }
            }
        }
        let missing = |name: &str| SnapshotError::Parse {
            context: "header".into(),
            detail: format!("field `{name}` is missing"),
        };
        let schema = schema.ok_or_else(|| missing("schema"))?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(SnapshotError::SchemaMismatch { found: schema });
        }
        let config_hash = config.ok_or_else(|| missing("config"))?;
        let nodes = nodes.ok_or_else(|| missing("nodes"))?;
        let time = Time::from_ps(time.ok_or_else(|| missing("time"))?);
        let expected_body = body_hash.ok_or_else(|| missing("body"))?;
        let actual_body = format!("{:016x}", fnv1a64(body.as_bytes()));
        if actual_body != expected_body {
            return Err(SnapshotError::Torn {
                expected: expected_body,
                found: actual_body,
            });
        }

        let mut snap = Snapshot {
            config_hash,
            nodes,
            time,
            events_processed: 0,
            key_counters: Vec::new(),
            events: Vec::new(),
            routers: vec![Vec::new(); nodes as usize],
            procs: vec![Vec::new(); nodes as usize],
            attribution: None,
        };
        let mut seen_engine = false;
        let mut seen_end = false;
        for (i, line) in body.lines().enumerate() {
            let ctx = || format!("line {}", i + 2);
            let perr = |detail: String| SnapshotError::Parse {
                context: ctx(),
                detail,
            };
            if seen_end {
                return Err(perr("record after the `end` marker".into()));
            }
            let mut toks = line.split_ascii_whitespace();
            let tag = match toks.next() {
                Some(t) => t,
                None => return Err(perr("empty record".into())),
            };
            if tag == "end" {
                seen_end = true;
                continue;
            }
            let ints: Vec<u64> = {
                let mut v = Vec::new();
                for t in toks {
                    v.push(t.parse::<u64>().map_err(|_| {
                        perr(format!("`{t}` in a `{tag}` record is not an integer"))
                    })?);
                }
                v
            };
            match tag {
                "engine" => {
                    if ints.len() != 1 {
                        return Err(perr("an `engine` record holds exactly one integer".into()));
                    }
                    snap.events_processed = ints[0];
                    seen_engine = true;
                }
                "keys" => {
                    if ints.len() != 2 * nodes as usize {
                        return Err(perr(format!(
                            "a `keys` record holds 2×nodes = {} counters, found {}",
                            2 * nodes,
                            ints.len()
                        )));
                    }
                    snap.key_counters = ints;
                }
                "event" => {
                    let mut r = IntReader::new(&ints);
                    let head = r
                        .take_slice(6, "event header (6 integers)")
                        .map_err(&perr)?;
                    let (t, push_ps, key_src, key_seq, src, dst) =
                        (head[0], head[1], head[2], head[3], head[4], head[5]);
                    let payload = msg_from_ints(&mut r).map_err(&perr)?;
                    r.finish("the event payload").map_err(&perr)?;
                    snap.events.push((
                        Time::from_ps(t),
                        EventKey {
                            push_ps,
                            src: key_src as u32,
                            seq: key_seq,
                        },
                        src as CompId,
                        dst as CompId,
                        payload,
                    ));
                }
                "router" | "proc" => {
                    let node = *ints
                        .first()
                        .ok_or_else(|| perr(format!("a `{tag}` record needs a node id")))?
                        as usize;
                    if node >= nodes as usize {
                        return Err(perr(format!(
                            "`{tag}` record for node {node}, but the snapshot has {nodes} node(s)"
                        )));
                    }
                    let slot = if tag == "router" {
                        &mut snap.routers[node]
                    } else {
                        &mut snap.procs[node]
                    };
                    if !slot.is_empty() {
                        return Err(perr(format!("duplicate `{tag}` record for node {node}")));
                    }
                    *slot = ints[1..].to_vec();
                    if slot.is_empty() {
                        return Err(perr(format!("empty `{tag}` record for node {node}")));
                    }
                }
                "attr" => {
                    if snap.attribution.is_some() {
                        return Err(perr("duplicate `attr` record".into()));
                    }
                    snap.attribution = Some(ints);
                }
                other => {
                    return Err(perr(format!("unknown record tag `{other}`")));
                }
            }
        }
        if !seen_end {
            return Err(SnapshotError::Parse {
                context: "end of file".into(),
                detail: "missing `end` marker — the file is truncated".into(),
            });
        }
        if !seen_engine {
            return Err(SnapshotError::Parse {
                context: "body".into(),
                detail: "missing `engine` record".into(),
            });
        }
        if snap.key_counters.len() != 2 * nodes as usize {
            return Err(SnapshotError::Parse {
                context: "body".into(),
                detail: "missing `keys` record".into(),
            });
        }
        for node in 0..nodes as usize {
            if snap.routers[node].is_empty() {
                return Err(SnapshotError::Parse {
                    context: "body".into(),
                    detail: format!("missing `router` record for node {node}"),
                });
            }
            if snap.procs[node].is_empty() {
                return Err(SnapshotError::Parse {
                    context: "body".into(),
                    detail: format!("missing `proc` record for node {node}"),
                });
            }
        }
        Ok(snap)
    }

    /// Write the snapshot atomically: render to a sibling temp file, then
    /// rename over `path`. A reader can therefore never observe a
    /// half-written snapshot under the final name; an interrupted write
    /// leaves at most a stale `.tmp` file behind.
    pub fn write_file(&self, path: &Path) -> Result<(), SnapshotError> {
        let io = |detail: String| SnapshotError::Io {
            verb: "write",
            path: path.display().to_string(),
            detail,
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() && !dir.is_dir() {
                return Err(io(format!(
                    "checkpoint directory `{}` does not exist (create it first)",
                    dir.display()
                )));
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_file_string()).map_err(|e| io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| io(e.to_string()))
    }

    /// Read and parse a snapshot file.
    pub fn read_file(path: &Path) -> Result<Snapshot, SnapshotError> {
        let text = std::fs::read_to_string(path).map_err(|e| SnapshotError::Io {
            verb: "read",
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Snapshot::parse(&text)
    }

    /// Refuse a config-hash mismatch with an error naming both hashes.
    pub fn verify_config(&self, expected: &str) -> Result<(), SnapshotError> {
        if self.config_hash == expected {
            Ok(())
        } else {
            Err(SnapshotError::ConfigMismatch {
                found: self.config_hash.clone(),
                expected: expected.to_string(),
            })
        }
    }

    /// Compose per-shard captures (contiguous node slices, DESIGN.md §15)
    /// into the full snapshot a serial capture at the same instant would
    /// produce. Each piece carries its owned nodes' component records and
    /// key counters plus its engine's pending events and delivery count;
    /// the union is sorted into canonical `(time, key)` order and the
    /// delivery counts summed.
    pub fn compose(pieces: Vec<ShardPiece>) -> Snapshot {
        assert!(!pieces.is_empty(), "composing zero shard pieces");
        let config_hash = pieces[0].config_hash.clone();
        let nodes = pieces[0].nodes;
        let time = pieces[0].time;
        let n = nodes as usize;
        let mut snap = Snapshot {
            config_hash,
            nodes,
            time,
            events_processed: 0,
            key_counters: vec![0; 2 * n],
            events: Vec::new(),
            routers: vec![Vec::new(); n],
            procs: vec![Vec::new(); n],
            attribution: None,
        };
        for p in pieces {
            assert_eq!(p.nodes, nodes, "shard pieces disagree on node count");
            assert_eq!(p.time, time, "shard pieces disagree on the instant");
            snap.events_processed += p.events_processed;
            snap.events.extend(p.events);
            for (i, (router, proc)) in p.routers.into_iter().zip(p.procs).enumerate() {
                let node = p.base as usize + i;
                // The owner's counters are authoritative for its nodes:
                // only the owning shard ever allocates keys for them.
                snap.key_counters[node] = p.key_counters[node];
                snap.key_counters[n + node] = p.key_counters[n + node];
                snap.routers[node] = router;
                snap.procs[node] = proc;
            }
        }
        snap.events.sort_by_key(|a| (a.0, a.1));
        snap
    }
}

fn preview(s: &str) -> String {
    let head: String = s.chars().take(32).collect();
    head.split_whitespace().next().unwrap_or("").to_string()
}

/// One shard's contribution to a composed snapshot (see
/// [`Snapshot::compose`]).
pub struct ShardPiece {
    /// Campaign-layer config hash (identical across pieces).
    pub config_hash: String,
    /// Total node count (identical across pieces).
    pub nodes: u32,
    /// First node this shard owns.
    pub base: u32,
    /// The capture instant (identical across pieces).
    pub time: Time,
    /// Deliveries this shard's engine performed.
    pub events_processed: u64,
    /// The shard engine's full-length key-counter vector (only owned
    /// nodes' entries are meaningful).
    pub key_counters: Vec<u64>,
    /// Pending events of this shard's queue (all addressed to owned
    /// components).
    pub events: Vec<PendingEvent<NetMsg>>,
    /// Router records for owned nodes, in node order.
    pub routers: Vec<Vec<u64>>,
    /// Processor records for owned nodes, in node order.
    pub procs: Vec<Vec<u64>>,
}

/// Capture one engine's contribution to a snapshot at instant `at`: the
/// whole machine in a serial run, the owned node range in a shard. Every
/// event strictly before `at` must have been processed and every pending
/// event must be at or after it — asserted, because a capture violating
/// that could never restore bit-identically.
pub(crate) fn capture_piece(
    engine: &pearl::Engine<NetMsg, crate::world::NetWorld>,
    config_hash: &str,
    at: Time,
) -> ShardPiece {
    assert!(
        engine.now() <= at,
        "capture instant {at} lies before the engine clock {}",
        engine.now()
    );
    let events = engine.snapshot_pending();
    for (t, ..) in &events {
        assert!(
            *t >= at,
            "pending event at {t} predates the capture instant {at}"
        );
    }
    let world = engine.world();
    let (base, owned) = (world.base(), world.owned());
    let mut routers = Vec::with_capacity(owned as usize);
    let mut procs = Vec::with_capacity(owned as usize);
    for i in 0..owned {
        let node = base + i;
        let mut r = Vec::new();
        world.router(node).snapshot_ints(&mut r);
        routers.push(r);
        let mut p = Vec::new();
        world.proc(node).snapshot_ints(&mut p);
        procs.push(p);
    }
    ShardPiece {
        config_hash: config_hash.to_string(),
        // The component id space is always `2 * nodes`, whole or shard.
        nodes: (engine.component_count() / 2) as u32,
        base,
        time: at,
        events_processed: engine.events_processed(),
        key_counters: engine.key_counters().to_vec(),
        events,
        routers,
        procs,
    }
}

/// Overlay a snapshot onto a freshly built engine: replace the queue,
/// clock and key counters wholesale (keeping only events addressed to
/// components this engine's world owns) and restore the owned router and
/// processor slabs. `events_base` is this engine's share of the
/// snapshot's delivery count — the full count serially; in a sharded
/// restore shard 0 carries it and the merge sums the rest.
pub(crate) fn restore_engine(
    engine: &mut pearl::Engine<NetMsg, crate::world::NetWorld>,
    snap: &Snapshot,
    events_base: u64,
) -> Result<(), SnapshotError> {
    let n = snap.nodes;
    let (base, owned) = {
        let w = engine.world();
        (w.base(), w.owned())
    };
    let owns = |comp: CompId| {
        let node = if (comp as u32) < n {
            comp as u32
        } else {
            comp as u32 - n
        };
        node >= base && node < base + owned
    };
    let events: Vec<_> = snap
        .events
        .iter()
        .filter(|&&(_, _, _, dst, _)| owns(dst))
        .cloned()
        .collect();
    engine.restore(snap.time, events_base, snap.key_counters.clone(), events);
    let world = engine.world_mut();
    for i in 0..owned {
        let node = base + i;
        let record = |what: &str, detail: String| SnapshotError::Parse {
            context: format!("{what} {node} record"),
            detail,
        };
        let mut r = IntReader::new(&snap.routers[node as usize]);
        world
            .router_mut(node)
            .restore_ints(&mut r)
            .and_then(|()| r.finish("the router state"))
            .map_err(|d| record("router", d))?;
        let mut r = IntReader::new(&snap.procs[node as usize]);
        world
            .proc_mut(node)
            .restore_ints(&mut r)
            .and_then(|()| r.finish("the processor state"))
            .map_err(|d| record("proc", d))?;
    }
    Ok(())
}

/// In-memory image of one shard engine's complete mutable state: clock,
/// delivery count, key counters, pending queue, and the owned routers' and
/// processors' integer slabs. This is the speculation rollback primitive
/// (DESIGN.md §17): a shard saves its state before running past its proven
/// window bound and loads it back if a message lands inside the speculated
/// region. Unlike [`ShardPiece`] it never leaves the process, so it needs
/// no versioning, hashing, or ownership filtering.
pub(crate) struct EngineState {
    now: Time,
    events_processed: u64,
    key_counters: Vec<u64>,
    events: Vec<PendingEvent<NetMsg>>,
    /// Indexed by local offset (`0..owned`), not global node id.
    routers: Vec<Vec<u64>>,
    procs: Vec<Vec<u64>>,
}

/// Capture the engine's current state for a possible in-process rewind.
pub(crate) fn save_engine_state(
    engine: &pearl::Engine<NetMsg, crate::world::NetWorld>,
) -> EngineState {
    let world = engine.world();
    let (base, owned) = (world.base(), world.owned());
    let mut routers = Vec::with_capacity(owned as usize);
    let mut procs = Vec::with_capacity(owned as usize);
    for i in 0..owned {
        let node = base + i;
        let mut r = Vec::new();
        world.router(node).snapshot_ints(&mut r);
        routers.push(r);
        let mut p = Vec::new();
        world.proc(node).snapshot_ints(&mut p);
        procs.push(p);
    }
    EngineState {
        now: engine.now(),
        events_processed: engine.events_processed(),
        key_counters: engine.key_counters().to_vec(),
        events: engine.snapshot_pending(),
        routers,
        procs,
    }
}

/// Rewind the engine to a state previously captured by
/// [`save_engine_state`] *from the same engine*. The queue is replaced
/// wholesale — cross-shard messages received after the capture are gone
/// and must be re-posted by the caller from its own receive log.
pub(crate) fn load_engine_state(
    engine: &mut pearl::Engine<NetMsg, crate::world::NetWorld>,
    state: &EngineState,
) {
    engine.restore(
        state.now,
        state.events_processed,
        state.key_counters.clone(),
        state.events.clone(),
    );
    let (base, owned) = {
        let w = engine.world();
        (w.base(), w.owned())
    };
    debug_assert_eq!(owned as usize, state.routers.len());
    let world = engine.world_mut();
    for i in 0..owned {
        let node = base + i;
        let mut r = IntReader::new(&state.routers[i as usize]);
        world
            .router_mut(node)
            .restore_ints(&mut r)
            .and_then(|()| r.finish("the router state"))
            .expect("a self-captured router state always restores");
        let mut p = IntReader::new(&state.procs[i as usize]);
        world
            .proc_mut(node)
            .restore_ints(&mut p)
            .and_then(|()| p.finish("the processor state"))
            .expect("a self-captured processor state always restores");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> Snapshot {
        let pkt = Packet {
            msg: MsgId { src: 0, seq: 3 },
            dst: 1,
            index: 0,
            count: 2,
            payload: 1024,
            msg_bytes: 1500,
            kind: PacketKind::Data { sync: true },
            sent_at: Time::from_ps(500),
            attempt: 1,
            corrupted: false,
            path: PathDecomp {
                pre_ps: 1,
                queue_ps: 2,
                route_ps: 3,
                ser_ps: 4,
                wire_ps: 5,
            },
        };
        Snapshot {
            config_hash: "0123456789abcdef".into(),
            nodes: 2,
            time: Time::from_ps(1_000),
            events_processed: 42,
            key_counters: vec![1, 2, 3, 4],
            events: vec![
                (
                    Time::from_ps(1_000),
                    EventKey {
                        push_ps: 900,
                        src: 0,
                        seq: 7,
                    },
                    0,
                    1,
                    NetMsg::Forward(pkt),
                ),
                (
                    Time::from_ps(2_000),
                    EventKey {
                        push_ps: 950,
                        src: 2,
                        seq: 0,
                    },
                    2,
                    3,
                    NetMsg::RecvDeadline { epoch: 9 },
                ),
            ],
            routers: vec![vec![10, 11], vec![12]],
            procs: vec![vec![20], vec![21, 22, 23]],
            attribution: Some(vec![5, 6, 7]),
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        let snap = tiny_snapshot();
        let text = snap.to_file_string();
        let back = Snapshot::parse(&text).expect("parses");
        assert_eq!(
            back.to_file_string(),
            text,
            "canonical form is a fixed point"
        );
        assert_eq!(back.config_hash, snap.config_hash);
        assert_eq!(back.events_processed, 42);
        assert_eq!(back.key_counters, vec![1, 2, 3, 4]);
        assert_eq!(back.events.len(), 2);
        assert_eq!(back.events[0].1.seq, 7);
        assert_eq!(back.routers, snap.routers);
        assert_eq!(back.procs, snap.procs);
        assert_eq!(back.attribution, Some(vec![5, 6, 7]));
    }

    #[test]
    fn every_payload_variant_round_trips() {
        let pkt = tiny_snapshot().events[0].4;
        let pkt = match pkt {
            NetMsg::Forward(p) => p,
            _ => unreachable!(),
        };
        let msgs = [
            NetMsg::Resume,
            NetMsg::Inject(pkt),
            NetMsg::InjectTrain(Train { first: pkt, len: 3 }),
            NetMsg::Forward(pkt),
            NetMsg::ForwardTrain(Train { first: pkt, len: 2 }),
            NetMsg::Deliver(pkt),
            NetMsg::DeliverTrain(Train { first: pkt, len: 5 }),
            NetMsg::Fault(FaultKind::LinkDown { from: 1, to: 2 }),
            NetMsg::Fault(FaultKind::LinkUp { from: 2, to: 1 }),
            NetMsg::Fault(FaultKind::RouterDown { node: 3 }),
            NetMsg::Fault(FaultKind::RouterUp { node: 3 }),
            NetMsg::RetryCheck(MsgId { src: 4, seq: 99 }),
            NetMsg::RecvDeadline { epoch: 12 },
        ];
        for m in &msgs {
            let mut ints = Vec::new();
            msg_to_ints(m, &mut ints);
            let mut r = IntReader::new(&ints);
            let back = msg_from_ints(&mut r).expect("decodes");
            r.finish("payload").expect("consumed exactly");
            let mut ints2 = Vec::new();
            msg_to_ints(&back, &mut ints2);
            assert_eq!(ints, ints2, "{m:?}");
        }
    }

    #[test]
    fn torn_file_is_detected() {
        let text = tiny_snapshot().to_file_string();
        // Truncate mid-body: body hash no longer matches.
        let cut = text.len() - 20;
        match Snapshot::parse(&text[..cut]) {
            Err(SnapshotError::Torn { .. }) => {}
            other => panic!("expected Torn, got {other:?}"),
        }
        // Flip one digit inside the body: also torn.
        let corrupted = text.replacen("engine 42", "engine 43", 1);
        match Snapshot::parse(&corrupted) {
            Err(SnapshotError::Torn { .. }) => {}
            other => panic!("expected Torn, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_and_schema_are_named() {
        match Snapshot::parse("not-a-snapshot at all\nend\n") {
            Err(SnapshotError::BadMagic { found }) => assert_eq!(found, "not-a-snapshot"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
        let text = tiny_snapshot().to_file_string();
        let v2 = text.replacen("schema=1", "schema=2", 1);
        match Snapshot::parse(&v2) {
            Err(SnapshotError::SchemaMismatch { found: 2 }) => {}
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        let e = SnapshotError::SchemaMismatch { found: 2 }.to_string();
        assert!(e.contains("`schema`"), "{e}");
    }

    #[test]
    fn config_mismatch_names_both_hashes() {
        let snap = tiny_snapshot();
        snap.verify_config("0123456789abcdef")
            .expect("matching hash");
        let err = snap.verify_config("ffffffffffffffff").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("0123456789abcdef"), "{msg}");
        assert!(msg.contains("ffffffffffffffff"), "{msg}");
        assert!(msg.contains("`config`"), "{msg}");
    }

    #[test]
    fn missing_end_marker_is_truncation() {
        let text = tiny_snapshot().to_file_string();
        let no_end = text.replacen("end\n", "", 1);
        // The body hash catches it first (different bytes)…
        assert!(Snapshot::parse(&no_end).is_err());
        // …and even with a recomputed hash the marker is required.
        let snap = tiny_snapshot();
        let mut body = String::from("engine 1\nkeys 0 0 0 0\n");
        for node in 0..2 {
            body.push_str(&format!("router {node} 1\nproc {node} 1\n"));
        }
        let header = format!(
            "{SNAPSHOT_MAGIC} schema=1 config=x nodes=2 time=5 body={:016x}",
            fnv1a64(body.as_bytes())
        );
        let _ = snap;
        match Snapshot::parse(&format!("{header}\n{body}")) {
            Err(SnapshotError::Parse { detail, .. }) => {
                assert!(detail.contains("`end`"), "{detail}")
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn compose_matches_a_whole_capture() {
        let whole = tiny_snapshot();
        let ev0 = whole.events[0];
        let ev1 = whole.events[1];
        let pieces = vec![
            ShardPiece {
                config_hash: whole.config_hash.clone(),
                nodes: 2,
                base: 0,
                time: whole.time,
                events_processed: 30,
                key_counters: vec![1, 0, 3, 0],
                // Out-of-order on purpose: compose canonicalises.
                events: vec![ev1],
                routers: vec![whole.routers[0].clone()],
                procs: vec![whole.procs[0].clone()],
            },
            ShardPiece {
                config_hash: whole.config_hash.clone(),
                nodes: 2,
                base: 1,
                time: whole.time,
                events_processed: 12,
                key_counters: vec![0, 2, 0, 4],
                events: vec![ev0],
                routers: vec![whole.routers[1].clone()],
                procs: vec![whole.procs[1].clone()],
            },
        ];
        let mut composed = Snapshot::compose(pieces);
        composed.attribution = whole.attribution.clone();
        assert_eq!(composed.to_file_string(), whole.to_file_string());
    }

    #[test]
    fn int_reader_names_missing_fields() {
        let data = [1u64, 2];
        let mut r = IntReader::new(&data);
        assert_eq!(r.take("first").unwrap(), 1);
        let err = r.take_slice(3, "a packet").unwrap_err();
        assert!(err.contains("a packet"), "{err}");
        assert_eq!(r.take("second").unwrap(), 2);
        let err = r.take("third field").unwrap_err();
        assert!(err.contains("third field"), "{err}");
        r.finish("record").unwrap();
    }
}
