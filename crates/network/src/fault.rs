//! Deterministic fault injection for the communication model.
//!
//! A [`FaultSchedule`] describes *when* the simulated machine breaks and
//! *how badly*: scripted link-down/link-up intervals and router failures
//! at exact simulated timestamps, plus per-packet transient loss and
//! corruption rates in parts-per-million. Everything is a pure function
//! of the schedule — no wall clock, no global RNG state:
//!
//! * **Scripted events** are posted to the affected router's own event
//!   stream *before* the run starts, so they consume that router's key
//!   counter at engine time zero. A sharded run posts exactly the same
//!   events for its local routers in the same per-router order, giving
//!   the events bit-identical `EventKey`s to a serial run (DESIGN.md §12).
//! * **Per-packet decisions** (transient drop, corruption) are stateless
//!   hashes over the packet's identity — message id, packet index,
//!   retransmission attempt, and the link being crossed — so the verdict
//!   is independent of event-processing order and therefore identical
//!   between serial and sharded execution.
//!
//! The schedule also carries the [`RetryParams`] of the reliability
//! protocol the abstract processors switch on in fault mode (ack /
//! timeout / retransmit with capped exponential backoff, all in
//! simulated time). `random_link_faults` grows a scripted schedule from
//! the vendored `rand`'s seeded generator, for fuzzing and what-if runs.

use crate::config::NetworkConfig;
use crate::packet::Packet;
use crate::topology::Topology;
use mermaid_ops::NodeId;
use pearl::{Duration, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parts-per-million denominator for the transient fault rates.
pub const PPM: u32 = 1_000_000;

const DROP_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const CORRUPT_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// One scripted state change of the network fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Take the directed link `from → to` down.
    LinkDown {
        /// Link source (the router that owns the output port).
        from: NodeId,
        /// Link destination.
        to: NodeId,
    },
    /// Bring the directed link `from → to` back up.
    LinkUp {
        /// Link source.
        from: NodeId,
        /// Link destination.
        to: NodeId,
    },
    /// Take a whole router down: it discards every packet it sees.
    RouterDown {
        /// The failing router.
        node: NodeId,
    },
    /// Bring a router back up.
    RouterUp {
        /// The recovering router.
        node: NodeId,
    },
}

impl FaultKind {
    /// The router whose event stream carries this fault (links belong to
    /// the router owning the output port).
    pub fn target(&self) -> NodeId {
        match *self {
            FaultKind::LinkDown { from, .. } | FaultKind::LinkUp { from, .. } => from,
            FaultKind::RouterDown { node } | FaultKind::RouterUp { node } => node,
        }
    }
}

/// A scripted fault at an exact simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the state change takes effect.
    pub at: Time,
    /// What changes.
    pub kind: FaultKind,
}

/// Timing parameters of the reliability protocol, in simulated time.
///
/// The retransmission timeout for attempt `a` (0-based; attempt 0 is the
/// original send) is `min(base_timeout << a, backoff_cap)`. After
/// `max_retries` retransmissions the sender gives up and reports the
/// destination unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryParams {
    /// Timeout before the first retransmission.
    pub base_timeout: Duration,
    /// Ceiling of the exponential backoff.
    pub backoff_cap: Duration,
    /// Retransmissions before giving up.
    pub max_retries: u32,
    /// Watchdog for a *blocking receive*: after this long without the
    /// expected arrival the processor abandons the receive and continues
    /// (degraded mode) instead of deadlocking.
    pub recv_timeout: Duration,
}

impl Default for RetryParams {
    fn default() -> Self {
        RetryParams {
            base_timeout: Duration::from_us(200),
            backoff_cap: Duration::from_us(3_200),
            max_retries: 6,
            recv_timeout: Duration::from_ms(50),
        }
    }
}

impl RetryParams {
    /// Parameters scaled to a network's actual per-hop cost, so the first
    /// timeout comfortably exceeds a healthy round trip (slow stores like
    /// the T805 need a far longer fuse than the GHz test network).
    pub fn default_for(cfg: &NetworkConfig) -> Self {
        let per_hop = cfg.router.routing_delay
            + cfg.link.wire_latency
            + cfg
                .link
                .transfer_time(cfg.router.header_bytes + cfg.router.max_packet_payload);
        let software = cfg.software.send_overhead + cfg.software.recv_overhead;
        let base = Duration::from_ps((per_hop.as_ps().saturating_mul(8)) + software.as_ps())
            .max(Duration::from_us(1));
        let horizon = give_up_horizon(base, Duration::from_ps(base.as_ps() * 16), 6);
        RetryParams {
            base_timeout: base,
            backoff_cap: Duration::from_ps(base.as_ps() * 16),
            max_retries: 6,
            recv_timeout: Duration::from_ps(horizon.as_ps() * 2),
        }
    }

    /// The retransmission timeout for 0-based `attempt`.
    pub fn timeout(&self, attempt: u32) -> Duration {
        Duration::from_ps(
            shl_saturating(self.base_timeout.as_ps(), attempt).min(self.backoff_cap.as_ps()),
        )
    }
}

/// `v << shift`, saturating at `u64::MAX` when bits would be shifted out
/// (a plain `checked_shl` only guards the shift *amount*, not overflow).
fn shl_saturating(v: u64, shift: u32) -> u64 {
    if v == 0 {
        0
    } else if shift >= v.leading_zeros() {
        u64::MAX
    } else {
        v << shift
    }
}

/// Total simulated time a sender spends before giving up: the sum of all
/// retransmission timeouts.
fn give_up_horizon(base: Duration, cap: Duration, max_retries: u32) -> Duration {
    let mut total = 0u64;
    for a in 0..=max_retries {
        total = total.saturating_add(shl_saturating(base.as_ps(), a).min(cap.as_ps()));
    }
    Duration::from_ps(total)
}

/// A deterministic description of every fault a run will experience.
///
/// Cloneable and immutable once built; the simulation shares one schedule
/// across all routers and processors (serial) or all shards (sharded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    /// Transient per-packet loss rate per link traversal, in
    /// parts-per-million of [`PPM`].
    pub drop_ppm: u32,
    /// Per-packet corruption rate per link traversal (detected and
    /// discarded at the next router's checksum point), parts-per-million.
    pub corrupt_ppm: u32,
    /// Seed of every per-packet fault decision (and of
    /// [`FaultSchedule::random_link_faults`]).
    pub seed: u64,
    /// Reliability-protocol timing.
    pub retry: RetryParams,
}

impl FaultSchedule {
    /// An empty schedule: no scripted events, zero transient rates. The
    /// reliability protocol is still armed — `Some(empty schedule)` is a
    /// healthy machine with fault *tolerance* compiled in, `None` is the
    /// fault layer switched off entirely.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            events: Vec::new(),
            drop_ppm: 0,
            corrupt_ppm: 0,
            seed,
            retry: RetryParams::default(),
        }
    }

    /// Builder: replace the retry parameters.
    pub fn with_retry(mut self, retry: RetryParams) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: transient loss rate in parts-per-million.
    pub fn with_drop_ppm(mut self, ppm: u32) -> Self {
        assert!(ppm <= PPM, "drop rate above 1.0");
        self.drop_ppm = ppm;
        self
    }

    /// Builder: corruption rate in parts-per-million.
    pub fn with_corrupt_ppm(mut self, ppm: u32) -> Self {
        assert!(ppm <= PPM, "corruption rate above 1.0");
        self.corrupt_ppm = ppm;
        self
    }

    /// Script one raw fault event.
    pub fn push(&mut self, at: Time, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// Script a *bidirectional* link cut between `a` and `b` at `down`,
    /// optionally healing at `up`.
    pub fn cut_link(&mut self, a: NodeId, b: NodeId, down: Time, up: Option<Time>) {
        self.push(down, FaultKind::LinkDown { from: a, to: b });
        self.push(down, FaultKind::LinkDown { from: b, to: a });
        if let Some(up) = up {
            assert!(up > down, "link must heal after it fails");
            self.push(up, FaultKind::LinkUp { from: a, to: b });
            self.push(up, FaultKind::LinkUp { from: b, to: a });
        }
    }

    /// Script a router outage at `down`, optionally recovering at `up`.
    pub fn crash_router(&mut self, node: NodeId, down: Time, up: Option<Time>) {
        self.push(down, FaultKind::RouterDown { node });
        if let Some(up) = up {
            assert!(up > down, "router must recover after it fails");
            self.push(up, FaultKind::RouterUp { node });
        }
    }

    /// Grow `count` random bidirectional link outages over `[0, horizon)`
    /// using the vendored seeded generator. Each outage picks a random
    /// topology link, a random start, and a random duration (some outages
    /// extend past `horizon`, i.e. never heal inside the run).
    pub fn random_link_faults(mut self, topo: &Topology, count: usize, horizon: Time) -> Self {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nodes = topo.nodes();
        if nodes < 2 || horizon.as_ps() < 2 {
            return self;
        }
        for _ in 0..count {
            // Rejection-free: pick a node, then one of its neighbors.
            let a = rng.gen_range(0..nodes as u64) as NodeId;
            let nbrs = topo.neighbors(a);
            let b = nbrs[rng.gen_range(0..nbrs.len() as u64) as usize];
            let down = Time::from_ps(rng.gen_range(0..horizon.as_ps()));
            let dur = rng.gen_range(1..horizon.as_ps());
            let up = down.as_ps().checked_add(dur).map(Time::from_ps);
            let heals = rng.gen_bool(0.75);
            self.cut_link(a, b, down, if heals { up } else { None });
        }
        self
    }

    /// The scripted events, in script order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The scripted events a given router must receive, in script order.
    /// Serial and sharded runners both post per-router in this order, so
    /// the events' keys match bit-for-bit.
    pub fn events_for(&self, node: NodeId) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.kind.target() == node)
    }

    /// Check every scripted event against a topology: nodes in range,
    /// link events naming actual topology links.
    pub fn try_validate(&self, topo: &Topology) -> Result<(), String> {
        let nodes = topo.nodes();
        for ev in &self.events {
            match ev.kind {
                FaultKind::LinkDown { from, to } | FaultKind::LinkUp { from, to } => {
                    if from as u64 >= nodes as u64 || to as u64 >= nodes as u64 {
                        return Err(format!(
                            "fault link {from}-{to} out of range for {} nodes",
                            nodes
                        ));
                    }
                    if !topo.neighbors(from).contains(&to) {
                        return Err(format!(
                            "fault link {from}-{to} is not a link of {}",
                            topo.label()
                        ));
                    }
                }
                FaultKind::RouterDown { node } | FaultKind::RouterUp { node } => {
                    if node as u64 >= nodes as u64 {
                        return Err(format!(
                            "fault router {node} out of range for {} nodes",
                            nodes
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Stateless verdict: is this packet lost crossing `from → to`?
    pub fn drops_packet(&self, from: NodeId, to: NodeId, pkt: &Packet) -> bool {
        self.drop_ppm > 0 && draw_ppm(self.seed ^ DROP_SALT, from, to, pkt) < self.drop_ppm
    }

    /// Stateless verdict: is this packet corrupted crossing `from → to`?
    pub fn corrupts_packet(&self, from: NodeId, to: NodeId, pkt: &Packet) -> bool {
        self.corrupt_ppm > 0 && draw_ppm(self.seed ^ CORRUPT_SALT, from, to, pkt) < self.corrupt_ppm
    }

    /// Parse a fault-spec string (the CLI's `--faults` argument, or the
    /// contents of a fault file). Clauses are separated by `;` or
    /// newlines; `#` starts a comment. Times are simulated nanoseconds.
    ///
    /// ```text
    /// link:A-B:DOWN_NS[:UP_NS]    cut link A<->B (heal at UP_NS if given)
    /// router:N:DOWN_NS[:UP_NS]    crash router N (recover at UP_NS)
    /// drop:PPM                    transient loss, parts-per-million
    /// corrupt:PPM                 corruption, parts-per-million
    /// retries:N                   retransmissions before giving up
    /// timeout:NS                  base retransmission timeout
    /// cap:NS                      backoff ceiling
    /// recv-timeout:NS             blocking-receive watchdog
    /// ```
    pub fn parse(spec: &str, seed: u64, defaults: RetryParams) -> Result<Self, String> {
        let mut sched = FaultSchedule::new(seed).with_retry(defaults);
        for raw in spec.split([';', '\n']) {
            let clause = raw.split('#').next().unwrap_or("").trim();
            if clause.is_empty() {
                continue;
            }
            let parts: Vec<&str> = clause.split(':').map(str::trim).collect();
            let ns = |s: &str| -> Result<u64, String> {
                s.parse::<u64>()
                    .map_err(|_| format!("bad time `{s}` in fault clause `{clause}` (ns)"))
            };
            match parts[0] {
                "link" => {
                    if parts.len() < 3 || parts.len() > 4 {
                        return Err(format!("expected link:A-B:DOWN[:UP], got `{clause}`"));
                    }
                    let (a, b) = parts[1]
                        .split_once('-')
                        .ok_or_else(|| format!("expected A-B in `{clause}`"))?;
                    let a: NodeId = a
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad node `{a}` in `{clause}`"))?;
                    let b: NodeId = b
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad node `{b}` in `{clause}`"))?;
                    let down = Time::from_ns(ns(parts[1 + 1])?);
                    let up = match parts.get(3) {
                        Some(s) => {
                            let up = Time::from_ns(ns(s)?);
                            if up <= down {
                                return Err(format!("link must heal after it fails: `{clause}`"));
                            }
                            Some(up)
                        }
                        None => None,
                    };
                    sched.cut_link(a, b, down, up);
                }
                "router" => {
                    if parts.len() < 3 || parts.len() > 4 {
                        return Err(format!("expected router:N:DOWN[:UP], got `{clause}`"));
                    }
                    let node: NodeId = parts[1]
                        .parse()
                        .map_err(|_| format!("bad node `{}` in `{clause}`", parts[1]))?;
                    let down = Time::from_ns(ns(parts[2])?);
                    let up = match parts.get(3) {
                        Some(s) => {
                            let up = Time::from_ns(ns(s)?);
                            if up <= down {
                                return Err(format!(
                                    "router must recover after it fails: `{clause}`"
                                ));
                            }
                            Some(up)
                        }
                        None => None,
                    };
                    sched.crash_router(node, down, up);
                }
                "drop" | "corrupt" => {
                    if parts.len() != 2 {
                        return Err(format!("expected {}:PPM, got `{clause}`", parts[0]));
                    }
                    let ppm: u32 = parts[1]
                        .parse()
                        .map_err(|_| format!("bad ppm `{}` in `{clause}`", parts[1]))?;
                    if ppm > PPM {
                        return Err(format!("rate {ppm} above {PPM} ppm in `{clause}`"));
                    }
                    if parts[0] == "drop" {
                        sched.drop_ppm = ppm;
                    } else {
                        sched.corrupt_ppm = ppm;
                    }
                }
                "retries" => {
                    if parts.len() != 2 {
                        return Err(format!("expected retries:N, got `{clause}`"));
                    }
                    sched.retry.max_retries = parts[1]
                        .parse()
                        .map_err(|_| format!("bad count `{}` in `{clause}`", parts[1]))?;
                }
                "timeout" => {
                    if parts.len() != 2 {
                        return Err(format!("expected timeout:NS, got `{clause}`"));
                    }
                    sched.retry.base_timeout = Duration::from_ns(ns(parts[1])?);
                }
                "cap" => {
                    if parts.len() != 2 {
                        return Err(format!("expected cap:NS, got `{clause}`"));
                    }
                    sched.retry.backoff_cap = Duration::from_ns(ns(parts[1])?);
                }
                "recv-timeout" => {
                    if parts.len() != 2 {
                        return Err(format!("expected recv-timeout:NS, got `{clause}`"));
                    }
                    sched.retry.recv_timeout = Duration::from_ns(ns(parts[1])?);
                }
                other => {
                    return Err(format!(
                        "unknown fault clause `{other}` (expected link, router, drop, \
                         corrupt, retries, timeout, cap, or recv-timeout)"
                    ));
                }
            }
            if sched.retry.base_timeout.as_ps() == 0 {
                return Err("timeout must be positive".to_string());
            }
        }
        Ok(sched)
    }
}

/// SplitMix64 finaliser: the avalanche stage behind every per-packet
/// fault decision.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hash a packet's identity plus the link it is crossing down to a value
/// in `[0, PPM)`. Pure: the verdict depends only on the arguments, never
/// on simulation order — the cornerstone of serial/sharded identity.
fn draw_ppm(seed: u64, from: NodeId, to: NodeId, pkt: &Packet) -> u32 {
    let mut h = mix(seed);
    h = mix(h ^ (((from as u64) << 32) | to as u64));
    h = mix(h ^ (((pkt.msg.src as u64) << 32) | pkt.index as u64));
    h = mix(h ^ pkt.msg.seq);
    h = mix(h ^ pkt.attempt as u64);
    (h % PPM as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MsgId, PacketKind, PathDecomp};

    fn pkt(seq: u64, index: u32, attempt: u32) -> Packet {
        Packet {
            msg: MsgId { src: 0, seq },
            dst: 1,
            index,
            count: index + 1,
            payload: 8,
            msg_bytes: 8,
            kind: PacketKind::Data { sync: false },
            sent_at: Time::ZERO,
            attempt,
            corrupted: false,
            path: PathDecomp::default(),
        }
    }

    #[test]
    fn per_packet_decisions_are_pure_and_attempt_sensitive() {
        let s = FaultSchedule::new(42).with_drop_ppm(500_000);
        let p = pkt(7, 0, 0);
        assert_eq!(s.drops_packet(0, 1, &p), s.drops_packet(0, 1, &p));
        // Roughly half of many draws land below 50%.
        let hits = (0..1000)
            .filter(|&i| s.drops_packet(0, 1, &pkt(i, 0, 0)))
            .count();
        assert!((300..700).contains(&hits), "suspicious drop rate: {hits}");
        // A retry of the same packet redraws its luck.
        let redraw = (0..1000)
            .filter(|&i| s.drops_packet(0, 1, &pkt(i, 0, 0)) != s.drops_packet(0, 1, &pkt(i, 0, 1)))
            .count();
        assert!(redraw > 200, "attempt must change the draw: {redraw}");
    }

    #[test]
    fn zero_rates_never_fire() {
        let s = FaultSchedule::new(1);
        assert!(!s.drops_packet(0, 1, &pkt(0, 0, 0)));
        assert!(!s.corrupts_packet(0, 1, &pkt(0, 0, 0)));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryParams {
            base_timeout: Duration::from_ns(100),
            backoff_cap: Duration::from_ns(350),
            max_retries: 5,
            recv_timeout: Duration::from_us(10),
        };
        assert_eq!(r.timeout(0), Duration::from_ns(100));
        assert_eq!(r.timeout(1), Duration::from_ns(200));
        assert_eq!(r.timeout(2), Duration::from_ns(350));
        assert_eq!(r.timeout(60), Duration::from_ns(350));
    }

    #[test]
    fn cut_link_scripts_both_directions() {
        let mut s = FaultSchedule::new(0);
        s.cut_link(2, 3, Time::from_ns(10), Some(Time::from_ns(20)));
        assert_eq!(s.events().len(), 4);
        assert_eq!(s.events_for(2).count(), 2);
        assert_eq!(s.events_for(3).count(), 2);
        assert_eq!(s.events_for(4).count(), 0);
    }

    #[test]
    fn validate_rejects_non_links_and_out_of_range() {
        let topo = Topology::Ring(4);
        let mut ok = FaultSchedule::new(0);
        ok.cut_link(0, 1, Time::from_ns(5), None);
        assert!(ok.try_validate(&topo).is_ok());
        let mut non_link = FaultSchedule::new(0);
        non_link.cut_link(0, 2, Time::from_ns(5), None);
        assert!(non_link.try_validate(&topo).is_err());
        let mut oob = FaultSchedule::new(0);
        oob.crash_router(9, Time::from_ns(5), None);
        assert!(oob.try_validate(&topo).is_err());
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let s = FaultSchedule::parse(
            "link:0-1:1000:50000; drop:1000 # flaky\ncorrupt:500; retries:3; timeout:2000",
            9,
            RetryParams::default(),
        )
        .unwrap();
        assert_eq!(s.events().len(), 4);
        assert_eq!(s.drop_ppm, 1_000);
        assert_eq!(s.corrupt_ppm, 500);
        assert_eq!(s.retry.max_retries, 3);
        assert_eq!(s.retry.base_timeout, Duration::from_ns(2_000));
        assert_eq!(s.seed, 9);

        for bad in [
            "link:0:10",
            "link:0-1:10:5",
            "router:1:x",
            "drop:2000000",
            "bogus:1",
            "timeout:0",
        ] {
            assert!(
                FaultSchedule::parse(bad, 0, RetryParams::default()).is_err(),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn random_faults_are_reproducible_and_valid() {
        let topo = Topology::Mesh2D { w: 4, h: 4 };
        let a = FaultSchedule::new(7).random_link_faults(&topo, 5, Time::from_us(100));
        let b = FaultSchedule::new(7).random_link_faults(&topo, 5, Time::from_us(100));
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.try_validate(&topo).is_ok());
        assert!(a.events().len() >= 10, "5 cuts, 2+ events each");
        let c = FaultSchedule::new(8).random_link_faults(&topo, 5, Time::from_us(100));
        assert_ne!(a, c, "different seed, different schedule");
    }
}
