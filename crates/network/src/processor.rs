//! The abstract processor (paper, Fig. 3b): reads an incoming task-level
//! operation trace, executes `compute` operations by advancing virtual
//! time, and dispatches communication requests to its router.
//!
//! Blocking semantics:
//!
//! * `send` is a rendezvous: the sender blocks until the receiver has
//!   consumed the message, signalled by an acknowledgement control packet
//!   travelling back through the network.
//! * `recv` blocks until a message from the named source has fully arrived.
//! * `asend` returns after the send overhead; `arecv` posts the receive and
//!   returns immediately (the message is consumed on arrival).

use std::collections::HashMap;
use std::sync::Arc;

use mermaid_ops::{NodeId, Operation};
use mermaid_probe::{ActKind, ProbeHandle, SimEvent};
use mermaid_stats::Histogram;
use pearl::sync::MatchBox;
use pearl::{CompId, Component, Ctx, Duration, Event, Time};

use crate::config::NetworkConfig;
use crate::packet::{MsgId, NetMsg, Packet, PacketKind, Train};

/// Statistics of one abstract processor.
#[derive(Debug, Clone)]
pub struct ProcStats {
    /// Time spent in `compute` operations.
    pub compute: Duration,
    /// Time spent blocked in synchronous sends (waiting for the ack).
    pub send_block: Duration,
    /// Time spent blocked in synchronous receives.
    pub recv_block: Duration,
    /// Messages sent (sync + async).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received (consumed).
    pub msgs_received: u64,
    /// End-to-end message latencies (send issue → last byte delivered), ps.
    pub msg_latency: Histogram,
    /// Time spent blocked in one-sided `get` operations.
    pub get_block: Duration,
    /// `get` operations issued by this node.
    pub gets_issued: u64,
    /// `get` requests this node serviced for others.
    pub gets_served: u64,
    /// One-sided `put` messages consumed at this node.
    pub puts_received: u64,
    /// Round-trip latencies of this node's `get` operations (ps).
    pub get_latency: Histogram,
    /// When this processor finished its trace (None ⇒ blocked forever:
    /// deadlock or mismatched communication).
    pub finished_at: Option<Time>,
}

impl Default for ProcStats {
    fn default() -> Self {
        ProcStats {
            compute: Duration::ZERO,
            send_block: Duration::ZERO,
            recv_block: Duration::ZERO,
            msgs_sent: 0,
            bytes_sent: 0,
            msgs_received: 0,
            msg_latency: Histogram::log2(),
            get_block: Duration::ZERO,
            gets_issued: 0,
            gets_served: 0,
            puts_received: 0,
            get_latency: Histogram::log2(),
            finished_at: None,
        }
    }
}

/// A message fully arrived at this node, waiting to be consumed.
#[derive(Debug, Clone, Copy)]
struct CompletedMsg {
    id: MsgId,
    arrived: Time,
    sent_at: Time,
    bytes: u32,
    sync: bool,
}

/// A posted asynchronous receive (blocking receives are represented by the
/// processor state instead, so the matcher only ever queues `Async`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiter {
    /// An `arecv`: consume silently on arrival.
    Async,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Processing trace operations (inside `advance`).
    Running,
    /// Waiting for a `compute` timer.
    Computing,
    /// Blocked in a synchronous send since the given time.
    AwaitAck { since: Time },
    /// Blocked in a synchronous receive since the given time.
    AwaitRecv { src: NodeId, since: Time },
    /// Blocked in a one-sided `get` since the given time.
    AwaitGet { since: Time },
    /// Trace exhausted.
    Done,
}

/// In-progress reassembly of a multi-packet message.
#[derive(Debug, Clone, Copy)]
struct Assembly {
    got: u32,
    total: u32,
}

/// The abstract processor of one node.
pub struct AbstractProcessor {
    node: NodeId,
    /// The node's task-level trace, shared with its owner (the processor
    /// only reads it — no per-simulation copy).
    trace: Arc<[Operation]>,
    cursor: usize,
    router_comp: CompId,
    cfg: NetworkConfig,
    state: ProcState,
    send_seq: u64,
    assembling: HashMap<MsgId, Assembly>,
    matcher: MatchBox<NodeId, CompletedMsg, Waiter>,
    /// Instrumentation (disabled by default; observation only, never read
    /// back into model behaviour).
    probe: ProbeHandle,
    /// Statistics.
    pub stats: ProcStats,
}

impl AbstractProcessor {
    /// Build the processor of `node` with its task-level trace.
    pub fn new(
        node: NodeId,
        trace: Arc<[Operation]>,
        router_comp: CompId,
        cfg: NetworkConfig,
    ) -> Self {
        AbstractProcessor {
            node,
            trace,
            cursor: 0,
            router_comp,
            cfg,
            state: ProcState::Running,
            send_seq: 0,
            assembling: HashMap::new(),
            matcher: MatchBox::new(),
            probe: ProbeHandle::disabled(),
            stats: ProcStats::default(),
        }
    }

    /// Attach an instrumentation handle (builder style).
    pub fn with_probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = probe;
        self
    }

    /// True when the processor has completed its trace.
    pub fn is_done(&self) -> bool {
        self.state == ProcState::Done
    }

    /// The node this processor models.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Split a message into packets and inject them after `delay`.
    /// Returns the message id (used to correlate `get` replies).
    fn inject_message_kind(
        &mut self,
        dst: NodeId,
        bytes: u32,
        kind: PacketKind,
        delay: Duration,
        ctx: &mut Ctx<'_, NetMsg>,
    ) -> MsgId {
        let id = MsgId {
            src: self.node,
            seq: self.send_seq,
        };
        self.send_seq += 1;
        self.inject_message_as(id, dst, bytes, kind, delay, ctx);
        id
    }

    /// Inject a message under an explicit id (used for `get` replies, which
    /// carry the *requester's* message id back).
    fn inject_message_as(
        &mut self,
        id: MsgId,
        dst: NodeId,
        bytes: u32,
        kind: PacketKind,
        delay: Duration,
        ctx: &mut Ctx<'_, NetMsg>,
    ) {
        if matches!(kind, PacketKind::Data { .. } | PacketKind::OneWay) {
            self.stats.msgs_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            self.probe.emit(|| SimEvent::MsgSend {
                ts_ps: ctx.now().as_ps(),
                src: self.node,
                dst,
                bytes,
                sync: matches!(kind, PacketKind::Data { sync: true }),
            });
        }
        let count = self.cfg.packets_for(bytes);
        let payload_max = self.cfg.router.max_packet_payload;
        let first = Packet {
            msg: id,
            dst,
            index: 0,
            count,
            payload: bytes.min(payload_max),
            msg_bytes: bytes,
            kind,
            sent_at: ctx.now(),
        };
        if count == 1 {
            ctx.send_after(delay, self.router_comp, NetMsg::Inject(first));
        } else {
            // All packets are ready at the same instant — hand the router
            // the whole burst as one event (it expands them with the exact
            // per-packet arithmetic of individual injections).
            let train = Train { first, len: count };
            ctx.send_after(delay, self.router_comp, NetMsg::InjectTrain(train));
        }
    }

    /// Split a data message into packets and inject them after `delay`.
    fn inject_message(
        &mut self,
        dst: NodeId,
        bytes: u32,
        sync: bool,
        delay: Duration,
        ctx: &mut Ctx<'_, NetMsg>,
    ) {
        self.inject_message_kind(dst, bytes, PacketKind::Data { sync }, delay, ctx);
    }

    /// Send the rendezvous acknowledgement for a consumed sync message.
    fn inject_ack(&mut self, msg: CompletedMsg, delay: Duration, ctx: &mut Ctx<'_, NetMsg>) {
        let pkt = Packet {
            msg: msg.id,
            dst: msg.id.src,
            index: 0,
            count: 1,
            payload: 0,
            msg_bytes: 0,
            kind: PacketKind::Ack,
            sent_at: ctx.now(),
        };
        ctx.send_after(delay, self.router_comp, NetMsg::Inject(pkt));
    }

    /// Consume a completed message (statistics + ack).
    fn consume(&mut self, msg: CompletedMsg, ack_delay: Duration, ctx: &mut Ctx<'_, NetMsg>) {
        self.stats.msgs_received += 1;
        self.stats
            .msg_latency
            .record(msg.arrived.since(msg.sent_at).as_ps());
        self.probe.emit(|| SimEvent::MsgDeliver {
            ts_ps: msg.arrived.as_ps(),
            src: msg.id.src,
            dst: self.node,
            bytes: msg.bytes,
            latency_ps: msg.arrived.since(msg.sent_at).as_ps(),
        });
        if msg.sync {
            self.inject_ack(msg, ack_delay, ctx);
        }
    }

    /// Process trace operations until the processor blocks or finishes.
    fn advance(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        self.state = ProcState::Running;
        while self.cursor < self.trace.len() {
            let op = self.trace[self.cursor];
            self.cursor += 1;
            match op {
                Operation::Compute { ps } => {
                    let d = Duration::from_ps(ps);
                    self.stats.compute += d;
                    self.probe.emit(|| SimEvent::Activation {
                        node: self.node,
                        kind: ActKind::Compute,
                        start_ps: ctx.now().as_ps(),
                        end_ps: (ctx.now() + d).as_ps(),
                    });
                    self.state = ProcState::Computing;
                    ctx.timer(d, NetMsg::Resume);
                    return;
                }
                Operation::Send { bytes, dst } => {
                    let overhead = self.cfg.software.send_overhead;
                    self.inject_message(dst, bytes, true, overhead, ctx);
                    self.state = ProcState::AwaitAck { since: ctx.now() };
                    return;
                }
                Operation::ASend { bytes, dst } => {
                    let overhead = self.cfg.software.send_overhead;
                    self.inject_message(dst, bytes, false, overhead, ctx);
                    if overhead.is_zero() {
                        continue;
                    }
                    self.state = ProcState::Computing;
                    ctx.timer(overhead, NetMsg::Resume);
                    return;
                }
                Operation::Recv { src } => {
                    // Blocking receives are represented by the processor
                    // state, not by a queued waiter (only `arecv` posts
                    // waiters into the matcher).
                    match self.matcher.take_arrival(&src) {
                        Some(msg) => {
                            // Message already here: pay the receive overhead
                            // and continue.
                            let overhead = self.cfg.software.recv_overhead;
                            self.consume(msg, overhead, ctx);
                            if overhead.is_zero() {
                                continue;
                            }
                            self.state = ProcState::Computing;
                            ctx.timer(overhead, NetMsg::Resume);
                            return;
                        }
                        None => {
                            self.state = ProcState::AwaitRecv {
                                src,
                                since: ctx.now(),
                            };
                            return;
                        }
                    }
                }
                Operation::ARecv { src } => {
                    if let Some(msg) = self.matcher.wait(src, Waiter::Async) {
                        self.consume(msg, Duration::ZERO, ctx);
                    }
                    // Non-blocking either way.
                }
                Operation::Put { bytes, to } => {
                    let overhead = self.cfg.software.send_overhead;
                    self.inject_message_kind(to, bytes, PacketKind::OneWay, overhead, ctx);
                    if overhead.is_zero() {
                        continue;
                    }
                    self.state = ProcState::Computing;
                    ctx.timer(overhead, NetMsg::Resume);
                    return;
                }
                Operation::Get { bytes, from } => {
                    if from == self.node {
                        // A local fetch: free at this abstraction level.
                        continue;
                    }
                    let overhead = self.cfg.software.send_overhead;
                    self.stats.gets_issued += 1;
                    self.inject_message_kind(
                        from,
                        0,
                        PacketKind::GetRequest { bytes },
                        overhead,
                        ctx,
                    );
                    self.state = ProcState::AwaitGet { since: ctx.now() };
                    return;
                }
                other => panic!(
                    "node {}: instruction-level operation {other} in a task-level trace \
                     (run it through the computational model first)",
                    self.node
                ),
            }
        }
        self.state = ProcState::Done;
        self.stats.finished_at = Some(ctx.now());
    }

    /// A data packet arrived; returns the completed message when it was the
    /// last packet.
    fn assemble(&mut self, pkt: &Packet, now: Time) -> Option<CompletedMsg> {
        let sync = match pkt.kind {
            PacketKind::Data { sync } => sync,
            PacketKind::OneWay | PacketKind::GetReply => false,
            PacketKind::Ack | PacketKind::GetRequest { .. } => {
                unreachable!("assemble() on a control packet")
            }
        };
        let asm = self.assembling.entry(pkt.msg).or_insert(Assembly {
            got: 0,
            total: pkt.count,
        });
        asm.got += 1;
        if asm.got < asm.total {
            return None;
        }
        self.assembling.remove(&pkt.msg);
        Some(CompletedMsg {
            id: pkt.msg,
            arrived: now,
            sent_at: pkt.sent_at,
            bytes: pkt.msg_bytes,
            sync,
        })
    }

    fn on_deliver(&mut self, pkt: Packet, ctx: &mut Ctx<'_, NetMsg>) {
        match pkt.kind {
            PacketKind::GetRequest { bytes } => {
                // Service the one-sided read: reply with the data after the
                // software service cost, without touching our own trace
                // progress (DMA-like).
                self.stats.gets_served += 1;
                let requester = pkt.msg.src;
                self.inject_message_as(
                    pkt.msg,
                    requester,
                    bytes,
                    PacketKind::GetReply,
                    self.cfg.software.recv_overhead,
                    ctx,
                );
            }
            PacketKind::GetReply => {
                if self.assemble(&pkt, ctx.now()).is_none() {
                    return;
                }
                let ProcState::AwaitGet { since } = self.state else {
                    panic!(
                        "node {}: get reply {:?} while not waiting (state {:?})",
                        self.node, pkt.msg, self.state
                    );
                };
                let now = ctx.now();
                self.stats.get_block += now.since(since);
                self.stats
                    .get_latency
                    .record(now.since(pkt.sent_at).as_ps());
                self.probe.emit(|| SimEvent::Activation {
                    node: self.node,
                    kind: ActKind::GetBlock,
                    start_ps: since.as_ps(),
                    end_ps: now.as_ps(),
                });
                self.advance(ctx);
            }
            PacketKind::OneWay => {
                if self.assemble(&pkt, ctx.now()).is_some() {
                    self.stats.puts_received += 1;
                }
            }
            PacketKind::Ack => {
                let ProcState::AwaitAck { since } = self.state else {
                    panic!(
                        "node {}: unexpected ack for message {:?} in state {:?}",
                        self.node, pkt.msg, self.state
                    );
                };
                self.stats.send_block += ctx.now().since(since);
                self.probe.emit(|| SimEvent::Activation {
                    node: self.node,
                    kind: ActKind::SendBlock,
                    start_ps: since.as_ps(),
                    end_ps: ctx.now().as_ps(),
                });
                self.advance(ctx);
            }
            PacketKind::Data { .. } => {
                let Some(msg) = self.assemble(&pkt, ctx.now()) else {
                    return;
                };
                // Async receives posted earlier claim the message first.
                if self.matcher.has_waiter(&msg.id.src) {
                    let w = self
                        .matcher
                        .arrive(msg.id.src, msg)
                        .expect("has_waiter implies a match");
                    debug_assert_eq!(w, Waiter::Async);
                    self.consume(msg, Duration::ZERO, ctx);
                    return;
                }
                // A blocked recv on this source?
                if let ProcState::AwaitRecv { src, since } = self.state {
                    if src == msg.id.src {
                        self.stats.recv_block += ctx.now().since(since);
                        self.probe.emit(|| SimEvent::Activation {
                            node: self.node,
                            kind: ActKind::RecvBlock,
                            start_ps: since.as_ps(),
                            end_ps: ctx.now().as_ps(),
                        });
                        let overhead = self.cfg.software.recv_overhead;
                        self.consume(msg, overhead, ctx);
                        if overhead.is_zero() {
                            self.advance(ctx);
                        } else {
                            self.state = ProcState::Computing;
                            ctx.timer(overhead, NetMsg::Resume);
                        }
                        return;
                    }
                }
                // Otherwise queue it for a future recv/arecv.
                let matched = self.matcher.arrive(msg.id.src, msg);
                debug_assert!(matched.is_none());
            }
        }
    }
}

impl Component<NetMsg> for AbstractProcessor {
    fn init(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        self.advance(ctx);
    }

    fn handle(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
        match ev.payload {
            NetMsg::Resume => self.advance(ctx),
            NetMsg::Deliver(pkt) => self.on_deliver(pkt, ctx),
            NetMsg::DeliverTrain(train) => {
                // The run's tail has just fully arrived; its earlier
                // packets only advance reassembly counters, so consuming
                // the whole run now is observably identical to the
                // per-packet deliveries it replaces.
                let payload_max = self.cfg.router.max_packet_payload;
                for i in 0..train.len {
                    self.on_deliver(train.packet(i, payload_max), ctx);
                }
            }
            other => panic!(
                "processor {} received unexpected event {other:?}",
                self.node
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_are_empty() {
        let s = ProcStats::default();
        assert_eq!(s.msgs_sent, 0);
        assert_eq!(s.finished_at, None);
        assert_eq!(s.msg_latency.count(), 0);
    }

    // Behavioural tests for the processor live in `sim.rs`, where a full
    // network exists to carry its packets.
}
