//! The abstract processor (paper, Fig. 3b): reads an incoming task-level
//! operation trace, executes `compute` operations by advancing virtual
//! time, and dispatches communication requests to its router.
//!
//! Blocking semantics:
//!
//! * `send` is a rendezvous: the sender blocks until the receiver has
//!   consumed the message, signalled by an acknowledgement control packet
//!   travelling back through the network.
//! * `recv` blocks until a message from the named source has fully arrived.
//! * `asend` returns after the send overhead; `arecv` posts the receive and
//!   returns immediately (the message is consumed on arrival).
//!
//! # Fault mode
//!
//! With a [`FaultSchedule`] attached (see `crate::fault`), the processor
//! runs a transport-level reliability protocol so that lost packets never
//! wedge the simulation:
//!
//! * Every originated message (`send`, `asend`, `put`, `get` request) is
//!   *tracked*: the receiver acknowledges **arrival** (full reassembly)
//!   with a control packet, and the sender retransmits on timeout with
//!   capped exponential backoff — all in simulated time.
//! * After `max_retries` unanswered retransmissions the sender *gives up*:
//!   it records a structured [`UnreachableReport`], emits a `MsgGaveUp`
//!   probe event, unblocks (if it was waiting on that message) and
//!   continues its trace — degraded results instead of deadlock.
//! * Blocking receives carry a watchdog deadline; a receive that cannot be
//!   satisfied (the sender is partitioned away) times out and the trace
//!   continues, counted in `ProcStats::recv_timeouts`.
//! * Retransmissions reuse the message id; the receiver deduplicates by
//!   completed-message id and re-acknowledges duplicates (the original ack
//!   may itself have been lost).
//!
//! In fault mode the rendezvous acknowledgement of a blocking `send` is
//! subsumed by the arrival acknowledgement: the sender unblocks when the
//! message has fully *arrived* rather than when it is *consumed*. Fault-free
//! runs (no schedule attached) are bit-identical to a build without this
//! layer — every fault branch sits behind an `Option` that short-circuits
//! to the original path.

use std::sync::Arc;

use mermaid_ops::{NodeId, Operation};
use mermaid_probe::{ActKind, ProbeHandle, SimEvent};
use mermaid_stats::Histogram;
use pearl::sync::MatchBox;
use pearl::{CompId, Component, Ctx, Duration, Event, FastHashMap, FastHashSet, Time};

use crate::config::NetworkConfig;
use crate::fault::FaultSchedule;
use crate::packet::{MsgId, NetMsg, Packet, PacketKind, PathDecomp, Train};

/// One sender-side record of a message that exhausted its retries: the
/// structured degraded-mode evidence that a destination was unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnreachableReport {
    /// The node that gave up sending.
    pub src: NodeId,
    /// The destination that never acknowledged.
    pub dst: NodeId,
    /// The failed message's source-local sequence number.
    pub seq: u64,
    /// Retransmissions attempted before giving up.
    pub retries: u32,
    /// Simulated time at which the sender gave up.
    pub gave_up: Time,
}

/// Statistics of one abstract processor.
#[derive(Debug, Clone)]
pub struct ProcStats {
    /// Time spent in `compute` operations.
    pub compute: Duration,
    /// Time spent blocked in synchronous sends (waiting for the ack).
    pub send_block: Duration,
    /// Time spent blocked in synchronous receives.
    pub recv_block: Duration,
    /// Messages sent (sync + async).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received (consumed).
    pub msgs_received: u64,
    /// End-to-end message latencies (send issue → last byte delivered), ps.
    pub msg_latency: Histogram,
    /// Time spent blocked in one-sided `get` operations.
    pub get_block: Duration,
    /// `get` operations issued by this node.
    pub gets_issued: u64,
    /// `get` requests this node serviced for others (re-served duplicates
    /// of a retried request count again).
    pub gets_served: u64,
    /// One-sided `put` messages consumed at this node.
    pub puts_received: u64,
    /// Round-trip latencies of this node's `get` operations (ps).
    pub get_latency: Histogram,
    /// Messages entered into the reliability protocol (fault mode only).
    /// Invariant: `msgs_tracked == msgs_acked + msgs_failed` once the run
    /// has drained — nothing is silently lost.
    pub msgs_tracked: u64,
    /// Tracked messages whose arrival was acknowledged.
    pub msgs_acked: u64,
    /// Tracked messages given up on after exhausting retries.
    pub msgs_failed: u64,
    /// Retransmissions issued (fault mode only).
    pub retries: u64,
    /// Blocking receives abandoned by the fault-mode watchdog.
    pub recv_timeouts: u64,
    /// Retries needed per tracked message (0 ⇒ first transmission
    /// acknowledged; recorded on completion or give-up).
    pub retry_counts: Histogram,
    /// Structured reports of destinations this node gave up reaching.
    pub unreachable: Vec<UnreachableReport>,
    /// When this processor finished its trace (None ⇒ blocked forever:
    /// deadlock or mismatched communication).
    pub finished_at: Option<Time>,
}

impl Default for ProcStats {
    fn default() -> Self {
        ProcStats {
            compute: Duration::ZERO,
            send_block: Duration::ZERO,
            recv_block: Duration::ZERO,
            msgs_sent: 0,
            bytes_sent: 0,
            msgs_received: 0,
            msg_latency: Histogram::log2(),
            get_block: Duration::ZERO,
            gets_issued: 0,
            gets_served: 0,
            puts_received: 0,
            get_latency: Histogram::log2(),
            msgs_tracked: 0,
            msgs_acked: 0,
            msgs_failed: 0,
            retries: 0,
            recv_timeouts: 0,
            retry_counts: Histogram::log2(),
            unreachable: Vec::new(),
            finished_at: None,
        }
    }
}

/// A message fully arrived at this node, waiting to be consumed.
#[derive(Debug, Clone, Copy)]
struct CompletedMsg {
    id: MsgId,
    arrived: Time,
    sent_at: Time,
    bytes: u32,
    sync: bool,
    /// Latency decomposition of the packet that completed reassembly — the
    /// last to arrive, so its component sum equals `arrived - sent_at`.
    path: PathDecomp,
    /// Retransmission attempt of the completing packet (0 = original send).
    attempt: u32,
}

/// A posted asynchronous receive (blocking receives are represented by the
/// processor state instead, so the matcher only ever queues `Async`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiter {
    /// An `arecv`: consume silently on arrival.
    Async,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Processing trace operations (inside `advance`).
    Running,
    /// Waiting for a `compute` timer.
    Computing,
    /// Blocked in a synchronous send since the given time.
    AwaitAck { since: Time, msg: MsgId },
    /// Blocked in a synchronous receive since the given time.
    AwaitRecv { src: NodeId, since: Time },
    /// Blocked in a one-sided `get` since the given time.
    AwaitGet { since: Time, msg: MsgId },
    /// Trace exhausted.
    Done,
}

/// In-progress reassembly of a multi-packet message.
#[derive(Debug, Clone, Copy)]
struct Assembly {
    got: u32,
    total: u32,
}

/// Sender-side record of an unacknowledged tracked message (fault mode).
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    dst: NodeId,
    bytes: u32,
    kind: PacketKind,
    /// Retransmissions issued so far (0 = only the original send).
    attempt: u32,
    /// When the original send was issued — retransmitted packets keep it,
    /// so latency still measures issue → delivery.
    sent_at: Time,
}

/// The abstract processor of one node.
pub struct AbstractProcessor {
    node: NodeId,
    /// The node's task-level trace, shared with its owner (the processor
    /// only reads it — no per-simulation copy).
    trace: Arc<[Operation]>,
    cursor: usize,
    router_comp: CompId,
    cfg: NetworkConfig,
    state: ProcState,
    send_seq: u64,
    assembling: FastHashMap<MsgId, Assembly>,
    matcher: MatchBox<NodeId, CompletedMsg, Waiter>,
    /// The fault schedule, when fault injection is enabled. `None`
    /// short-circuits every reliability-protocol branch to the original
    /// fault-free path.
    faults: Option<Arc<FaultSchedule>>,
    /// Tracked-but-unacknowledged messages (fault mode only).
    outstanding: FastHashMap<MsgId, Outstanding>,
    /// Messages fully assembled at this node — deduplicates the packets of
    /// retransmissions (fault mode only).
    completed: FastHashSet<MsgId>,
    /// Monotone counter invalidating stale `RecvDeadline` watchdogs: bumped
    /// every time the trace advances, so a deadline armed for an earlier
    /// blocking wait can never fire into a later one.
    wait_epoch: u64,
    /// Instrumentation (disabled by default; observation only, never read
    /// back into model behaviour).
    probe: ProbeHandle,
    /// Statistics.
    pub stats: ProcStats,
}

impl AbstractProcessor {
    /// Build the processor of `node` with its task-level trace.
    pub fn new(
        node: NodeId,
        trace: Arc<[Operation]>,
        router_comp: CompId,
        cfg: NetworkConfig,
    ) -> Self {
        AbstractProcessor {
            node,
            trace,
            cursor: 0,
            router_comp,
            cfg,
            state: ProcState::Running,
            send_seq: 0,
            assembling: FastHashMap::default(),
            matcher: MatchBox::new(),
            faults: None,
            outstanding: FastHashMap::default(),
            completed: FastHashSet::default(),
            wait_epoch: 0,
            probe: ProbeHandle::disabled(),
            stats: ProcStats::default(),
        }
    }

    /// Attach an instrumentation handle (builder style).
    pub fn with_probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = probe;
        self
    }

    /// Attach a fault schedule (builder style); `None` keeps the exact
    /// fault-free behaviour.
    pub fn with_faults(mut self, faults: Option<Arc<FaultSchedule>>) -> Self {
        self.faults = faults;
        self
    }

    /// True when the processor has completed its trace.
    pub fn is_done(&self) -> bool {
        self.state == ProcState::Done
    }

    /// The node this processor models.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Split a message into packets and inject them after `delay`.
    /// Returns the message id (used to correlate `get` replies).
    ///
    /// In fault mode the new message enters the reliability protocol: it is
    /// recorded as outstanding and a retry check is armed.
    fn inject_message_kind(
        &mut self,
        dst: NodeId,
        bytes: u32,
        kind: PacketKind,
        delay: Duration,
        ctx: &mut Ctx<'_, NetMsg>,
    ) -> MsgId {
        let id = MsgId {
            src: self.node,
            seq: self.send_seq,
        };
        self.send_seq += 1;
        self.inject_message_as(id, dst, bytes, kind, 0, delay, ctx);
        if let Some(faults) = &self.faults {
            let timeout = faults.retry.timeout(0);
            self.outstanding.insert(
                id,
                Outstanding {
                    dst,
                    bytes,
                    kind,
                    attempt: 0,
                    sent_at: ctx.now(),
                },
            );
            self.stats.msgs_tracked += 1;
            ctx.timer(delay + timeout, NetMsg::RetryCheck(id));
        }
        id
    }

    /// Inject a message under an explicit id (used for `get` replies, which
    /// carry the *requester's* message id back). `attempt` tags the packets
    /// for the fault layer's per-traversal hash: replies to a retried `get`
    /// request inherit the request's attempt so they redraw their loss luck.
    #[allow(clippy::too_many_arguments)]
    fn inject_message_as(
        &mut self,
        id: MsgId,
        dst: NodeId,
        bytes: u32,
        kind: PacketKind,
        attempt: u32,
        delay: Duration,
        ctx: &mut Ctx<'_, NetMsg>,
    ) {
        if matches!(kind, PacketKind::Data { .. } | PacketKind::OneWay) {
            self.stats.msgs_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            self.probe.emit(|| SimEvent::MsgSend {
                ts_ps: ctx.now().as_ps(),
                src: self.node,
                dst,
                bytes,
                sync: matches!(kind, PacketKind::Data { sync: true }),
            });
        }
        self.inject_packets(id, dst, bytes, kind, attempt, ctx.now(), delay, ctx);
    }

    /// Packetise and hand to the router — the transmission path shared by
    /// original sends and fault-mode retransmissions (which keep the
    /// original `sent_at` and carry a fresh `attempt`, but do not count as
    /// new messages in the statistics).
    #[allow(clippy::too_many_arguments)]
    fn inject_packets(
        &mut self,
        id: MsgId,
        dst: NodeId,
        bytes: u32,
        kind: PacketKind,
        attempt: u32,
        sent_at: Time,
        delay: Duration,
        ctx: &mut Ctx<'_, NetMsg>,
    ) {
        let count = self.cfg.packets_for(bytes);
        let payload_max = self.cfg.router.max_packet_payload;
        let first = Packet {
            msg: id,
            dst,
            index: 0,
            count,
            payload: bytes.min(payload_max),
            msg_bytes: bytes,
            kind,
            sent_at,
            attempt,
            corrupted: false,
            // Everything between the send issue and the packet entering its
            // router is pre-network time: the injection delay on the
            // original attempt, plus the whole elapsed recovery span on a
            // retransmission (which keeps the original `sent_at` and is
            // injected with zero delay).
            path: PathDecomp {
                pre_ps: ctx.now().since(sent_at).as_ps() + delay.as_ps(),
                ..PathDecomp::default()
            },
        };
        if count == 1 {
            ctx.send_after(delay, self.router_comp, NetMsg::Inject(first));
        } else if self.faults.is_some() {
            // Fault mode never coalesces: each packet must keep its own
            // identity (index, checksum bit, loss draw), so the burst is
            // injected packet by packet.
            let train = Train { first, len: count };
            for i in 0..count {
                ctx.send_after(
                    delay,
                    self.router_comp,
                    NetMsg::Inject(train.packet(i, payload_max)),
                );
            }
        } else {
            // All packets are ready at the same instant — hand the router
            // the whole burst as one event (it expands them with the exact
            // per-packet arithmetic of individual injections).
            let train = Train { first, len: count };
            ctx.send_after(delay, self.router_comp, NetMsg::InjectTrain(train));
        }
    }

    /// Split a data message into packets and inject them after `delay`.
    fn inject_message(
        &mut self,
        dst: NodeId,
        bytes: u32,
        sync: bool,
        delay: Duration,
        ctx: &mut Ctx<'_, NetMsg>,
    ) -> MsgId {
        self.inject_message_kind(dst, bytes, PacketKind::Data { sync }, delay, ctx)
    }

    /// Send an acknowledgement control packet for message `id` back to its
    /// sender. Fault-free: the rendezvous ack of a blocking send, sent on
    /// consumption. Fault mode: the arrival ack of the reliability
    /// protocol, tagged with the `attempt` of the packet that completed the
    /// message so the ack's own loss draws differ per retransmission.
    fn inject_ack(&mut self, id: MsgId, attempt: u32, delay: Duration, ctx: &mut Ctx<'_, NetMsg>) {
        let pkt = Packet {
            msg: id,
            dst: id.src,
            index: 0,
            count: 1,
            payload: 0,
            msg_bytes: 0,
            kind: PacketKind::Ack,
            sent_at: ctx.now(),
            attempt,
            corrupted: false,
            path: PathDecomp::default(),
        };
        ctx.send_after(delay, self.router_comp, NetMsg::Inject(pkt));
    }

    /// Consume a completed message (statistics + rendezvous ack). In fault
    /// mode the arrival ack has already been sent at reassembly, so no
    /// consumption ack is due.
    fn consume(&mut self, msg: CompletedMsg, ack_delay: Duration, ctx: &mut Ctx<'_, NetMsg>) {
        self.stats.msgs_received += 1;
        let latency_ps = msg.arrived.since(msg.sent_at).as_ps();
        self.stats.msg_latency.record(latency_ps);
        debug_assert_eq!(
            msg.path.total_ps(),
            latency_ps,
            "node {}: path decomposition of message {:?} does not sum to its \
             end-to-end latency",
            self.node,
            msg.id,
        );
        self.probe.emit(|| SimEvent::MsgDeliver {
            ts_ps: msg.arrived.as_ps(),
            src: msg.id.src,
            dst: self.node,
            bytes: msg.bytes,
            latency_ps,
        });
        self.probe.emit(|| SimEvent::MsgPath {
            ts_ps: msg.arrived.as_ps(),
            src: msg.id.src,
            dst: self.node,
            bytes: msg.bytes,
            latency_ps,
            // `pre` covers the span before the completing packet entered
            // the network: pure software overhead on a first transmission,
            // the whole loss-and-retry recovery span on a retransmission.
            overhead_ps: if msg.attempt == 0 { msg.path.pre_ps } else { 0 },
            retry_ps: if msg.attempt == 0 { 0 } else { msg.path.pre_ps },
            queue_ps: msg.path.queue_ps,
            routing_ps: msg.path.route_ps,
            ser_ps: msg.path.ser_ps,
            wire_ps: msg.path.wire_ps,
        });
        if msg.sync && self.faults.is_none() {
            self.inject_ack(msg.id, 0, ack_delay, ctx);
        }
    }

    /// Process trace operations until the processor blocks or finishes.
    fn advance(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        self.state = ProcState::Running;
        // Any watchdog armed for an earlier blocking wait is now stale.
        self.wait_epoch = self.wait_epoch.wrapping_add(1);
        while self.cursor < self.trace.len() {
            let op = self.trace[self.cursor];
            self.cursor += 1;
            match op {
                Operation::Compute { ps } => {
                    let d = Duration::from_ps(ps);
                    self.stats.compute += d;
                    self.probe.emit(|| SimEvent::Activation {
                        node: self.node,
                        kind: ActKind::Compute,
                        start_ps: ctx.now().as_ps(),
                        end_ps: (ctx.now() + d).as_ps(),
                    });
                    self.state = ProcState::Computing;
                    ctx.timer(d, NetMsg::Resume);
                    return;
                }
                Operation::Send { bytes, dst } => {
                    let overhead = self.cfg.software.send_overhead;
                    let msg = self.inject_message(dst, bytes, true, overhead, ctx);
                    self.state = ProcState::AwaitAck {
                        since: ctx.now(),
                        msg,
                    };
                    return;
                }
                Operation::ASend { bytes, dst } => {
                    let overhead = self.cfg.software.send_overhead;
                    self.inject_message(dst, bytes, false, overhead, ctx);
                    if overhead.is_zero() {
                        continue;
                    }
                    self.state = ProcState::Computing;
                    ctx.timer(overhead, NetMsg::Resume);
                    return;
                }
                Operation::Recv { src } => {
                    // Blocking receives are represented by the processor
                    // state, not by a queued waiter (only `arecv` posts
                    // waiters into the matcher).
                    match self.matcher.take_arrival(&src) {
                        Some(msg) => {
                            // Message already here: pay the receive overhead
                            // and continue.
                            let overhead = self.cfg.software.recv_overhead;
                            self.consume(msg, overhead, ctx);
                            if overhead.is_zero() {
                                continue;
                            }
                            self.state = ProcState::Computing;
                            ctx.timer(overhead, NetMsg::Resume);
                            return;
                        }
                        None => {
                            self.state = ProcState::AwaitRecv {
                                src,
                                since: ctx.now(),
                            };
                            if let Some(faults) = &self.faults {
                                // Watchdog: a partitioned-away sender must
                                // not wedge this node forever.
                                ctx.timer(
                                    faults.retry.recv_timeout,
                                    NetMsg::RecvDeadline {
                                        epoch: self.wait_epoch,
                                    },
                                );
                            }
                            return;
                        }
                    }
                }
                Operation::ARecv { src } => {
                    if let Some(msg) = self.matcher.wait(src, Waiter::Async) {
                        self.consume(msg, Duration::ZERO, ctx);
                    }
                    // Non-blocking either way.
                }
                Operation::Put { bytes, to } => {
                    let overhead = self.cfg.software.send_overhead;
                    self.inject_message_kind(to, bytes, PacketKind::OneWay, overhead, ctx);
                    if overhead.is_zero() {
                        continue;
                    }
                    self.state = ProcState::Computing;
                    ctx.timer(overhead, NetMsg::Resume);
                    return;
                }
                Operation::Get { bytes, from } => {
                    if from == self.node {
                        // A local fetch: free at this abstraction level.
                        continue;
                    }
                    let overhead = self.cfg.software.send_overhead;
                    self.stats.gets_issued += 1;
                    let msg = self.inject_message_kind(
                        from,
                        0,
                        PacketKind::GetRequest { bytes },
                        overhead,
                        ctx,
                    );
                    self.state = ProcState::AwaitGet {
                        since: ctx.now(),
                        msg,
                    };
                    return;
                }
                other => panic!(
                    "node {}: instruction-level operation {other} in a task-level trace \
                     (run it through the computational model first)",
                    self.node
                ),
            }
        }
        self.state = ProcState::Done;
        self.stats.finished_at = Some(ctx.now());
    }

    /// A data packet arrived; returns the completed message when it was the
    /// last packet.
    fn assemble(&mut self, pkt: &Packet, now: Time) -> Option<CompletedMsg> {
        let sync = match pkt.kind {
            PacketKind::Data { sync } => sync,
            PacketKind::OneWay | PacketKind::GetReply => false,
            PacketKind::Ack | PacketKind::GetRequest { .. } => {
                unreachable!("assemble() on a control packet")
            }
        };
        let asm = self.assembling.entry(pkt.msg).or_insert(Assembly {
            got: 0,
            total: pkt.count,
        });
        asm.got += 1;
        if asm.got < asm.total {
            return None;
        }
        self.assembling.remove(&pkt.msg);
        Some(CompletedMsg {
            id: pkt.msg,
            arrived: now,
            sent_at: pkt.sent_at,
            bytes: pkt.msg_bytes,
            sync,
            path: pkt.path,
            attempt: pkt.attempt,
        })
    }

    /// An arrival acknowledgement came back for a tracked message (fault
    /// mode). Duplicates (from re-acked retransmissions, or acks racing a
    /// retry) are ignored.
    fn on_transport_ack(&mut self, id: MsgId, ctx: &mut Ctx<'_, NetMsg>) {
        let Some(out) = self.outstanding.remove(&id) else {
            return; // already acknowledged, or already given up on
        };
        self.stats.msgs_acked += 1;
        self.stats.retry_counts.record(out.attempt as u64);
        if let ProcState::AwaitAck { since, msg } = self.state {
            if msg == id {
                self.stats.send_block += ctx.now().since(since);
                self.probe.emit(|| SimEvent::Activation {
                    node: self.node,
                    kind: ActKind::SendBlock,
                    start_ps: since.as_ps(),
                    end_ps: ctx.now().as_ps(),
                });
                self.advance(ctx);
            }
        }
    }

    /// A retry-check timer fired: retransmit the message if it is still
    /// unacknowledged, or give up once the retry budget is spent.
    fn on_retry_check(&mut self, id: MsgId, ctx: &mut Ctx<'_, NetMsg>) {
        let retry = match &self.faults {
            Some(faults) => faults.retry,
            None => panic!("node {}: retry check without a fault schedule", self.node),
        };
        let Some(out) = self.outstanding.get(&id).copied() else {
            return; // acknowledged in the meantime — stale timer
        };
        if out.attempt >= retry.max_retries {
            self.give_up(id, out, ctx);
            return;
        }
        let attempt = out.attempt + 1;
        self.outstanding
            .get_mut(&id)
            .expect("checked above")
            .attempt = attempt;
        self.stats.retries += 1;
        self.probe.emit(|| SimEvent::MsgRetry {
            ts_ps: ctx.now().as_ps(),
            src: self.node,
            dst: out.dst,
            attempt,
        });
        // Transport-level retransmission: no software send overhead, the
        // original issue time is kept for latency accounting.
        self.inject_packets(
            id,
            out.dst,
            out.bytes,
            out.kind,
            attempt,
            out.sent_at,
            Duration::ZERO,
            ctx,
        );
        ctx.timer(retry.timeout(attempt), NetMsg::RetryCheck(id));
    }

    /// Exhausted the retry budget: record the unreachable destination,
    /// unblock if this message was holding the trace, and move on.
    fn give_up(&mut self, id: MsgId, out: Outstanding, ctx: &mut Ctx<'_, NetMsg>) {
        self.outstanding.remove(&id);
        self.stats.msgs_failed += 1;
        self.stats.retry_counts.record(out.attempt as u64);
        let now = ctx.now();
        self.stats.unreachable.push(UnreachableReport {
            src: self.node,
            dst: out.dst,
            seq: id.seq,
            retries: out.attempt,
            gave_up: now,
        });
        self.probe.emit(|| SimEvent::MsgGaveUp {
            ts_ps: now.as_ps(),
            src: self.node,
            dst: out.dst,
            retries: out.attempt,
        });
        match self.state {
            ProcState::AwaitAck { since, msg } if msg == id => {
                self.stats.send_block += now.since(since);
                self.probe.emit(|| SimEvent::Activation {
                    node: self.node,
                    kind: ActKind::SendBlock,
                    start_ps: since.as_ps(),
                    end_ps: now.as_ps(),
                });
                self.advance(ctx);
            }
            ProcState::AwaitGet { since, msg } if msg == id => {
                self.stats.get_block += now.since(since);
                self.probe.emit(|| SimEvent::Activation {
                    node: self.node,
                    kind: ActKind::GetBlock,
                    start_ps: since.as_ps(),
                    end_ps: now.as_ps(),
                });
                self.advance(ctx);
            }
            _ => {}
        }
    }

    /// The blocking-receive watchdog fired. If the same wait is still in
    /// progress (matching epoch), abandon the receive and continue the
    /// trace — the matching send was lost or its sender is unreachable.
    fn on_recv_deadline(&mut self, epoch: u64, ctx: &mut Ctx<'_, NetMsg>) {
        if epoch != self.wait_epoch {
            return; // stale: that wait completed long ago
        }
        let ProcState::AwaitRecv { since, .. } = self.state else {
            return; // the wait was satisfied but the trace has not advanced
                    // past the receive overhead yet
        };
        let now = ctx.now();
        self.stats.recv_timeouts += 1;
        self.stats.recv_block += now.since(since);
        self.probe.emit(|| SimEvent::Activation {
            node: self.node,
            kind: ActKind::RecvBlock,
            start_ps: since.as_ps(),
            end_ps: now.as_ps(),
        });
        self.advance(ctx);
    }

    fn on_deliver(&mut self, pkt: Packet, ctx: &mut Ctx<'_, NetMsg>) {
        match pkt.kind {
            PacketKind::GetRequest { bytes } => {
                // Service the one-sided read: reply with the data after the
                // software service cost, without touching our own trace
                // progress (DMA-like). A retried request is re-served — the
                // previous reply may have been lost — and the reply inherits
                // the request's attempt for the fault layer's hash.
                self.stats.gets_served += 1;
                let requester = pkt.msg.src;
                self.inject_message_as(
                    pkt.msg,
                    requester,
                    bytes,
                    PacketKind::GetReply,
                    pkt.attempt,
                    self.cfg.software.recv_overhead,
                    ctx,
                );
            }
            PacketKind::GetReply => {
                if self.faults.is_some() && self.completed.contains(&pkt.msg) {
                    return; // duplicate of an already-completed reply
                }
                if self.assemble(&pkt, ctx.now()).is_none() {
                    return;
                }
                if self.faults.is_some() {
                    self.completed.insert(pkt.msg);
                    let Some(out) = self.outstanding.remove(&pkt.msg) else {
                        // We already gave up on this get and moved on —
                        // drop the late reply.
                        return;
                    };
                    self.stats.msgs_acked += 1;
                    self.stats.retry_counts.record(out.attempt as u64);
                }
                let ProcState::AwaitGet { since, .. } = self.state else {
                    panic!(
                        "node {}: get reply {:?} while not waiting (state {:?})",
                        self.node, pkt.msg, self.state
                    );
                };
                let now = ctx.now();
                self.stats.get_block += now.since(since);
                self.stats
                    .get_latency
                    .record(now.since(pkt.sent_at).as_ps());
                self.probe.emit(|| SimEvent::Activation {
                    node: self.node,
                    kind: ActKind::GetBlock,
                    start_ps: since.as_ps(),
                    end_ps: now.as_ps(),
                });
                self.advance(ctx);
            }
            PacketKind::OneWay => {
                if self.faults.is_some() && self.completed.contains(&pkt.msg) {
                    // Duplicate put: the earlier arrival ack may have been
                    // lost — re-acknowledge on the tail packet.
                    if pkt.index + 1 == pkt.count {
                        self.inject_ack(pkt.msg, pkt.attempt, Duration::ZERO, ctx);
                    }
                    return;
                }
                if self.assemble(&pkt, ctx.now()).is_some() {
                    self.stats.puts_received += 1;
                    if self.faults.is_some() {
                        self.completed.insert(pkt.msg);
                        self.inject_ack(pkt.msg, pkt.attempt, Duration::ZERO, ctx);
                    }
                }
            }
            PacketKind::Ack => {
                if self.faults.is_some() {
                    self.on_transport_ack(pkt.msg, ctx);
                    return;
                }
                let ProcState::AwaitAck { since, .. } = self.state else {
                    panic!(
                        "node {}: unexpected ack for message {:?} in state {:?}",
                        self.node, pkt.msg, self.state
                    );
                };
                self.stats.send_block += ctx.now().since(since);
                self.probe.emit(|| SimEvent::Activation {
                    node: self.node,
                    kind: ActKind::SendBlock,
                    start_ps: since.as_ps(),
                    end_ps: ctx.now().as_ps(),
                });
                self.advance(ctx);
            }
            PacketKind::Data { .. } => {
                if self.faults.is_some() && self.completed.contains(&pkt.msg) {
                    // Duplicate from a retransmission of a message we
                    // already assembled — the arrival ack may have been
                    // lost; re-acknowledge on the tail packet so the sender
                    // can complete.
                    if pkt.index + 1 == pkt.count {
                        self.inject_ack(pkt.msg, pkt.attempt, Duration::ZERO, ctx);
                    }
                    return;
                }
                let Some(msg) = self.assemble(&pkt, ctx.now()) else {
                    return;
                };
                if self.faults.is_some() {
                    // Arrival acknowledgement of the reliability protocol
                    // (for sync sends this replaces the rendezvous ack).
                    self.completed.insert(msg.id);
                    self.inject_ack(msg.id, pkt.attempt, Duration::ZERO, ctx);
                }
                // Async receives posted earlier claim the message first.
                if self.matcher.has_waiter(&msg.id.src) {
                    let w = self
                        .matcher
                        .arrive(msg.id.src, msg)
                        .expect("has_waiter implies a match");
                    debug_assert_eq!(w, Waiter::Async);
                    self.consume(msg, Duration::ZERO, ctx);
                    return;
                }
                // A blocked recv on this source?
                if let ProcState::AwaitRecv { src, since } = self.state {
                    if src == msg.id.src {
                        self.stats.recv_block += ctx.now().since(since);
                        self.probe.emit(|| SimEvent::Activation {
                            node: self.node,
                            kind: ActKind::RecvBlock,
                            start_ps: since.as_ps(),
                            end_ps: ctx.now().as_ps(),
                        });
                        let overhead = self.cfg.software.recv_overhead;
                        self.consume(msg, overhead, ctx);
                        if overhead.is_zero() {
                            self.advance(ctx);
                        } else {
                            self.state = ProcState::Computing;
                            ctx.timer(overhead, NetMsg::Resume);
                        }
                        return;
                    }
                }
                // Otherwise queue it for a future recv/arecv.
                let matched = self.matcher.arrive(msg.id.src, msg);
                debug_assert!(matched.is_none());
            }
        }
    }
}

impl AbstractProcessor {
    /// Append the processor's mutable simulation state to a checkpoint
    /// integer stream (crate::snapshot). Trace, config, probe and fault
    /// wiring are rebuilt from the run config on restore.
    pub(crate) fn snapshot_ints(&self, out: &mut Vec<u64>) {
        out.push(self.cursor as u64);
        out.push(self.send_seq);
        out.push(self.wait_epoch);
        match self.state {
            ProcState::Running => out.extend([0, 0, 0, 0]),
            ProcState::Computing => out.extend([1, 0, 0, 0]),
            ProcState::AwaitAck { since, msg } => {
                out.extend([2, since.as_ps(), msg.src as u64, msg.seq])
            }
            ProcState::AwaitRecv { src, since } => out.extend([3, since.as_ps(), src as u64, 0]),
            ProcState::AwaitGet { since, msg } => {
                out.extend([4, since.as_ps(), msg.src as u64, msg.seq])
            }
            ProcState::Done => out.extend([5, 0, 0, 0]),
        }
        let mut assembling: Vec<(MsgId, Assembly)> =
            self.assembling.iter().map(|(&k, &v)| (k, v)).collect();
        assembling.sort_by_key(|&(id, _)| (id.src, id.seq));
        out.push(assembling.len() as u64);
        for (id, a) in assembling {
            out.extend([id.src as u64, id.seq, a.got as u64, a.total as u64]);
        }
        // Matcher channels, sorted by source node. A channel only ever
        // holds one side (arrive/wait match eagerly), so each side is a
        // flat channel list.
        let mut arrivals: Vec<(NodeId, Vec<CompletedMsg>)> = self
            .matcher
            .arrivals()
            .map(|(&k, q)| (k, q.copied().collect()))
            .collect();
        arrivals.sort_by_key(|&(k, _)| k);
        out.push(arrivals.len() as u64);
        for (src, msgs) in arrivals {
            out.push(src as u64);
            out.push(msgs.len() as u64);
            for m in msgs {
                out.extend([
                    m.id.src as u64,
                    m.id.seq,
                    m.arrived.as_ps(),
                    m.sent_at.as_ps(),
                    m.bytes as u64,
                    m.sync as u64,
                    m.path.pre_ps,
                    m.path.queue_ps,
                    m.path.route_ps,
                    m.path.ser_ps,
                    m.path.wire_ps,
                    m.attempt as u64,
                ]);
            }
        }
        let mut waiters: Vec<(NodeId, u64)> = self
            .matcher
            .waiters()
            .map(|(&k, q)| (k, q.count() as u64))
            .collect();
        waiters.sort_by_key(|&(k, _)| k);
        out.push(waiters.len() as u64);
        for (src, n) in waiters {
            out.push(src as u64);
            out.push(n);
        }
        let mut outstanding: Vec<(MsgId, Outstanding)> =
            self.outstanding.iter().map(|(&k, &v)| (k, v)).collect();
        outstanding.sort_by_key(|&(id, _)| (id.src, id.seq));
        out.push(outstanding.len() as u64);
        for (id, o) in outstanding {
            let (kt, ka) = crate::snapshot::packet_kind_to_ints(o.kind);
            out.extend([
                id.src as u64,
                id.seq,
                o.dst as u64,
                o.bytes as u64,
                kt,
                ka,
                o.attempt as u64,
                o.sent_at.as_ps(),
            ]);
        }
        let mut completed: Vec<MsgId> = self.completed.iter().copied().collect();
        completed.sort_by_key(|id| (id.src, id.seq));
        out.push(completed.len() as u64);
        for id in completed {
            out.extend([id.src as u64, id.seq]);
        }
        let s = &self.stats;
        out.extend([
            s.compute.as_ps(),
            s.send_block.as_ps(),
            s.recv_block.as_ps(),
            s.msgs_sent,
            s.bytes_sent,
            s.msgs_received,
            s.get_block.as_ps(),
            s.gets_issued,
            s.gets_served,
            s.puts_received,
            s.msgs_tracked,
            s.msgs_acked,
            s.msgs_failed,
            s.retries,
            s.recv_timeouts,
        ]);
        for h in [&s.msg_latency, &s.get_latency, &s.retry_counts] {
            let ints = h.snapshot_ints();
            out.push(ints.len() as u64);
            out.extend(ints);
        }
        out.push(s.unreachable.len() as u64);
        for u in &s.unreachable {
            out.extend([
                u.src as u64,
                u.dst as u64,
                u.seq,
                u.retries as u64,
                u.gave_up.as_ps(),
            ]);
        }
        match s.finished_at {
            Some(t) => out.extend([1, t.as_ps()]),
            None => out.extend([0, 0]),
        }
    }

    /// Overlay state captured by [`AbstractProcessor::snapshot_ints`] onto
    /// a freshly built processor whose `init` has *not* run.
    pub(crate) fn restore_ints(
        &mut self,
        r: &mut crate::snapshot::IntReader<'_>,
    ) -> Result<(), String> {
        self.cursor = r.take("proc cursor")? as usize;
        self.send_seq = r.take("proc send_seq")?;
        self.wait_epoch = r.take("proc wait_epoch")?;
        let (tag, a, b, c) = (
            r.take("proc state tag")?,
            r.take("proc state field")?,
            r.take("proc state field")?,
            r.take("proc state field")?,
        );
        self.state = match tag {
            0 => ProcState::Running,
            1 => ProcState::Computing,
            2 => ProcState::AwaitAck {
                since: Time::from_ps(a),
                msg: MsgId {
                    src: b as NodeId,
                    seq: c,
                },
            },
            3 => ProcState::AwaitRecv {
                src: b as NodeId,
                since: Time::from_ps(a),
            },
            4 => ProcState::AwaitGet {
                since: Time::from_ps(a),
                msg: MsgId {
                    src: b as NodeId,
                    seq: c,
                },
            },
            5 => ProcState::Done,
            t => return Err(format!("unknown processor state tag {t}")),
        };
        self.assembling.clear();
        for _ in 0..r.take("proc assembling count")? {
            let id = MsgId {
                src: r.take("proc assembly src")? as NodeId,
                seq: r.take("proc assembly seq")?,
            };
            let got = r.take("proc assembly got")? as u32;
            let total = r.take("proc assembly total")? as u32;
            self.assembling.insert(id, Assembly { got, total });
        }
        self.matcher = MatchBox::new();
        for _ in 0..r.take("proc arrival channel count")? {
            let chan = r.take("proc arrival channel")? as NodeId;
            for _ in 0..r.take("proc arrival queue length")? {
                let msg = CompletedMsg {
                    id: MsgId {
                        src: r.take("proc arrival msg src")? as NodeId,
                        seq: r.take("proc arrival msg seq")?,
                    },
                    arrived: Time::from_ps(r.take("proc arrival arrived")?),
                    sent_at: Time::from_ps(r.take("proc arrival sent_at")?),
                    bytes: r.take("proc arrival bytes")? as u32,
                    sync: r.take("proc arrival sync")? != 0,
                    path: PathDecomp {
                        pre_ps: r.take("proc arrival path pre")?,
                        queue_ps: r.take("proc arrival path queue")?,
                        route_ps: r.take("proc arrival path route")?,
                        ser_ps: r.take("proc arrival path ser")?,
                        wire_ps: r.take("proc arrival path wire")?,
                    },
                    attempt: r.take("proc arrival attempt")? as u32,
                };
                let matched = self.matcher.arrive(chan, msg);
                debug_assert!(matched.is_none());
            }
        }
        for _ in 0..r.take("proc waiter channel count")? {
            let chan = r.take("proc waiter channel")? as NodeId;
            for _ in 0..r.take("proc waiter queue length")? {
                let matched = self.matcher.wait(chan, Waiter::Async);
                debug_assert!(matched.is_none());
            }
        }
        self.outstanding.clear();
        for _ in 0..r.take("proc outstanding count")? {
            let id = MsgId {
                src: r.take("proc outstanding src")? as NodeId,
                seq: r.take("proc outstanding seq")?,
            };
            let dst = r.take("proc outstanding dst")? as NodeId;
            let bytes = r.take("proc outstanding bytes")? as u32;
            let kind = crate::snapshot::packet_kind_from_ints(
                r.take("proc outstanding kind tag")?,
                r.take("proc outstanding kind arg")?,
            )?;
            let attempt = r.take("proc outstanding attempt")? as u32;
            let sent_at = Time::from_ps(r.take("proc outstanding sent_at")?);
            self.outstanding.insert(
                id,
                Outstanding {
                    dst,
                    bytes,
                    kind,
                    attempt,
                    sent_at,
                },
            );
        }
        self.completed.clear();
        for _ in 0..r.take("proc completed count")? {
            self.completed.insert(MsgId {
                src: r.take("proc completed src")? as NodeId,
                seq: r.take("proc completed seq")?,
            });
        }
        let s = &mut self.stats;
        s.compute = Duration::from_ps(r.take("proc compute")?);
        s.send_block = Duration::from_ps(r.take("proc send_block")?);
        s.recv_block = Duration::from_ps(r.take("proc recv_block")?);
        s.msgs_sent = r.take("proc msgs_sent")?;
        s.bytes_sent = r.take("proc bytes_sent")?;
        s.msgs_received = r.take("proc msgs_received")?;
        s.get_block = Duration::from_ps(r.take("proc get_block")?);
        s.gets_issued = r.take("proc gets_issued")?;
        s.gets_served = r.take("proc gets_served")?;
        s.puts_received = r.take("proc puts_received")?;
        s.msgs_tracked = r.take("proc msgs_tracked")?;
        s.msgs_acked = r.take("proc msgs_acked")?;
        s.msgs_failed = r.take("proc msgs_failed")?;
        s.retries = r.take("proc retries")?;
        s.recv_timeouts = r.take("proc recv_timeouts")?;
        for (name, h) in [
            ("msg_latency", &mut s.msg_latency),
            ("get_latency", &mut s.get_latency),
            ("retry_counts", &mut s.retry_counts),
        ] {
            let len = r.take("proc histogram length")? as usize;
            let ints = r.take_slice(len, "proc histogram")?;
            if !h.restore_ints(ints) {
                return Err(format!("histogram `{name}` shape mismatch"));
            }
        }
        s.unreachable.clear();
        for _ in 0..r.take("proc unreachable count")? {
            s.unreachable.push(UnreachableReport {
                src: r.take("proc unreachable src")? as NodeId,
                dst: r.take("proc unreachable dst")? as NodeId,
                seq: r.take("proc unreachable seq")?,
                retries: r.take("proc unreachable retries")? as u32,
                gave_up: Time::from_ps(r.take("proc unreachable gave_up")?),
            });
        }
        let has_finish = r.take("proc finished flag")? != 0;
        let finish_ps = r.take("proc finished time")?;
        s.finished_at = has_finish.then(|| Time::from_ps(finish_ps));
        Ok(())
    }
}

impl Component<NetMsg> for AbstractProcessor {
    fn init(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        self.advance(ctx);
    }

    fn handle(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
        match ev.payload {
            NetMsg::Resume => self.advance(ctx),
            NetMsg::Deliver(pkt) => self.on_deliver(pkt, ctx),
            NetMsg::DeliverTrain(train) => {
                // The run's tail has just fully arrived; its earlier
                // packets only advance reassembly counters, so consuming
                // the whole run now is observably identical to the
                // per-packet deliveries it replaces.
                let payload_max = self.cfg.router.max_packet_payload;
                for i in 0..train.len {
                    self.on_deliver(train.packet(i, payload_max), ctx);
                }
            }
            NetMsg::RetryCheck(id) => self.on_retry_check(id, ctx),
            NetMsg::RecvDeadline { epoch } => self.on_recv_deadline(epoch, ctx),
            other => panic!(
                "processor {} received unexpected event {other:?}",
                self.node
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_are_empty() {
        let s = ProcStats::default();
        assert_eq!(s.msgs_sent, 0);
        assert_eq!(s.finished_at, None);
        assert_eq!(s.msg_latency.count(), 0);
        assert_eq!(s.msgs_tracked, 0);
        assert_eq!(s.retry_counts.count(), 0);
        assert!(s.unreachable.is_empty());
    }

    #[test]
    fn unreachable_reports_order_by_source_then_destination() {
        let a = UnreachableReport {
            src: 0,
            dst: 3,
            seq: 7,
            retries: 6,
            gave_up: Time::from_ps(10),
        };
        let b = UnreachableReport {
            src: 1,
            dst: 0,
            ..a
        };
        assert!(a < b);
    }

    // Behavioural tests for the processor live in `sim.rs`, where a full
    // network exists to carry its packets.
}
