//! The arena world of the communication model: typed struct-of-arrays
//! component storage (DESIGN.md §15).
//!
//! Instead of registering `2n` boxed trait objects with the engine, the
//! model owns two dense slabs — one `Vec<Router>`, one
//! `Vec<AbstractProcessor>` — and dispatches events by id range: component
//! ids `0..n` are routers, `n..2n` are processors (the same fixed layout
//! the boxed build used, now a load-bearing contract). Dispatch is static,
//! component state is contiguous in memory, and a shard of a sharded run
//! is simply the world whose slabs hold `partition.range` — no stub
//! components for remote slots.

use mermaid_ops::NodeId;
use pearl::{CompId, Component, Ctx, Event, World};

use crate::packet::NetMsg;
use crate::processor::AbstractProcessor;
use crate::router::Router;

/// Typed component slabs for one (whole or partial) communication model.
pub(crate) struct NetWorld {
    /// Total node count of the simulation. The component id space is
    /// always `2 * nodes` — routers `0..n`, processors `n..2n` — even
    /// when this world owns only a sub-range, so `post` bounds checks and
    /// the engine's per-component key counters match the serial run.
    nodes: u32,
    /// First node whose components live in this world's slabs (0 in a
    /// serial run; the shard's partition start in a sharded run).
    base: u32,
    /// Router slab: slot `i` is node `base + i`'s router (component id
    /// `base + i`).
    routers: Vec<Router>,
    /// Processor slab: slot `i` is node `base + i`'s processor (component
    /// id `nodes + base + i`).
    procs: Vec<AbstractProcessor>,
}

impl NetWorld {
    /// Build a world owning nodes `base..base + routers.len()` out of
    /// `nodes` total.
    pub fn new(nodes: u32, base: u32, routers: Vec<Router>, procs: Vec<AbstractProcessor>) -> Self {
        assert_eq!(
            routers.len(),
            procs.len(),
            "slabs must cover the same nodes"
        );
        assert!(
            base as usize + routers.len() <= nodes as usize,
            "owned range exceeds the node count"
        );
        NetWorld {
            nodes,
            base,
            routers,
            procs,
        }
    }

    /// The router of `node` (must be owned by this world).
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[(node - self.base) as usize]
    }

    /// The abstract processor of `node` (must be owned by this world).
    pub fn proc(&self, node: NodeId) -> &AbstractProcessor {
        &self.procs[(node - self.base) as usize]
    }

    /// Mutably borrow the router of `node` (checkpoint restore overlays
    /// captured state onto freshly built components).
    pub fn router_mut(&mut self, node: NodeId) -> &mut Router {
        &mut self.routers[(node - self.base) as usize]
    }

    /// Mutably borrow the abstract processor of `node` (see
    /// [`NetWorld::router_mut`]).
    pub fn proc_mut(&mut self, node: NodeId) -> &mut AbstractProcessor {
        &mut self.procs[(node - self.base) as usize]
    }

    /// First node owned by this world's slabs.
    pub fn base(&self) -> NodeId {
        self.base
    }

    /// Number of nodes owned by this world's slabs.
    pub fn owned(&self) -> u32 {
        self.routers.len() as u32
    }
}

impl World<NetMsg> for NetWorld {
    fn count(&self) -> usize {
        2 * self.nodes as usize
    }

    fn init(&mut self, id: CompId, ctx: &mut Ctx<'_, NetMsg>) {
        // Only owned components initialise here; a remote id's init runs
        // on its owning shard, consuming the same per-component key
        // counter there — the foundation of serial/sharded bit-identity.
        let n = self.nodes as usize;
        let base = self.base as usize;
        if id < n {
            if let Some(r) = id.checked_sub(base).and_then(|s| self.routers.get_mut(s)) {
                r.init(ctx);
            }
        } else if let Some(p) = (id - n)
            .checked_sub(base)
            .and_then(|s| self.procs.get_mut(s))
        {
            p.init(ctx);
        }
    }

    #[inline]
    fn handle(&mut self, id: CompId, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
        let n = self.nodes as usize;
        let base = self.base as usize;
        if id < n {
            match id.checked_sub(base).and_then(|s| self.routers.get_mut(s)) {
                Some(r) => r.handle(ev, ctx),
                None => remote_delivery(id, &ev),
            }
        } else {
            match (id - n)
                .checked_sub(base)
                .and_then(|s| self.procs.get_mut(s))
            {
                Some(p) => p.handle(ev, ctx),
                None => remote_delivery(id, &ev),
            }
        }
    }
}

/// Delivery to a component this world does not own: in a sharded run that
/// means the conservative lookahead window was violated — a correctness
/// bug, not a recoverable condition. (This replaces the old panicking
/// `Phantom` stub components.)
#[cold]
#[inline(never)]
fn remote_delivery(id: CompId, ev: &Event<NetMsg>) -> ! {
    panic!(
        "event delivered to component {id} on a shard that does not own it \
         (lookahead violation): {:?}",
        ev.payload
    );
}
